"""Legacy setup shim.

The project metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works in offline environments that lack the
``wheel`` package required for PEP 660 editable installs.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of SABRE: Tackling the Qubit Mapping Problem for "
        "NISQ-Era Quantum Devices (ASPLOS 2019)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # 3.10 floor: Gate is a dataclass(slots=True), a 3.10+ construct
    # (CI tests 3.10-3.12).
    python_requires=">=3.10",
    install_requires=["numpy>=1.20"],
)
