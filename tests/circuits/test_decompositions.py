"""Unit tests for gate decompositions (paper Fig. 1 / Fig. 3a)."""

import math

import pytest

from repro.circuits import QuantumCircuit, decompose_to_cx_basis
from repro.circuits.decompositions import (
    cu1_decomposition,
    cz_decomposition,
    rzz_decomposition,
    swap_decomposition,
    toffoli_decomposition,
)
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError
from repro.verify import statevector_equivalent


def _as_circuit(gates, n):
    circ = QuantumCircuit(n)
    circ.extend(gates)
    return circ


class TestSwapDecomposition:
    def test_three_cnots(self):
        gates = swap_decomposition(0, 1)
        assert [g.name for g in gates] == ["cx", "cx", "cx"]
        assert gates[0].qubits == (0, 1)
        assert gates[1].qubits == (1, 0)

    def test_unitary_equals_swap(self):
        ref = QuantumCircuit(2)
        ref.swap(0, 1)
        assert statevector_equivalent(ref, _as_circuit(swap_decomposition(0, 1), 2))


class TestToffoliDecomposition:
    def test_paper_figure1_shape(self):
        """Fig. 1: 15 gates, 6 CNOTs, 2 Hadamards, 7 T/Tdg."""
        gates = toffoli_decomposition(0, 1, 2)
        names = [g.name for g in gates]
        assert len(gates) == 15
        assert names.count("cx") == 6
        assert names.count("h") == 2
        assert names.count("t") + names.count("tdg") == 7

    def test_unitary_equals_ccx(self):
        ref = QuantumCircuit(3)
        ref.ccx(0, 1, 2)
        assert statevector_equivalent(
            ref, _as_circuit(toffoli_decomposition(0, 1, 2), 3)
        )

    def test_control_order_irrelevant(self):
        a = _as_circuit(toffoli_decomposition(0, 1, 2), 3)
        b = _as_circuit(toffoli_decomposition(1, 0, 2), 3)
        assert statevector_equivalent(a, b)


class TestOtherDecompositions:
    def test_cz(self):
        ref = QuantumCircuit(2)
        ref.cz(0, 1)
        assert statevector_equivalent(ref, _as_circuit(cz_decomposition(0, 1), 2))

    def test_cu1(self):
        ref = QuantumCircuit(2)
        ref.cu1(0.7, 0, 1)
        assert statevector_equivalent(
            ref, _as_circuit(cu1_decomposition(0.7, 0, 1), 2)
        )

    def test_rzz(self):
        ref = QuantumCircuit(2)
        ref.rzz(0.9, 0, 1)
        assert statevector_equivalent(
            ref, _as_circuit(rzz_decomposition(0.9, 0, 1), 2)
        )


class TestDecomposeToCxBasis:
    def test_passthrough_for_basis_gates(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.cx(0, 1)
        circ.measure(1)
        assert decompose_to_cx_basis(circ) == circ

    def test_swap_expanded(self):
        circ = QuantumCircuit(2)
        circ.swap(0, 1)
        out = decompose_to_cx_basis(circ)
        assert out.gate_counts() == {"cx": 3}

    def test_ccx_expanded(self):
        circ = QuantumCircuit(3)
        circ.ccx(0, 1, 2)
        out = decompose_to_cx_basis(circ)
        assert out.gate_counts().get("cx") == 6
        assert out.num_gates == 15

    def test_mixed_circuit_semantics_preserved(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.ccx(0, 1, 2)
        circ.cz(1, 2)
        circ.swap(0, 2)
        circ.cu1(math.pi / 4, 0, 1)
        out = decompose_to_cx_basis(circ)
        assert statevector_equivalent(circ, out)
        assert all(
            g.num_qubits <= 1 or g.name == "cx" or g.is_directive for g in out
        )

    def test_unknown_multiqubit_gate_rejected(self):
        circ = QuantumCircuit(3)
        circ.append(Gate("cswap", (0, 1, 2)))
        # cswap IS registered; craft an unregistered case via ch removal
        # is impossible, so instead check cswap expands fine
        out = decompose_to_cx_basis(circ)
        assert statevector_equivalent(circ, out)

    def test_cz_preserved_directive_ordering(self):
        circ = QuantumCircuit(3)
        circ.swap(0, 1)
        circ.barrier()
        circ.measure(2)
        out = decompose_to_cx_basis(circ)
        assert out[-1].name == "measure"
        assert out[-2].name == "barrier"
