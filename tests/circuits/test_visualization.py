"""Unit tests for ASCII circuit rendering."""

from repro.circuits import QuantumCircuit
from repro.circuits.visualization import (
    draw_circuit,
    draw_coupling,
    layout_diagram,
)
from repro.core import Layout


class TestDrawCircuit:
    def test_empty_circuit(self):
        text = draw_circuit(QuantumCircuit(2))
        lines = text.splitlines()
        assert lines[0].startswith("q0:")
        assert lines[1].startswith("q1:")

    def test_one_qubit_gate_label(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        assert "H" in draw_circuit(circ)

    def test_parameter_shown(self):
        circ = QuantumCircuit(1)
        circ.rz(0.5, 0)
        assert "RZ(0.5)" in draw_circuit(circ)

    def test_cx_control_target_symbols(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        text = draw_circuit(circ)
        q0_line = text.splitlines()[0]
        assert "●" in q0_line
        assert "X" in text.splitlines()[2]

    def test_vertical_connector_spans_middle_wire(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 2)
        text = draw_circuit(circ)
        middle = text.splitlines()[2]  # q1's wire row
        assert "│" in middle

    def test_sequential_gates_in_separate_columns(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        circ.t(0)
        line = draw_circuit(circ).splitlines()[0]
        assert line.index("H") < line.index("T")

    def test_parallel_gates_same_column(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.x(1)
        lines = draw_circuit(circ).splitlines()
        assert abs(lines[0].index("H") - lines[2].index("X")) <= 1

    def test_barrier_rendered(self):
        circ = QuantumCircuit(2)
        circ.barrier()
        assert "|" in draw_circuit(circ)

    def test_max_columns_truncates(self):
        circ = QuantumCircuit(1)
        for _ in range(10):
            circ.h(0)
        text = draw_circuit(circ, max_columns=3)
        assert "..." in text
        assert text.count("H") == 3

    def test_custom_labels(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        text = draw_circuit(circ, qubit_labels=["alice", "bob"])
        assert text.splitlines()[0].startswith("alice")

    def test_swap_rendered(self):
        circ = QuantumCircuit(2)
        circ.swap(0, 1)
        assert draw_circuit(circ).count("x") >= 2

    def test_all_wires_same_length(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(1, 2)
        circ.t(2)
        wire_lines = draw_circuit(circ).splitlines()[::2]
        assert len({len(line) for line in wire_lines}) == 1


class TestDrawCoupling:
    def test_header_and_rows(self, tokyo):
        text = draw_coupling(tokyo)
        lines = text.splitlines()
        assert "ibm_q20_tokyo" in lines[0]
        assert "43 couplings" in lines[0]
        assert len(lines) == 21

    def test_neighbors_listed(self, tokyo):
        text = draw_coupling(tokyo)
        q0_line = text.splitlines()[1]
        assert "Q1" in q0_line and "Q5" in q0_line


class TestLayoutDiagram:
    def test_rows(self):
        layout = Layout([2, 0, 1])
        text = layout_diagram(layout, 2)
        assert "q0 -> Q2" in text
        assert "q1 -> Q0" in text
        assert "q2" not in text
