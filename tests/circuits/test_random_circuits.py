"""Unit tests for the random circuit generators."""

import pytest

from repro.circuits.random_circuits import (
    random_circuit,
    random_clustered_circuit,
    random_cx_circuit,
)
from repro.exceptions import CircuitError


class TestRandomCircuit:
    def test_deterministic_for_seed(self):
        assert random_circuit(5, 30, seed=4) == random_circuit(5, 30, seed=4)

    def test_different_seeds_differ(self):
        assert random_circuit(5, 30, seed=1) != random_circuit(5, 30, seed=2)

    def test_exact_gate_count(self):
        assert random_circuit(4, 25, seed=0).num_gates == 25

    def test_two_qubit_fraction_zero(self):
        circ = random_circuit(4, 30, seed=0, two_qubit_fraction=0.0)
        assert circ.num_two_qubit_gates() == 0

    def test_two_qubit_fraction_one(self):
        circ = random_circuit(4, 30, seed=0, two_qubit_fraction=1.0)
        assert circ.num_two_qubit_gates() == 30

    def test_single_qubit_circuit_allowed_without_2q(self):
        circ = random_circuit(1, 10, seed=0, two_qubit_fraction=0.0)
        assert circ.num_qubits == 1

    def test_single_qubit_with_2q_rejected(self):
        with pytest.raises(CircuitError):
            random_circuit(1, 10, seed=0, two_qubit_fraction=0.5)

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            random_circuit(0, 5)

    def test_custom_gate_pool(self):
        circ = random_circuit(
            3, 20, seed=0, two_qubit_fraction=0.0, one_qubit_gates=("h",)
        )
        assert set(circ.gate_counts()) == {"h"}


class TestRandomCxCircuit:
    def test_all_cnots(self):
        circ = random_cx_circuit(5, 40, seed=1)
        assert circ.gate_counts() == {"cx": 40}

    def test_operands_in_range(self):
        circ = random_cx_circuit(6, 100, seed=2)
        for gate in circ:
            assert all(0 <= q < 6 for q in gate.qubits)


class TestClusteredCircuit:
    def test_exact_gate_count(self):
        circ = random_clustered_circuit(12, 60, seed=0)
        assert circ.num_gates == 60

    def test_locality_dominates(self):
        circ = random_clustered_circuit(
            12, 300, seed=0, cluster_size=4, cross_cluster_fraction=0.1
        )
        within = 0
        for gate in circ:
            a, b = gate.qubits
            if a // 4 == b // 4:
                within += 1
        assert within / circ.num_gates > 0.8

    def test_tiny_cluster_rejected(self):
        with pytest.raises(CircuitError):
            random_clustered_circuit(8, 10, cluster_size=1)

    def test_too_few_qubits_rejected(self):
        with pytest.raises(CircuitError):
            random_clustered_circuit(1, 10, cluster_size=4)
