"""Unit tests for the QuantumCircuit container."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError


class TestConstruction:
    def test_empty_circuit(self):
        circ = QuantumCircuit(3)
        assert circ.num_qubits == 3
        assert circ.num_gates == 0
        assert len(circ) == 0

    def test_negative_qubits_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(-1)

    def test_default_clbits_match_qubits(self):
        assert QuantumCircuit(4).num_clbits == 4

    def test_explicit_clbits(self):
        assert QuantumCircuit(4, num_clbits=2).num_clbits == 2

    def test_builder_methods(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(0, 1)
        circ.rz(0.3, 2)
        circ.ccx(0, 1, 2)
        circ.measure(1)
        assert [g.name for g in circ] == ["h", "cx", "rz", "ccx", "measure"]

    def test_add_gate_by_name(self):
        circ = QuantumCircuit(2)
        circ.add_gate("cx", 0, 1)
        circ.add_gate("rz", 1, params=[0.5])
        assert circ[0] == Gate("cx", (0, 1))
        assert circ[1].params == (0.5,)

    def test_out_of_range_operand_rejected(self):
        circ = QuantumCircuit(2)
        with pytest.raises(CircuitError, match="uses qubit 2"):
            circ.cx(0, 2)

    def test_out_of_range_clbit_rejected(self):
        circ = QuantumCircuit(2, num_clbits=1)
        with pytest.raises(CircuitError, match="clbit"):
            circ.measure(0, clbit=5)

    def test_barrier_defaults_to_all_qubits(self):
        circ = QuantumCircuit(3)
        circ.barrier()
        assert circ[0].qubits == (0, 1, 2)

    def test_extend(self):
        circ = QuantumCircuit(2)
        circ.extend([Gate("h", (0,)), Gate("cx", (0, 1))])
        assert circ.num_gates == 2


class TestViews:
    def _sample(self):
        circ = QuantumCircuit(4, name="sample")
        circ.h(0)
        circ.cx(0, 1)
        circ.cx(2, 3)
        circ.cx(0, 1)
        circ.t(2)
        circ.measure(3)
        return circ

    def test_gate_counts(self):
        counts = self._sample().gate_counts()
        assert counts == {"h": 1, "cx": 3, "t": 1, "measure": 1}

    def test_count_gates_excludes_directives(self):
        circ = self._sample()
        assert circ.count_gates() == 5
        assert circ.count_gates(include_directives=True) == 6

    def test_two_qubit_gates(self):
        gates = self._sample().two_qubit_gates()
        assert len(gates) == 3
        assert all(g.name == "cx" for g in gates)

    def test_num_two_qubit_gates(self):
        assert self._sample().num_two_qubit_gates() == 3

    def test_interaction_pairs_multiset(self):
        pairs = self._sample().interaction_pairs()
        assert pairs[(0, 1)] == 2
        assert pairs[(2, 3)] == 1

    def test_used_qubits(self):
        circ = QuantumCircuit(6)
        circ.cx(1, 4)
        assert circ.used_qubits() == [1, 4]

    def test_gates_snapshot_is_immutable_view(self):
        circ = self._sample()
        snapshot = circ.gates
        circ.h(0)
        assert len(snapshot) == 6
        assert circ.num_gates == 7


class TestTransforms:
    def test_copy_is_independent(self):
        circ = QuantumCircuit(2, name="orig")
        circ.h(0)
        clone = circ.copy()
        clone.x(1)
        assert circ.num_gates == 1
        assert clone.num_gates == 2
        assert clone.name == "orig"

    def test_compose_order(self):
        a = QuantumCircuit(2)
        a.h(0)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        combined = a.compose(b)
        assert [g.name for g in combined] == ["h", "cx"]

    def test_compose_wider_other_rejected(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_remapped(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 2)
        remapped = circ.remapped([2, 1, 0])
        assert remapped[0].qubits == (2, 0)

    def test_without_directives(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.barrier()
        circ.measure(0)
        pure = circ.without_directives()
        assert pure.num_gates == 1
        assert pure[0].name == "h"

    def test_equality(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(0, 1)
        assert a == b
        b.h(0)
        assert a != b

    def test_equality_respects_width(self):
        a = QuantumCircuit(2)
        b = QuantumCircuit(3)
        assert a != b

    def test_repr_mentions_name_and_size(self):
        circ = QuantumCircuit(2, name="zed")
        text = repr(circ)
        assert "zed" in text and "num_qubits=2" in text
