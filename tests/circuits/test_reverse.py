"""Unit tests for circuit reversal (paper Fig. 5)."""

from repro.circuits import (
    QuantumCircuit,
    inverted_circuit,
    random_circuit,
    reversed_circuit,
)
from repro.verify import Statevector


class TestReversedCircuit:
    def test_order_reversed_gates_identical(self):
        """Paper §IV-C2: 'The two-qubit gates in the reverse circuit will
        be exactly the same with only the order reversed.'"""
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        circ.cx(0, 2)
        rev = reversed_circuit(circ)
        assert [g.qubits for g in rev] == [(0, 2), (1, 2), (0, 1)]
        assert [g.name for g in rev] == ["cx", "cx", "cx"]

    def test_double_reverse_is_identity(self):
        circ = random_circuit(4, 30, seed=1)
        assert reversed_circuit(reversed_circuit(circ)) == circ.without_directives()

    def test_directives_dropped(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.barrier()
        circ.measure(0)
        rev = reversed_circuit(circ)
        assert [g.name for g in rev] == ["h"]

    def test_name_annotated(self):
        circ = QuantumCircuit(2, name="foo")
        assert reversed_circuit(circ).name == "foo_reversed"

    def test_same_interaction_multiset(self):
        circ = random_circuit(5, 50, seed=7, two_qubit_fraction=0.8)
        assert (
            reversed_circuit(circ).interaction_pairs()
            == circ.interaction_pairs()
        )


class TestInvertedCircuit:
    def test_compose_with_inverse_is_identity(self):
        circ = random_circuit(4, 40, seed=3)
        identity = circ.compose(inverted_circuit(circ))
        probe = Statevector.random(4, seed=11)
        out = probe.copy().apply_circuit(identity)
        assert probe.fidelity(out) > 1 - 1e-9

    def test_inverse_of_inverse_restores_names(self):
        circ = QuantumCircuit(2)
        circ.t(0)
        circ.s(1)
        circ.cx(0, 1)
        double = inverted_circuit(inverted_circuit(circ))
        assert [g.name for g in double] == ["t", "s", "cx"]

    def test_rotation_angles_negated(self):
        circ = QuantumCircuit(1)
        circ.rz(0.5, 0)
        inv = inverted_circuit(circ)
        assert inv[0].params == (-0.5,)
