"""Unit tests for the gate library."""

import math

import pytest

from repro.circuits.gates import GATE_SPECS, Gate
from repro.exceptions import CircuitError


class TestGateConstruction:
    def test_simple_gate(self):
        gate = Gate("h", (0,))
        assert gate.name == "h"
        assert gate.qubits == (0,)
        assert gate.params == ()

    def test_two_qubit_gate(self):
        gate = Gate("cx", (1, 4))
        assert gate.num_qubits == 2
        assert gate.is_two_qubit

    def test_parameterised_gate(self):
        gate = Gate("rz", (2,), (0.5,))
        assert gate.params == (0.5,)

    def test_qubits_coerced_to_tuple(self):
        gate = Gate("cx", [0, 1])
        assert gate.qubits == (0, 1)

    def test_unknown_name_rejected(self):
        with pytest.raises(CircuitError, match="unknown gate"):
            Gate("frobnicate", (0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(CircuitError, match="expects 2 qubit"):
            Gate("cx", (0,))

    def test_duplicate_operands_rejected(self):
        with pytest.raises(CircuitError, match="duplicate"):
            Gate("cx", (3, 3))

    def test_wrong_param_count_rejected(self):
        with pytest.raises(CircuitError, match="parameter"):
            Gate("rz", (0,))

    def test_non_numeric_param_rejected(self):
        with pytest.raises(CircuitError, match="not a real number"):
            Gate("rz", (0,), ("pi",))

    def test_barrier_is_variadic(self):
        assert Gate("barrier", (0, 1, 2)).num_qubits == 3
        assert Gate("barrier", (5,)).num_qubits == 1

    def test_empty_barrier_rejected(self):
        with pytest.raises(CircuitError, match="barrier"):
            Gate("barrier", ())

    def test_gates_hashable_and_equal(self):
        a = Gate("cx", (0, 1))
        b = Gate("cx", (0, 1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Gate("cx", (1, 0))


class TestGateProperties:
    def test_directives_flagged(self):
        assert Gate("measure", (0,)).is_directive
        assert Gate("barrier", (0,)).is_directive
        assert Gate("reset", (0,)).is_directive
        assert not Gate("cx", (0, 1)).is_directive

    def test_directives_not_routable(self):
        assert not Gate("measure", (0,)).is_two_qubit

    def test_three_qubit_not_routable_two_qubit(self):
        assert not Gate("ccx", (0, 1, 2)).is_two_qubit

    def test_spec_lookup(self):
        assert Gate("t", (0,)).spec is GATE_SPECS["t"]

    def test_str_rendering(self):
        assert str(Gate("cx", (0, 1))) == "cx 0, 1"
        assert str(Gate("rz", (2,), (0.5,))) == "rz(0.5) 2"


class TestGateInverse:
    @pytest.mark.parametrize("name", ["x", "y", "z", "h", "cx", "cz", "swap", "ccx"])
    def test_self_inverse(self, name):
        spec = GATE_SPECS[name]
        gate = Gate(name, tuple(range(spec.num_qubits)))
        assert gate.inverse() == gate

    @pytest.mark.parametrize(
        "name,inverse", [("s", "sdg"), ("sdg", "s"), ("t", "tdg"), ("tdg", "t")]
    )
    def test_named_inverses(self, name, inverse):
        assert Gate(name, (0,)).inverse().name == inverse

    @pytest.mark.parametrize("name", ["rx", "ry", "rz", "u1"])
    def test_rotation_inverse_negates(self, name):
        gate = Gate(name, (0,), (0.7,))
        assert gate.inverse().params == (-0.7,)

    def test_u3_inverse(self):
        gate = Gate("u3", (0,), (0.1, 0.2, 0.3))
        inv = gate.inverse()
        assert inv.name == "u3"
        assert inv.params == (-0.1, -0.3, -0.2)

    def test_u2_inverse_is_u3(self):
        inv = Gate("u2", (0,), (0.2, 0.3)).inverse()
        assert inv.name == "u3"
        assert inv.params == pytest.approx((-math.pi / 2, -0.3, -0.2))

    def test_double_inverse_identity_for_rotations(self):
        gate = Gate("rz", (1,), (1.25,))
        assert gate.inverse().inverse() == gate

    def test_directive_inverse_is_itself(self):
        gate = Gate("measure", (0,))
        assert gate.inverse() is gate


class TestGateRemap:
    def test_remap_with_list(self):
        gate = Gate("cx", (0, 1))
        assert gate.remapped([5, 7]).qubits == (5, 7)

    def test_remap_with_dict(self):
        gate = Gate("cx", (0, 2))
        assert gate.remapped({0: 9, 2: 4}).qubits == (9, 4)

    def test_remap_preserves_params_and_clbit(self):
        gate = Gate("measure", (1,), clbit=3)
        remapped = gate.remapped([2, 6])
        assert remapped.qubits == (6,)
        assert remapped.clbit == 3
