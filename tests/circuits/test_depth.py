"""Unit tests for ASAP scheduling and circuit depth."""

from repro.circuits import QuantumCircuit, circuit_depth, schedule_asap
from repro.circuits.depth import layers_asap
from repro.circuits.gates import Gate


class TestScheduleAsap:
    def test_sequential_on_one_wire(self):
        gates = [Gate("h", (0,)), Gate("t", (0,)), Gate("x", (0,))]
        assert schedule_asap(gates, 1) == [0, 1, 2]

    def test_parallel_on_disjoint_wires(self):
        gates = [Gate("h", (0,)), Gate("h", (1,)), Gate("h", (2,))]
        assert schedule_asap(gates, 3) == [0, 0, 0]

    def test_two_qubit_gate_synchronises(self):
        gates = [Gate("h", (0,)), Gate("cx", (0, 1)), Gate("t", (1,))]
        assert schedule_asap(gates, 2) == [0, 1, 2]

    def test_barrier_aligns_without_consuming_step(self):
        gates = [
            Gate("h", (0,)),
            Gate("barrier", (0, 1)),
            Gate("t", (1,)),
        ]
        slots = schedule_asap(gates, 2)
        # t starts when the barrier releases: step 1 (h occupied step 0)
        assert slots == [0, 1, 1]


class TestCircuitDepth:
    def test_empty_circuit_depth_zero(self):
        assert circuit_depth(QuantumCircuit(3)) == 0

    def test_single_layer(self):
        circ = QuantumCircuit(4)
        for q in range(4):
            circ.h(q)
        assert circuit_depth(circ) == 1

    def test_paper_figure3_original_depth(self):
        """The Fig. 3 original circuit has depth 5."""
        circ = QuantumCircuit(4)
        for a, b in [(0, 1), (2, 3), (1, 3), (1, 2), (2, 3), (0, 3)]:
            circ.cx(a, b)
        assert circuit_depth(circ) == 5

    def test_directives_excluded_by_default(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.measure(0)
        circ.measure(1)
        assert circuit_depth(circ) == 1
        assert circuit_depth(circ, count_directives=True) == 2

    def test_swap_counts_as_one_step(self):
        circ = QuantumCircuit(2)
        circ.swap(0, 1)
        assert circuit_depth(circ) == 1

    def test_depth_monotone_under_append(self):
        circ = QuantumCircuit(3)
        last = 0
        import random

        rng = random.Random(0)
        for _ in range(30):
            a, b = rng.sample(range(3), 2)
            circ.cx(a, b)
            depth = circuit_depth(circ)
            assert depth >= last
            last = depth


class TestLayersAsap:
    def test_layers_match_depth(self):
        circ = QuantumCircuit(4)
        circ.h(0)
        circ.cx(0, 1)
        circ.cx(2, 3)
        circ.cx(1, 2)
        layers = layers_asap(circ)
        assert len(layers) == circuit_depth(circ)

    def test_gates_within_layer_disjoint(self):
        from repro.circuits import random_circuit

        circ = random_circuit(6, 50, seed=9, two_qubit_fraction=0.5)
        for layer in layers_asap(circ):
            used = set()
            for gate in layer:
                assert not set(gate.qubits) & used
                used |= set(gate.qubits)

    def test_all_gates_present(self):
        from repro.circuits import random_circuit

        circ = random_circuit(5, 40, seed=2)
        layers = layers_asap(circ)
        assert sum(len(layer) for layer in layers) == circ.num_gates
