"""Unit tests for peephole optimization passes."""

import math

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.transforms import (
    cancel_adjacent_inverses,
    merge_rotations,
    optimization_summary,
    optimize_circuit,
    remove_identity_gates,
)
from repro.verify import statevector_equivalent


class TestCancelAdjacentInverses:
    def test_hh_cancels(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        circ.h(0)
        assert cancel_adjacent_inverses(circ).num_gates == 0

    def test_cxcx_cancels(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        circ.cx(0, 1)
        assert cancel_adjacent_inverses(circ).num_gates == 0

    def test_t_tdg_cancels(self):
        circ = QuantumCircuit(1)
        circ.t(0)
        circ.tdg(0)
        assert cancel_adjacent_inverses(circ).num_gates == 0

    def test_reversed_cx_does_not_cancel(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        circ.cx(1, 0)
        assert cancel_adjacent_inverses(circ).num_gates == 2

    def test_interposed_gate_blocks(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        circ.t(1)
        circ.cx(0, 1)
        assert cancel_adjacent_inverses(circ).num_gates == 3

    def test_gate_on_other_wire_does_not_block(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.t(2)
        circ.cx(0, 1)
        out = cancel_adjacent_inverses(circ)
        assert [g.name for g in out] == ["t"]

    def test_cascading_cancellation(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        circ.h(0)
        circ.h(0)
        circ.cx(0, 1)
        assert cancel_adjacent_inverses(circ).num_gates == 0

    def test_barrier_blocks_cancellation(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        circ.barrier(0)
        circ.h(0)
        assert cancel_adjacent_inverses(circ).num_gates == 3

    def test_rotation_pair_cancels(self):
        circ = QuantumCircuit(1)
        circ.rz(0.5, 0)
        circ.rz(-0.5, 0)
        assert cancel_adjacent_inverses(circ).num_gates == 0

    def test_semantics_preserved(self):
        circ = random_circuit(4, 40, seed=3)
        out = cancel_adjacent_inverses(circ)
        assert statevector_equivalent(circ, out)


class TestMergeRotations:
    def test_same_axis_merges(self):
        circ = QuantumCircuit(1)
        circ.rz(0.3, 0)
        circ.rz(0.4, 0)
        out = merge_rotations(circ)
        assert out.num_gates == 1
        assert out[0].params[0] == pytest.approx(0.7)

    def test_zero_sum_dropped(self):
        circ = QuantumCircuit(1)
        circ.rx(1.0, 0)
        circ.rx(-1.0, 0)
        assert merge_rotations(circ).num_gates == 0

    def test_different_axes_not_merged(self):
        circ = QuantumCircuit(1)
        circ.rz(0.3, 0)
        circ.rx(0.3, 0)
        assert merge_rotations(circ).num_gates == 2

    def test_two_qubit_phase_merges(self):
        circ = QuantumCircuit(2)
        circ.rzz(0.2, 0, 1)
        circ.rzz(0.3, 0, 1)
        out = merge_rotations(circ)
        assert out.num_gates == 1
        assert out[0].params[0] == pytest.approx(0.5)

    def test_triple_merges_to_one(self):
        circ = QuantumCircuit(1)
        for _ in range(3):
            circ.u1(0.25, 0)
        out = merge_rotations(circ)
        assert out.num_gates == 1
        assert out[0].params[0] == pytest.approx(0.75)

    def test_semantics_preserved(self):
        circ = QuantumCircuit(2)
        circ.rz(0.3, 0)
        circ.rz(0.9, 0)
        circ.h(1)
        circ.rzz(0.1, 0, 1)
        circ.rzz(0.2, 0, 1)
        assert statevector_equivalent(circ, merge_rotations(circ))


class TestRemoveIdentity:
    def test_id_removed(self):
        circ = QuantumCircuit(1)
        circ.id(0)
        circ.h(0)
        out = remove_identity_gates(circ)
        assert [g.name for g in out] == ["h"]

    def test_zero_rotation_removed(self):
        circ = QuantumCircuit(1)
        circ.rz(0.0, 0)
        assert remove_identity_gates(circ).num_gates == 0

    def test_nonzero_rotation_kept(self):
        circ = QuantumCircuit(1)
        circ.rz(1e-6, 0)
        assert remove_identity_gates(circ).num_gates == 1


class TestOptimizeCircuit:
    def test_fixpoint_idempotent(self):
        circ = random_circuit(4, 50, seed=7)
        once = optimize_circuit(circ)
        twice = optimize_circuit(once)
        assert once == twice

    def test_combined_example(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        circ.rz(0.4, 1)
        circ.rz(-0.4, 1)
        circ.cx(0, 1)
        circ.id(0)
        assert optimize_circuit(circ).num_gates == 0

    def test_routed_circuit_shrinks(self, tokyo):
        """Post-routing cleanup finds real savings: the SWAP's first
        CNOT cancels against the gate it was inserted after."""
        from repro.core import compile_circuit

        circ = random_circuit(8, 60, seed=2, two_qubit_fraction=0.9)
        result = compile_circuit(circ, tokyo, seed=0, num_trials=2)
        physical = result.physical_circuit()
        optimized = optimize_circuit(physical)
        assert optimized.count_gates() <= physical.count_gates()
        assert statevector_equivalent(
            physical.without_directives(), optimized.without_directives()
        )

    def test_summary_fields(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        circ.h(0)
        out = optimize_circuit(circ)
        summary = optimization_summary(circ, out)
        assert summary["gates_before"] == 2
        assert summary["gates_after"] == 0
        assert summary["gates_removed"] == 2

    def test_property_random_circuits_equivalent(self):
        for seed in range(6):
            circ = random_circuit(5, 40, seed=seed)
            out = optimize_circuit(circ)
            assert out.num_gates <= circ.num_gates
            if out.num_gates:
                assert statevector_equivalent(circ, out)
