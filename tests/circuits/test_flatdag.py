"""Unit tests for the compile-once flat IR (repro.circuits.flatdag).

The FlatDag/FrontierState pair must be *structurally and behaviourally
equivalent* to the CircuitDag/DagFrontier object path — same edges,
same front layers, same extended-set order — because the router's
byte-identical-output guarantee rests on it.
"""

import pickle
import random

import pytest

from repro.circuits import CircuitDag, QuantumCircuit, random_circuit
from repro.circuits.dag import DagFrontier
from repro.circuits.flatdag import FlatDag, FrontierState
from repro.exceptions import CircuitError


def paper_figure4_circuit() -> QuantumCircuit:
    circ = QuantumCircuit(5)
    circ.cx(0, 1)
    circ.cx(2, 3)
    circ.cx(1, 2)
    circ.cx(0, 3)
    circ.cx(3, 4)
    circ.cx(0, 4)
    return circ


class TestFlatDagStructure:
    def test_matches_object_dag_nodewise(self):
        circ = random_circuit(8, 120, seed=3, two_qubit_fraction=0.7)
        flat = FlatDag.from_circuit(circ)
        obj = CircuitDag(circ)
        assert flat.num_nodes == len(obj)
        for i in range(flat.num_nodes):
            assert flat.successors(i) == obj.successors(i)
            assert flat.predecessors(i) == obj.predecessors(i)
            assert flat.indegree[i] == obj.indegree(i)
            node_gate = obj.nodes[i].gate
            assert flat.gates[i] is circ.gates[i]
            assert flat.pairs[i] == node_gate.qubits
            assert bool(flat.two_qubit[i]) == node_gate.is_two_qubit
            if node_gate.is_two_qubit:
                assert (flat.qubit_a[i], flat.qubit_b[i]) == node_gate.qubits

    def test_succs_view_matches_csr(self):
        circ = random_circuit(6, 80, seed=9, two_qubit_fraction=0.8)
        flat = FlatDag.from_circuit(circ)
        for i in range(flat.num_nodes):
            assert list(flat.succs[i]) == flat.successors(i)

    def test_roots_match_object_dag(self):
        circ = random_circuit(7, 60, seed=1, two_qubit_fraction=0.6)
        assert list(FlatDag.from_circuit(circ).roots) == CircuitDag(circ).roots()

    def test_metadata_copied(self):
        circ = QuantumCircuit(4, name="meta", num_clbits=2)
        circ.cx(0, 1)
        flat = FlatDag.from_circuit(circ)
        assert flat.name == "meta"
        assert flat.num_qubits == 4
        assert flat.num_clbits == 2
        assert len(flat) == 1

    def test_routable_flag(self):
        ok = QuantumCircuit(3)
        ok.cx(0, 1)
        ok.barrier()
        assert FlatDag.from_circuit(ok).routable
        bad = QuantumCircuit(3)
        bad.ccx(0, 1, 2)
        assert not FlatDag.from_circuit(bad).routable

    def test_empty_circuit(self):
        flat = FlatDag.from_circuit(QuantumCircuit(3))
        assert flat.num_nodes == 0
        assert flat.roots == ()
        frontier = FrontierState(flat)
        assert frontier.done

    def test_pickle_roundtrip(self):
        circ = random_circuit(6, 50, seed=4, two_qubit_fraction=0.7)
        flat = FlatDag.from_circuit(circ)
        clone = pickle.loads(pickle.dumps(flat))
        assert clone.num_nodes == flat.num_nodes
        assert clone.succ == flat.succ
        assert clone.succ_off == flat.succ_off
        assert clone.pred == flat.pred
        assert clone.gates == flat.gates
        # A frontier over the unpickled IR walks identically.
        a, b = FrontierState(flat), FrontierState(clone)
        assert a.front_list() == b.front_list()


def _drive_both(circ: QuantumCircuit, seed: int, ext_size: int = 20):
    """Random co-execution: make identical choices on both frontiers and
    assert front layers, drains, and extended sets agree at every step."""
    obj = DagFrontier(CircuitDag(circ))
    flat = FrontierState(FlatDag.from_circuit(circ))
    rng = random.Random(seed)
    while not flat.done:
        assert obj.drain_nonrouting() == flat.drain_nonrouting()
        assert sorted(obj.front) == flat.front_list()
        assert obj.done == flat.done
        if flat.done:
            break
        extended_obj = obj.extended_set(ext_size)
        extended_flat = flat.extended_nodes(ext_size)
        assert [g.qubits for g in extended_obj] == [
            flat.dag.pairs[i] for i in extended_flat
        ]
        pick = rng.choice(flat.front_list())
        obj.execute_front_gate(pick)
        flat.execute_front_gate(pick)
    assert obj.done and flat.done


class TestFrontierEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_trace_equivalence(self, seed):
        circ = random_circuit(8, 100, seed=seed, two_qubit_fraction=0.7)
        _drive_both(circ, seed)

    def test_trace_equivalence_with_directives(self):
        circ = random_circuit(6, 60, seed=11, two_qubit_fraction=0.5)
        circ.barrier()
        for q in range(6):
            circ.measure(q)
        _drive_both(circ, 5)

    def test_paper_figure4_front(self):
        flat = FrontierState(FlatDag.from_circuit(paper_figure4_circuit()))
        flat.drain_nonrouting()
        assert flat.front_list() == [0, 1]

    def test_small_extended_sizes(self):
        circ = random_circuit(8, 80, seed=2, two_qubit_fraction=0.9)
        for size in (0, 1, 3):
            obj = DagFrontier(CircuitDag(circ))
            flat = FrontierState(FlatDag.from_circuit(circ))
            obj.drain_nonrouting()
            flat.drain_nonrouting()
            assert [g.qubits for g in obj.extended_set(size)] == [
                flat.dag.pairs[i] for i in flat.extended_nodes(size)
            ]


class TestFrontierReset:
    def test_reset_equals_fresh(self):
        circ = random_circuit(8, 90, seed=7, two_qubit_fraction=0.8)
        ir = FlatDag.from_circuit(circ)
        frontier = FrontierState(ir)
        rng = random.Random(0)
        # Partially execute, then reset.
        frontier.drain_nonrouting()
        for _ in range(10):
            if not frontier.front_list():
                break
            frontier.execute_front_gate(rng.choice(frontier.front_list()))
            frontier.drain_nonrouting()
        frontier.extended_nodes(20)
        frontier.reset()
        fresh = FrontierState(ir)
        assert frontier.front_list() == fresh.front_list()
        assert frontier.remaining == fresh.remaining
        assert frontier.executed == fresh.executed
        assert frontier.num_executed == fresh.num_executed == 0
        assert frontier.drain_nonrouting() == fresh.drain_nonrouting()
        assert frontier.extended_nodes(20) == fresh.extended_nodes(20)

    def test_reset_then_full_replay_identical(self):
        circ = random_circuit(7, 70, seed=13, two_qubit_fraction=0.7)
        ir = FlatDag.from_circuit(circ)
        frontier = FrontierState(ir)

        def trace(fs):
            steps = []
            rng = random.Random(99)
            while not fs.done:
                steps.append(tuple(fs.drain_nonrouting()))
                front = fs.front_list()
                if not front:
                    break
                steps.append(tuple(fs.extended_nodes(5)))
                pick = rng.choice(front)
                fs.execute_front_gate(pick)
                steps.append(pick)
            return steps

        first = trace(frontier)
        frontier.reset()
        assert trace(frontier) == first

    def test_double_execute_rejected(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        frontier = FrontierState(FlatDag.from_circuit(circ))
        frontier.execute_front_gate(0)
        with pytest.raises(CircuitError, match="not in the front layer"):
            frontier.execute_front_gate(0)
