"""Unit tests for the dependency DAG, frontier, and layering."""

import pytest

from repro.circuits import CircuitDag, QuantumCircuit
from repro.circuits.dag import DagFrontier
from repro.exceptions import CircuitError


def paper_figure4_circuit() -> QuantumCircuit:
    """The Fig. 4 example: 6 qubits, 2q gates g1..g8 plus 1q gates.

    Gate wiring follows the paper's figure (0-indexed qubits):
    g1=(q2,q3)->(1,2), g2=(q6,q4)... we reproduce the *dependency
    shape*: two independent roots, then chained dependencies.
    """
    circ = QuantumCircuit(6, name="fig4")
    circ.h(0)
    circ.cx(1, 2)   # g1 (root)
    circ.cx(3, 5)   # g2 (root)
    circ.cx(1, 3)   # g3 depends on g1, g2
    circ.cx(0, 2)   # g4 depends on g1 (via q2) and the leading h
    circ.cx(3, 4)   # g5 depends on g3
    return circ


class TestDagConstruction:
    def test_node_count(self):
        circ = paper_figure4_circuit()
        assert len(CircuitDag(circ)) == circ.num_gates

    def test_roots(self):
        dag = CircuitDag(paper_figure4_circuit())
        # the leading h and both root CNOTs have no predecessors
        assert dag.roots() == [0, 1, 2]

    def test_dependency_edges(self):
        dag = CircuitDag(paper_figure4_circuit())
        # g3 (index 3) depends on g1 (1) and g2 (2)
        assert dag.predecessors(3) == [1, 2]
        # g5 (index 5) depends on g3 only
        assert dag.predecessors(5) == [3]

    def test_successors_mirror_predecessors(self):
        dag = CircuitDag(paper_figure4_circuit())
        for node in dag.nodes:
            for pred in node.predecessors:
                assert node.index in dag.successors(pred)

    def test_shared_two_qubits_single_edge(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        circ.cx(1, 0)
        dag = CircuitDag(circ)
        assert dag.predecessors(1) == [0]

    def test_indegree(self):
        dag = CircuitDag(paper_figure4_circuit())
        assert dag.indegree(0) == 0
        assert dag.indegree(3) == 2


class TestFrontLayer:
    def test_paper_figure4_front_layer(self):
        dag = CircuitDag(paper_figure4_circuit())
        # After the leading h executes, g1 and g2 are the front layer.
        assert dag.initial_front_layer() == [1, 2]

    def test_front_layer_skips_blocked_gates(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        assert CircuitDag(circ).initial_front_layer() == [0]

    def test_front_layer_empty_for_one_qubit_circuit(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.t(1)
        assert CircuitDag(circ).initial_front_layer() == []


class TestDagFrontier:
    def test_drain_cascades_through_1q_chains(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.t(0)
        circ.cx(0, 1)
        frontier = DagFrontier(CircuitDag(circ))
        drained = frontier.drain_nonrouting()
        assert drained == [0, 1]
        assert frontier.front == {2}

    def test_execute_front_gate_releases_successors(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        frontier = DagFrontier(CircuitDag(circ))
        frontier.drain_nonrouting()
        frontier.execute_front_gate(0)
        assert frontier.front == {1}

    def test_execute_non_front_gate_rejected(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        frontier = DagFrontier(CircuitDag(circ))
        with pytest.raises(CircuitError, match="not in the front layer"):
            frontier.execute_front_gate(1)

    def test_double_execute_rejected(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        frontier = DagFrontier(CircuitDag(circ))
        frontier.execute_front_gate(0)
        with pytest.raises(CircuitError, match="already executed"):
            frontier._execute(0)

    def test_done_after_all_gates(self):
        circ = paper_figure4_circuit()
        frontier = DagFrontier(CircuitDag(circ))
        frontier.drain_nonrouting()
        while not frontier.done:
            index = min(frontier.front)
            frontier.execute_front_gate(index)
            frontier.drain_nonrouting()
        assert frontier.num_executed == circ.num_gates

    def test_front_gates_sorted(self):
        dag = CircuitDag(paper_figure4_circuit())
        frontier = DagFrontier(dag)
        frontier.drain_nonrouting()
        indices = [i for i, _ in frontier.front_gates()]
        assert indices == sorted(indices)


class TestExtendedSet:
    def test_extended_set_returns_closest_successors(self):
        circ = QuantumCircuit(4)
        circ.cx(0, 1)   # front
        circ.cx(2, 3)   # front
        circ.cx(1, 2)   # depth 1
        circ.cx(0, 3)   # depth 2 (depends on both earlier)
        frontier = DagFrontier(CircuitDag(circ))
        extended = frontier.extended_set(1)
        assert [g.qubits for g in extended] == [(1, 2)]

    def test_extended_set_size_limit(self):
        circ = QuantumCircuit(2)
        for _ in range(10):
            circ.cx(0, 1)
        frontier = DagFrontier(CircuitDag(circ))
        assert len(frontier.extended_set(4)) == 4

    def test_extended_set_zero_size(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        frontier = DagFrontier(CircuitDag(circ))
        assert frontier.extended_set(0) == []

    def test_extended_set_skips_1q_gates(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.h(1)
        circ.t(1)
        circ.cx(1, 2)
        frontier = DagFrontier(CircuitDag(circ))
        extended = frontier.extended_set(5)
        assert [g.qubits for g in extended] == [(1, 2)]

    def test_extended_set_excludes_front_layer_itself(self):
        circ = QuantumCircuit(4)
        circ.cx(0, 1)
        circ.cx(2, 3)
        frontier = DagFrontier(CircuitDag(circ))
        assert frontier.extended_set(10) == []


class TestLayers:
    def test_two_qubit_layers_disjoint(self):
        circ = QuantumCircuit(4)
        circ.cx(0, 1)
        circ.cx(2, 3)
        circ.cx(1, 2)
        layers = CircuitDag(circ).two_qubit_layers()
        assert layers == [[0, 1], [2]]

    def test_layers_ignore_1q_gates(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(0, 1)
        circ.t(1)
        circ.cx(1, 2)
        layers = CircuitDag(circ).two_qubit_layers()
        assert layers == [[1], [3]]

    def test_layers_cover_all_two_qubit_gates(self):
        from repro.circuits import random_circuit

        circ = random_circuit(6, 60, seed=3, two_qubit_fraction=0.6)
        layers = CircuitDag(circ).two_qubit_layers()
        flattened = sorted(i for layer in layers for i in layer)
        expected = sorted(
            i for i, g in enumerate(circ) if g.is_two_qubit
        )
        assert flattened == expected

    def test_layer_gates_share_no_qubits(self):
        from repro.circuits import random_circuit

        circ = random_circuit(8, 80, seed=5, two_qubit_fraction=0.8)
        dag = CircuitDag(circ)
        for layer in dag.two_qubit_layers():
            seen = set()
            for index in layer:
                qubits = set(circ[index].qubits)
                assert not qubits & seen
                seen |= qubits


class TestLinearisation:
    def test_circuit_order_is_linearisation(self):
        dag = CircuitDag(paper_figure4_circuit())
        assert dag.is_linearisation(range(len(dag)))

    def test_swapped_dependent_gates_rejected(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        dag = CircuitDag(circ)
        assert not dag.is_linearisation([1, 0])

    def test_swapped_independent_gates_accepted(self):
        circ = QuantumCircuit(4)
        circ.cx(0, 1)
        circ.cx(2, 3)
        dag = CircuitDag(circ)
        assert dag.is_linearisation([1, 0])

    def test_wrong_node_set_rejected(self):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        assert not CircuitDag(circ).is_linearisation([0, 0])
