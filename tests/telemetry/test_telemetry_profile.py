"""Router profiler: aggregate semantics, merging, and scoping."""

import threading

from repro.telemetry.profile import (
    RouterProfiler,
    active_router_profiler,
    profiled_routing,
)


class TestRecordStep:
    def test_aggregates_candidates_and_ties(self):
        prof = RouterProfiler()
        prof.record_step(4, 2)
        prof.record_step(10, 1)
        assert prof.steps == 2
        assert prof.candidates_total == 14
        assert prof.candidates_max == 10
        assert prof.tie_total == 3
        assert prof.tie_max == 2

    def test_negative_candidates_skip_candidate_stats(self):
        prof = RouterProfiler()
        prof.record_step(-1, 3)
        assert prof.steps == 1
        assert prof.candidates_total == 0
        assert prof.candidates_max == 0
        assert prof.tie_total == 3

    def test_zero_tie_skips_tie_stats(self):
        prof = RouterProfiler()
        prof.record_step(5, 0)
        assert prof.steps == 1
        assert prof.tie_total == 0
        assert prof.tie_max == 0

    def test_add_kernel(self):
        prof = RouterProfiler()
        prof.add_kernel(0.25)
        prof.add_kernel(0.5)
        assert prof.kernel_calls == 2
        assert prof.kernel_seconds == 0.75

    def test_empty_property(self):
        prof = RouterProfiler()
        assert prof.empty
        prof.record_step(-1, 0)
        assert not prof.empty


class TestMerge:
    def test_merge_sums_and_maxes(self):
        a = RouterProfiler()
        a.record_step(4, 2)
        a.add_kernel(0.1)
        b = RouterProfiler()
        b.record_step(9, 5)
        b.add_kernel(0.2)
        a.merge(b)
        assert a.steps == 2
        assert a.candidates_total == 13
        assert a.candidates_max == 9
        assert a.tie_max == 5
        assert a.kernel_calls == 2
        assert abs(a.kernel_seconds - 0.3) < 1e-12

    def test_merge_dict_round_trips(self):
        source = RouterProfiler()
        source.record_step(6, 3)
        source.add_kernel(0.125)
        target = RouterProfiler()
        target.merge_dict(source.to_dict())
        assert target.to_dict() == source.to_dict()

    def test_to_dict_means_only_with_steps(self):
        prof = RouterProfiler()
        assert "candidates_mean" not in prof.to_dict()
        prof.record_step(4, 2)
        payload = prof.to_dict()
        assert payload["candidates_mean"] == 4.0
        assert payload["tie_mean"] == 2.0


class TestScoping:
    def test_disabled_by_default(self):
        assert active_router_profiler() is None

    def test_activation_and_restore(self):
        with profiled_routing() as prof:
            assert active_router_profiler() is prof
            inner = RouterProfiler()
            with profiled_routing(inner):
                assert active_router_profiler() is inner
            assert active_router_profiler() is prof
        assert active_router_profiler() is None

    def test_activation_is_thread_local(self):
        seen = {}

        def other_thread():
            seen["profiler"] = active_router_profiler()

        with profiled_routing():
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["profiler"] is None
