"""Metrics registry: instruments, exposition rendering, and the
bucket-quantile math shared with the benchmark reports."""

import pytest

from repro.telemetry.metrics import (
    LATENCY_BUCKETS_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    escape_label_value,
    histogram_payload,
    stats_series,
)


class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("jobs_total", "help text")
        counter.inc()
        counter.inc(4)
        name, kind, help_text, samples = counter.collect()
        assert (name, kind, help_text) == ("jobs_total", "counter", "help text")
        assert samples == [("", 5)]

    def test_counter_rejects_negative_increment(self):
        counter = Counter("jobs_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_callback(self):
        gauge = Gauge("depth")
        gauge.set(7)
        assert gauge.collect()[3] == [("", 7)]
        live = Gauge("live", fn=lambda: 41 + 1)
        assert live.collect()[3] == [("", 42)]

    def test_histogram_buckets_cumulative_with_inf(self):
        hist = Histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        _, kind, _, samples = hist.collect()
        assert kind == "histogram"
        rendered = dict(samples)
        assert rendered['_bucket{le="0.1"}'] == 1
        assert rendered['_bucket{le="1"}'] == 3
        assert rendered['_bucket{le="10"}'] == 4
        assert rendered['_bucket{le="+Inf"}'] == 5
        assert rendered["_count"] == 5
        assert rendered["_sum"] == pytest.approx(56.05)

    def test_histogram_snapshot_is_noncumulative(self):
        hist = Histogram("lat", buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 3.0):
            hist.observe(value)
        counts, total, count = hist.snapshot()
        assert counts == [1, 1]  # 3.0 overflows past the last bound
        assert count == 3
        assert total == pytest.approx(5.0)


class TestQuantiles:
    def test_bucket_quantile_interpolates(self):
        bounds = (1.0, 2.0, 4.0)
        counts = [10, 10, 0]
        assert bucket_quantile(bounds, counts, 20, 0.5) == pytest.approx(1.0)
        assert bucket_quantile(bounds, counts, 20, 0.75) == pytest.approx(1.5)

    def test_bucket_quantile_empty_and_bounds(self):
        assert bucket_quantile((1.0,), [0], 0, 0.5) == 0.0
        with pytest.raises(ValueError):
            bucket_quantile((1.0,), [1], 1, 1.5)

    def test_histogram_payload_shape(self):
        payload = histogram_payload([0.002, 0.004, 0.2], (0.001, 0.005, 1.0))
        assert payload["count"] == 3
        assert payload["sum"] == pytest.approx(0.206)
        assert payload["buckets_le"]["+Inf"] == 3
        assert payload["buckets_le"]["0.005"] == 2
        assert 0.0 < payload["p50_ms"] <= 5.0
        assert payload["p99_ms"] >= payload["p50_ms"]

    def test_payload_default_buckets_match_live_definition(self):
        payload = histogram_payload([0.01])
        assert len(payload["buckets_le"]) == len(LATENCY_BUCKETS_SECONDS) + 1


class TestRegistry:
    def test_render_exposition(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_jobs_total", "jobs")
        counter.inc(3)
        registry.gauge("repro_depth", "queue depth", fn=lambda: 2)
        text = registry.render()
        assert "# TYPE repro_jobs_total counter" in text
        assert "repro_jobs_total 3" in text
        assert "# HELP repro_depth queue depth" in text
        assert "repro_depth 2" in text

    def test_collectors_run_at_scrape_time(self):
        registry = MetricsRegistry()
        state = {"value": 1}
        registry.add_collector(
            lambda: [("live_value", "gauge", "", [("", state["value"])])]
        )
        assert "live_value 1" in registry.render()
        state["value"] = 9
        assert "live_value 9" in registry.render()

    def test_registries_are_independent(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.counter("only_in_a").inc()
        assert "only_in_a" in a.render()
        assert "only_in_a" not in b.render()


class TestStatsSeries:
    def test_counters_and_gauges_split(self):
        series = stats_series(
            "repro_store",
            {"hits": 3, "entries": 7, "missing": None},
            counters=("hits", "absent"),
            gauges=("entries",),
        )
        names = {name: samples for name, _, _, samples in series}
        assert names["repro_store_hits_total"] == [("", 3)]
        assert names["repro_store_entries"] == [("", 7)]
        assert "repro_store_absent_total" not in names

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'
