"""Service telemetry end-to-end: traced compiles over both execution
tiers, the /metrics exposition, and /trace retrieval."""

import os
import re
import urllib.request

import pytest

from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceClientError,
    build_server,
    serve_url,
    shutdown_service,
    start_in_thread,
)

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0], q[4];
cx q[1], q[3];
ccx q[0], q[2], q[4];
measure q -> c;
"""

#: Exposition sample line: metric name, optional label set, value.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$"
)


@pytest.fixture(params=["thread", "process"])
def service(request, tmp_path):
    """A running server + client, parametrized over execution tiers."""
    store = ResultStore(root=str(tmp_path / "store"))
    server = build_server(
        port=0, store=store, workers=2, execution=request.param
    )
    start_in_thread(server)
    client = ServiceClient(serve_url(server), timeout=60)
    client.wait_until_healthy()
    try:
        yield client, request.param
    finally:
        shutdown_service(server)


def traced_compile(client, profile=False, trials=2):
    payload = {
        "qasm": QASM,
        "trials": trials,
        "wait": True,
        "trace": True,
    }
    if profile:
        payload["profile"] = True
    return client._request("POST", "/compile", payload)


def fetch_metrics(client):
    with urllib.request.urlopen(
        client.base_url + "/metrics", timeout=30
    ) as resp:
        return resp.headers.get("Content-Type"), resp.read().decode("utf-8")


class TestTraceEndpoint:
    def test_traced_compile_yields_full_timeline(self, service):
        client, tier = service
        reply = traced_compile(client)
        assert reply["state"] == "done"
        assert reply["trace_id"]
        trace = client._request("GET", f"/trace/{reply['id']}")
        assert trace["trace_id"] == reply["trace_id"]
        spans = trace["spans"]
        names = {s["name"] for s in spans}
        required = {
            "http.request", "job.wait", "job.execute",
            "request.execute", "pipeline.run",
        }
        assert required <= names, f"missing {required - names}"
        assert any(name.startswith("pass.") for name in names)
        if tier == "process":
            assert "worker.compile" in names

    def test_parenting_is_correct_across_the_timeline(self, service):
        client, tier = service
        reply = traced_compile(client)
        spans = client._request("GET", f"/trace/{reply['id']}")["spans"]
        by_id = {s["span_id"]: s for s in spans}
        by_name = {s["name"]: s for s in spans}
        root = by_name["http.request"]
        assert root["parent_id"] is None
        assert by_name["job.wait"]["parent_id"] == root["span_id"]
        assert by_name["job.execute"]["parent_id"] == root["span_id"]
        if tier == "process":
            # The worker batch crossed a process boundary: its root
            # span must still resolve to the scheduler-side parent.
            worker = by_name["worker.compile"]
            assert by_id[worker["parent_id"]]["name"] == "job.execute"
            assert worker["attrs"]["pid"] != os.getpid()
        pipeline = by_name["pipeline.run"]
        assert by_id[pipeline["parent_id"]]["name"] == "request.execute"
        for s in spans:
            if s["name"].startswith("pass."):
                assert s["parent_id"] == pipeline["span_id"]

    def test_profile_adds_router_aggregates(self, service):
        client, _ = service
        reply = traced_compile(client, profile=True)
        spans = client._request("GET", f"/trace/{reply['id']}")["spans"]
        profiles = [s for s in spans if s["name"] == "router.profile"]
        assert profiles, "profile=true produced no router.profile span"
        attrs = profiles[0]["attrs"]
        assert attrs["steps"] > 0
        assert attrs["kernel_calls"] > 0
        assert attrs["kernel_seconds"] >= 0.0

    def test_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/trace/no-such-job")
        assert excinfo.value.status == 404

    def test_untraced_compile_stores_no_trace(self, service):
        client, _ = service
        reply = client.compile(QASM, trials=2)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", f"/trace/{reply['id']}")
        assert excinfo.value.status == 404


class TestMetricsEndpoint:
    def test_exposition_parses_and_has_core_series(self, service):
        client, tier = service
        client.compile(QASM, trials=2)
        content_type, text = fetch_metrics(client)
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert SAMPLE_LINE.match(line), f"unparseable line: {line!r}"
        for series in (
            "repro_http_requests_total",
            "repro_uptime_seconds",
            "repro_store_hits_total",
            "repro_scheduler_executions_total",
            "repro_scheduler_queue_depth",
            'repro_scheduler_health{state="ok"} 1',
            "repro_engine_cache_hits_total",
            'repro_queue_wait_seconds_bucket{le="+Inf"}',
            "repro_execute_seconds_sum",
            "repro_pass_executions_total",
        ):
            assert series in text, f"missing series: {series}"

    def test_metrics_agree_with_stats(self, service):
        client, _ = service
        client.compile(QASM, trials=2)
        client.compile(QASM, trials=2)  # store hit
        stats = client.stats()
        _, text = fetch_metrics(client)
        executions = stats["scheduler"]["executions"]
        hits = stats["store"]["hits"]
        assert f"repro_scheduler_executions_total {executions}" in text
        assert f"repro_store_hits_total {hits}" in text
