"""Trace spans: nesting, activation scoping, cross-process batches,
retention, and tree rendering."""

import threading

import pytest

from repro.telemetry.trace import (
    MAX_SPANS_PER_TRACE,
    NOOP_SPAN,
    TraceStore,
    Tracer,
    current_span_id,
    current_tracer,
    render_span_tree,
    span,
    tracing,
)


class TestSpans:
    def test_nested_spans_parent_correctly(self):
        tracer = Tracer()
        with tracing(tracer):
            with tracer.start_span("outer") as outer:
                with tracer.start_span("inner") as inner:
                    assert current_span_id() == inner.span_id
                assert current_span_id() == outer.span_id
        spans = {s["name"]: s for s in tracer.export()}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        # Spans land in completion order: inner closes first.
        assert [s["name"] for s in tracer.export()] == ["inner", "outer"]

    def test_span_records_timings_and_attrs(self):
        tracer = Tracer()
        with tracing(tracer):
            with span("work") as handle:
                handle.set("preset", "fast")
        (exported,) = tracer.export()
        assert exported["wall_seconds"] >= 0.0
        assert exported["cpu_seconds"] >= 0.0
        assert exported["start"] > 0.0
        assert exported["attrs"] == {"preset": "fast"}

    def test_exception_is_annotated_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracing(tracer):
                with span("boom"):
                    raise RuntimeError("bad")
        (exported,) = tracer.export()
        assert exported["attrs"]["error"] == "RuntimeError: bad"

    def test_explicit_parent_overrides_stack(self):
        tracer = Tracer()
        with tracing(tracer):
            with tracer.start_span("root"):
                with tracer.start_span("child", parent_id="elsewhere"):
                    pass
        spans = {s["name"]: s for s in tracer.export()}
        assert spans["child"]["parent_id"] == "elsewhere"

    def test_span_ids_unique_across_tracers(self):
        ids = set()
        for _ in range(3):
            tracer = Tracer()
            for _ in range(5):
                ids.add(tracer.new_span_id())
        assert len(ids) == 15


class TestActivation:
    def test_disabled_span_is_shared_noop(self):
        assert span("anything") is NOOP_SPAN
        with span("anything") as handle:
            assert handle.set("k", "v") is NOOP_SPAN
            assert handle.span_id is None

    def test_tracing_none_disables_nested_scope(self):
        tracer = Tracer()
        with tracing(tracer):
            assert current_tracer() is tracer
            with tracing(None):
                assert current_tracer() is None
                assert span("x") is NOOP_SPAN
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_parent_id_seeds_stack(self):
        tracer = Tracer()
        with tracing(tracer, parent_id="p0"):
            assert current_span_id() == "p0"
            with span("child"):
                pass
        (exported,) = tracer.export()
        assert exported["parent_id"] == "p0"

    def test_activation_is_thread_local(self):
        tracer = Tracer()
        seen = {}

        def other_thread():
            seen["tracer"] = current_tracer()
            seen["span"] = span("x")

        with tracing(tracer):
            worker = threading.Thread(target=other_thread)
            worker.start()
            worker.join()
        assert seen["tracer"] is None
        assert seen["span"] is NOOP_SPAN


class TestBatches:
    def test_add_raw_records_synthesized_span(self):
        tracer = Tracer()
        span_id = tracer.add_raw(
            "queue.wait", "parent", start=123.0, wall_seconds=0.5,
            attrs={"priority": 1},
        )
        (exported,) = tracer.export()
        assert exported["span_id"] == span_id
        assert exported["wall_seconds"] == 0.5
        assert exported["attrs"] == {"priority": 1}

    def test_add_spans_adopts_worker_batch(self):
        parent = Tracer()
        with tracing(parent):
            with parent.start_span("job.execute") as job:
                parent_id = job.span_id
        worker = Tracer(trace_id=parent.trace_id)
        with tracing(worker, parent_id=parent_id):
            with span("worker.compile"):
                pass
        parent.add_spans(worker.export())
        spans = {s["name"]: s for s in parent.export()}
        assert spans["worker.compile"]["parent_id"] == parent_id

    def test_truncation_caps_span_count(self):
        tracer = Tracer()
        for index in range(MAX_SPANS_PER_TRACE + 10):
            tracer.add_raw(f"s{index}", None, start=0.0, wall_seconds=0.0)
        assert len(tracer.export()) == MAX_SPANS_PER_TRACE
        assert tracer.truncated == 10
        tracer.add_spans([{"span_id": "x", "name": "late"}] * 3)
        assert len(tracer.export()) == MAX_SPANS_PER_TRACE
        assert tracer.truncated == 13


class TestTraceStore:
    def test_get_exports_lazily(self):
        store = TraceStore(max_traces=4)
        tracer = Tracer()
        store.put("job-1", tracer)
        assert store.get("job-1")["spans"] == []
        # Spans recorded after put() still appear: async jobs fill in.
        tracer.add_raw("late", None, start=0.0, wall_seconds=0.1)
        payload = store.get("job-1")
        assert [s["name"] for s in payload["spans"]] == ["late"]
        assert payload["trace_id"] == tracer.trace_id
        assert payload["truncated_spans"] == 0
        assert payload["stored_at"] > 0.0

    def test_fifo_eviction(self):
        store = TraceStore(max_traces=2)
        for index in range(3):
            store.put(f"job-{index}", Tracer())
        assert store.get("job-0") is None
        assert store.get("job-1") is not None
        assert store.get("job-2") is not None
        assert len(store) == 2

    def test_reput_same_job_id_does_not_duplicate(self):
        store = TraceStore(max_traces=2)
        store.put("job-a", Tracer())
        store.put("job-a", Tracer())
        store.put("job-b", Tracer())
        assert len(store) == 2
        assert store.get("job-a") is not None

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TraceStore(max_traces=0)


class TestRenderTree:
    def test_orphans_root_at_top(self):
        spans = [
            {"span_id": "a", "parent_id": None, "name": "root",
             "start": 1.0, "wall_seconds": 0.01, "cpu_seconds": 0.0},
            {"span_id": "b", "parent_id": "a", "name": "child",
             "start": 2.0, "wall_seconds": 0.005, "cpu_seconds": 0.0},
            {"span_id": "c", "parent_id": "missing", "name": "orphan",
             "start": 3.0, "wall_seconds": 0.001, "cpu_seconds": 0.0},
        ]
        tree = render_span_tree(spans)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")
        assert lines[2].startswith("orphan")

    def test_attrs_rendered_inline(self):
        spans = [
            {"span_id": "a", "parent_id": None, "name": "pass.routing",
             "start": 1.0, "wall_seconds": 0.01, "cpu_seconds": 0.0,
             "attrs": {"preset": "fast", "swaps": 12}},
        ]
        tree = render_span_tree(spans)
        assert "preset=fast" in tree
        assert "swaps=12" in tree
