"""Unit tests for the trivial shortest-path router."""

from repro.baselines import TrivialRouter
from repro.circuits import QuantumCircuit, random_circuit
from repro.core import Layout
from repro.verify import assert_compliant, assert_equivalent


class TestTrivialRouter:
    def test_compliant_circuit_untouched(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 1)
        circ.cx(1, 2)
        result = TrivialRouter(line5).run(circ)
        assert result.num_swaps == 0

    def test_distance_d_needs_d_minus_1_swaps(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        result = TrivialRouter(line5).run(circ)
        assert result.num_swaps == 3

    def test_output_verified(self, line5):
        circ = random_circuit(5, 50, seed=2, two_qubit_fraction=0.8)
        result = TrivialRouter(line5).run(circ)
        assert_compliant(result.physical_circuit(), line5)
        assert_equivalent(
            circ,
            result.routing.circuit,
            result.initial_layout,
            result.routing.swap_positions,
        )

    def test_custom_initial_layout(self, line5):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        layout = Layout([0, 4, 1, 2, 3])
        result = TrivialRouter(line5, initial_layout=layout).run(circ)
        assert result.initial_layout == layout
        assert result.num_swaps == 3

    def test_one_qubit_gates_pass_through(self, line5):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.measure(2)
        result = TrivialRouter(line5).run(circ)
        assert result.routing.circuit.num_gates == 2

    def test_repeated_gate_swaps_once(self, line5):
        """After routing the first CNOT the pair stays adjacent."""
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        circ.cx(0, 4)
        result = TrivialRouter(line5).run(circ)
        assert result.num_swaps == 3

    def test_sabre_beats_trivial_on_average(self, tokyo):
        """Sanity: the heuristic mapper should beat the floor."""
        from repro.core import compile_circuit

        sabre_total = trivial_total = 0
        for seed in range(5):
            circ = random_circuit(10, 80, seed=seed, two_qubit_fraction=0.8)
            sabre_total += compile_circuit(
                circ, tokyo, seed=0, num_trials=3
            ).num_swaps
            trivial_total += TrivialRouter(tokyo).run(circ).num_swaps
        assert sabre_total < trivial_total
