"""Unit tests for the Zulehner-style A* baseline (BKA)."""

import pytest

from repro.baselines import AStarMapper
from repro.baselines.astar import first_layer_layout
from repro.bench_circuits import ising_model, qft
from repro.circuits import QuantumCircuit, random_circuit
from repro.exceptions import SearchExhausted
from repro.hardware import grid_device, line_device
from repro.verify import assert_compliant, assert_equivalent


class TestFirstLayerLayout:
    def test_first_layer_pairs_adjacent(self, tokyo):
        circ = QuantumCircuit(6)
        circ.cx(0, 1)
        circ.cx(2, 3)
        circ.cx(4, 5)
        layout = first_layer_layout(circ, tokyo)
        for a, b in [(0, 1), (2, 3), (4, 5)]:
            assert tokyo.are_coupled(layout.physical(a), layout.physical(b))

    def test_empty_circuit_gets_identity_fill(self, tokyo):
        layout = first_layer_layout(QuantumCircuit(4), tokyo)
        assert sorted(layout.l2p) == list(range(20))


class TestMatchings:
    def test_single_edge(self):
        sets = list(AStarMapper._matchings([(0, 1)]))
        assert sets == [((0, 1),)]

    def test_disjoint_edges_combinations(self):
        sets = {frozenset(m) for m in AStarMapper._matchings([(0, 1), (2, 3)])}
        assert sets == {
            frozenset({(0, 1)}),
            frozenset({(2, 3)}),
            frozenset({(0, 1), (2, 3)}),
        }

    def test_overlapping_edges_never_combined(self):
        sets = list(AStarMapper._matchings([(0, 1), (1, 2)]))
        assert all(len(m) == 1 for m in sets)
        assert len(sets) == 2

    def test_matching_count_grows_exponentially(self):
        """The §IV-C1 blowup: matchings of a path graph follow a
        Fibonacci-like recurrence."""
        path = [(i, i + 1) for i in range(10)]
        count = sum(1 for _ in AStarMapper._matchings(path))
        longer = [(i, i + 1) for i in range(14)]
        count_longer = sum(1 for _ in AStarMapper._matchings(longer))
        assert count_longer > 2 * count


class TestAStarRouting:
    def test_compliant_and_equivalent(self, grid3x3):
        circ = random_circuit(6, 30, seed=1, two_qubit_fraction=0.6)
        result = AStarMapper(grid3x3, max_nodes=200_000).run(circ)
        assert_compliant(result.physical_circuit(), grid3x3)
        assert_equivalent(
            circ,
            result.routing.circuit,
            result.initial_layout,
            result.routing.swap_positions,
        )

    def test_already_satisfied_layer_needs_no_swaps(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 1)
        circ.cx(2, 3)
        result = AStarMapper(line5).run(circ)
        assert result.num_swaps == 0

    def test_single_swap_layer(self, line5):
        from repro.core import Layout

        circ = QuantumCircuit(3)
        circ.cx(0, 2)
        result = AStarMapper(line5, lookahead=False).run(
            circ, initial_layout=Layout.trivial(5)
        )
        assert result.num_swaps == 1

    def test_first_layer_layout_presatisfies_first_gates(self, line5):
        circ = QuantumCircuit(3)
        circ.cx(0, 2)
        result = AStarMapper(line5, lookahead=False).run(circ)
        assert result.num_swaps == 0

    def test_admissible_no_worse_than_default(self, grid3x3):
        circ = random_circuit(6, 24, seed=5, two_qubit_fraction=0.7)
        default = AStarMapper(grid3x3, max_nodes=400_000).run(circ)
        optimal = AStarMapper(
            grid3x3, admissible=True, max_nodes=400_000
        ).run(circ)
        assert optimal.num_swaps <= default.num_swaps

    def test_single_swap_mode_works(self, grid3x3):
        circ = random_circuit(6, 30, seed=2, two_qubit_fraction=0.6)
        result = AStarMapper(grid3x3, concurrent=False).run(circ)
        assert_compliant(result.physical_circuit(), grid3x3)

    def test_deterministic(self, grid3x3):
        circ = random_circuit(6, 30, seed=3, two_qubit_fraction=0.6)
        a = AStarMapper(grid3x3).run(circ)
        b = AStarMapper(grid3x3).run(circ)
        assert a.routing.circuit == b.routing.circuit


class TestSearchExhaustion:
    def test_node_budget_raises(self, tokyo):
        """ising_model_16 must exhaust a laptop-scale budget — the
        paper's 'Out of Memory' row."""
        mapper = AStarMapper(tokyo, max_nodes=50_000)
        with pytest.raises(SearchExhausted) as excinfo:
            mapper.run(ising_model(16))
        assert excinfo.value.nodes_expanded >= 50_000

    def test_time_budget_raises(self, tokyo):
        mapper = AStarMapper(tokyo, max_nodes=10**9, max_seconds=0.2)
        with pytest.raises(SearchExhausted, match="time budget"):
            mapper.run(qft(16))

    def test_small_circuit_within_budget(self, tokyo):
        mapper = AStarMapper(tokyo, max_nodes=200_000)
        result = mapper.run(qft(6))
        assert result.num_swaps > 0

    def test_nodes_tracked(self, tokyo):
        mapper = AStarMapper(tokyo, max_nodes=200_000)
        mapper.run(qft(6))
        assert mapper.last_run_nodes > 0

    def test_exponential_node_growth(self, tokyo):
        """§V-B2: search effort grows explosively with circuit width."""
        nodes = []
        for n in (4, 6, 8):
            mapper = AStarMapper(tokyo, max_nodes=500_000)
            mapper.run(qft(n))
            nodes.append(mapper.last_run_nodes)
        assert nodes[1] > 2 * nodes[0]
        assert nodes[2] > 2 * nodes[1]
