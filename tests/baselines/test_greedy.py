"""Unit tests for the Siraichi-style greedy mapper."""

from repro.baselines import GreedyMapper, TrivialRouter, interaction_degree_layout
from repro.circuits import QuantumCircuit, random_circuit
from repro.verify import assert_compliant, assert_equivalent


class TestInteractionDegreeLayout:
    def test_layout_is_valid(self, tokyo):
        circ = random_circuit(8, 50, seed=1, two_qubit_fraction=0.7)
        layout = interaction_degree_layout(circ, tokyo)
        assert sorted(layout.l2p) == list(range(20))

    def test_busiest_qubit_on_high_degree_physical(self, tokyo):
        circ = QuantumCircuit(5)
        # qubit 0 interacts with everyone (star) - max interaction degree
        for q in range(1, 5):
            circ.cx(0, q)
        layout = interaction_degree_layout(circ, tokyo)
        home_degree = tokyo.degree(layout.physical(0))
        max_degree = max(tokyo.degree(p) for p in range(20))
        assert home_degree == max_degree

    def test_partners_placed_adjacent_when_possible(self, tokyo):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        layout = interaction_degree_layout(circ, tokyo)
        assert tokyo.are_coupled(layout.physical(0), layout.physical(1))

    def test_empty_circuit_layout(self, tokyo):
        layout = interaction_degree_layout(QuantumCircuit(3), tokyo)
        assert sorted(layout.l2p) == list(range(20))


class TestGreedyMapper:
    def test_output_verified(self, tokyo):
        circ = random_circuit(8, 60, seed=3, two_qubit_fraction=0.7)
        result = GreedyMapper(tokyo).run(circ)
        assert_compliant(result.physical_circuit(), tokyo)
        assert_equivalent(
            circ,
            result.routing.circuit,
            result.initial_layout,
            result.routing.swap_positions,
        )

    def test_greedy_layout_beats_identity_on_star_workload(self, tokyo):
        """The interaction-degree layout should help a hub-heavy
        workload versus a random/trivial placement."""
        circ = QuantumCircuit(6)
        for _ in range(10):
            for q in range(1, 6):
                circ.cx(0, q)
        greedy = GreedyMapper(tokyo).run(circ)
        trivial = TrivialRouter(tokyo).run(circ)
        assert greedy.num_swaps <= trivial.num_swaps

    def test_runtime_recorded(self, tokyo):
        circ = random_circuit(6, 30, seed=4, two_qubit_fraction=0.5)
        result = GreedyMapper(tokyo).run(circ)
        assert result.runtime_seconds > 0
