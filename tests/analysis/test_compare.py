"""Unit tests for the mapper comparison harness."""

import pytest

from repro.analysis.compare import (
    ComparisonRow,
    best_mapper_per_workload,
    compare_mappers,
    comparison_to_text,
    main,
)
from repro.bench_circuits import qft
from repro.circuits import random_circuit
from repro.hardware import ibm_q20_tokyo


@pytest.fixture(scope="module")
def tokyo():
    return ibm_q20_tokyo()


class TestCompareMappers:
    def test_all_four_mappers_run(self, tokyo):
        circ = random_circuit(6, 30, seed=0, two_qubit_fraction=0.6)
        rows = compare_mappers([circ], coupling=tokyo, sabre_trials=2)
        assert {r.mapper for r in rows} == {
            "sabre",
            "bka-astar",
            "greedy",
            "trivial",
        }

    def test_quality_ordering(self, tokyo):
        """SABRE must beat the trivial floor on a dense workload."""
        rows = compare_mappers([qft(10)], coupling=tokyo, sabre_trials=3)
        by_mapper = {r.mapper: r for r in rows}
        assert by_mapper["sabre"].added_gates <= by_mapper["trivial"].added_gates
        assert by_mapper["sabre"].added_gates <= by_mapper["greedy"].added_gates

    def test_bka_exhaustion_tolerated(self, tokyo):
        from repro.bench_circuits import ising_model

        rows = compare_mappers(
            [ising_model(16)],
            coupling=tokyo,
            sabre_trials=1,
            bka_max_nodes=5_000,
            bka_max_seconds=5.0,
        )
        bka = [r for r in rows if r.mapper == "bka-astar"][0]
        assert bka.failed
        sabre = [r for r in rows if r.mapper == "sabre"][0]
        assert not sabre.failed

    def test_fidelity_reported(self, tokyo):
        rows = compare_mappers(
            [random_circuit(5, 20, seed=1, two_qubit_fraction=0.5)],
            coupling=tokyo,
            sabre_trials=1,
        )
        for row in rows:
            if not row.failed:
                assert 0 < row.success_probability <= 1


class TestReporting:
    def test_text_table(self):
        rows = [
            ComparisonRow("w", "sabre", 9, 20, 0.5, 0.1),
            ComparisonRow("w", "bka-astar", None, None, None, None, failed=True),
        ]
        text = comparison_to_text(rows)
        assert "sabre" in text
        assert "OOM" in text

    def test_best_mapper_selection(self):
        rows = [
            ComparisonRow("w", "sabre", 9, 20, 0.5, 0.1),
            ComparisonRow("w", "trivial", 30, 40, 0.2, 0.01),
            ComparisonRow("w", "bka-astar", None, None, None, None, failed=True),
        ]
        assert best_mapper_per_workload(rows) == {"w": "sabre"}

    def test_main_entry(self, capsys):
        code = main(
            [
                "--benchmarks",
                "4mod5-v1_22",
                "--trials",
                "1",
                "--bka-max-nodes",
                "50000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Mapper comparison" in out
        assert "best on 4mod5-v1_22" in out
