"""Unit tests for ASCII table/series rendering."""

from repro.analysis import format_series, format_table


class TestFormatTable:
    def test_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, "x"], [22, "yy"]])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_title_underlined(self):
        text = format_table(["a"], [[1]], title="My Table")
        lines = text.splitlines()
        assert lines[0] == "My Table"
        assert lines[1] == "=" * len("My Table")

    def test_none_renders_dash(self):
        text = format_table(["a"], [[None]])
        assert "-" in text.splitlines()[-1]

    def test_floats_rounded(self):
        text = format_table(["a"], [[1.23456]])
        assert "1.235" in text

    def test_numeric_right_aligned(self):
        text = format_table(["val"], [[1], [100]])
        rows = text.splitlines()[2:]
        assert rows[0].endswith("1")
        assert rows[1].endswith("100")

    def test_text_left_aligned(self):
        text = format_table(["name", "v"], [["ab", 1], ["abcdef", 2]])
        rows = text.splitlines()[2:]
        assert rows[0].startswith("ab ")

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2


class TestFormatSeries:
    def test_points_listed(self):
        text = format_series("s1", [(0.1, 1.0), (0.2, 2.0)])
        assert "s1" in text
        assert "(0.1000, 1.0000)" in text

    def test_labels_included(self):
        text = format_series("s", [(1.0, 2.0)], x_label="delta", y_label="d")
        assert "delta -> d" in text
