"""Unit tests for the markdown report generator."""

from repro.analysis.report import (
    figure8_markdown,
    scaling_markdown,
    table2_markdown,
)
from repro.analysis.scaling import ScalingRow
from repro.analysis.table2 import Table2Row
from repro.analysis.tradeoff import TradeoffPoint
from repro.bench_circuits import get_benchmark


def _sample_row(name="4mod5-v1_22", bka=30):
    return Table2Row(
        spec=get_benchmark(name),
        gates_ours=21,
        bka_added=bka,
        bka_time=0.1,
        sabre_lookahead_added=9,
        sabre_added=0,
        sabre_time=0.01,
    )


class TestTable2Markdown:
    def test_header_and_row(self):
        text = table2_markdown([_sample_row()])
        assert text.startswith("| benchmark |")
        assert "| 4mod5-v1_22 |" in text

    def test_oom_rendered(self):
        row = Table2Row(
            spec=get_benchmark("ising_model_16"),
            gates_ours=786,
            bka_added=None,
            bka_time=None,
            sabre_lookahead_added=78,
            sabre_added=6,
            sabre_time=0.1,
        )
        text = table2_markdown([row])
        assert "OOM" in text

    def test_summary_line(self):
        text = table2_markdown([_sample_row()])
        assert "1/1" in text


class TestFigure8Markdown:
    def test_series_rendered(self):
        points = [
            TradeoffPoint(0.0, 280, 140, 1.19, 2.05),
            TradeoffPoint(0.01, 268, 145, 1.14, 2.10),
        ]
        text = figure8_markdown({"qft_10": points})
        assert "qft_10" in text
        assert "δ=0:" in text
        assert "%" in text


class TestScalingMarkdown:
    def test_rows_rendered(self):
        rows = [
            ScalingRow("qft", 4, 34, 0.01, 3, 0.002, 9, 155, False),
            ScalingRow("qft", 16, 616, 0.2, 150, None, None, 600_000, True),
        ]
        text = scaling_markdown(rows)
        assert "qft_4" in text
        assert "OOM" in text
        assert "600000" in text
