"""Unit tests for the Figure 8 trade-off harness."""

import pytest

from repro.analysis.tradeoff import (
    TradeoffPoint,
    decay_sweep,
    depth_variation,
    figure8_to_text,
    run_figure8,
)
from repro.bench_circuits import qft
from repro.hardware import ibm_q20_tokyo


@pytest.fixture(scope="module")
def tokyo():
    return ibm_q20_tokyo()


class TestDecaySweep:
    def test_point_per_delta(self, tokyo):
        points = decay_sweep(
            qft(6), tokyo, deltas=(0.0, 0.01), seed=0, num_trials=2
        )
        assert [p.delta for p in points] == [0.0, 0.01]

    def test_normalisation(self, tokyo):
        circ = qft(6)
        points = decay_sweep(circ, tokyo, deltas=(0.001,), seed=0, num_trials=2)
        p = points[0]
        assert p.gates_norm == pytest.approx(
            p.total_gates / circ.count_gates()
        )
        assert p.gates_norm >= 1.0  # routing never removes gates

    def test_depth_recorded(self, tokyo):
        points = decay_sweep(qft(6), tokyo, deltas=(0.01,), seed=0, num_trials=2)
        assert points[0].depth > 0


class TestDepthVariation:
    def test_zero_for_constant_series(self):
        points = [
            TradeoffPoint(0.0, 10, 5, 1.0, 2.0),
            TradeoffPoint(0.1, 12, 5, 1.2, 2.0),
        ]
        assert depth_variation(points) == 0.0

    def test_spread_computed(self):
        points = [
            TradeoffPoint(0.0, 10, 8, 1.0, 2.0),
            TradeoffPoint(0.1, 12, 10, 1.2, 2.5),
        ]
        assert depth_variation(points) == pytest.approx(0.2)


class TestRunFigure8:
    def test_subset_run(self, tokyo):
        series = run_figure8(
            names=["qft_10"],
            deltas=(0.0, 0.01),
            coupling=tokyo,
            num_trials=1,
        )
        assert set(series) == {"qft_10"}
        assert len(series["qft_10"]) == 2

    def test_text_output(self, tokyo):
        series = run_figure8(
            names=["qft_10"],
            deltas=(0.0, 0.01),
            coupling=tokyo,
            num_trials=1,
        )
        text = figure8_to_text(series)
        assert "Figure 8" in text
        assert "qft_10" in text
        assert "depth variation" in text
