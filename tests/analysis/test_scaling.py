"""Unit tests for the scalability harness (§V-B2)."""

import pytest

from repro.analysis.scaling import run_scaling, scaling_to_text
from repro.exceptions import ReproError
from repro.hardware import ibm_q20_tokyo


@pytest.fixture(scope="module")
def tokyo():
    return ibm_q20_tokyo()


class TestRunScaling:
    def test_rows_per_size(self, tokyo):
        rows = run_scaling(
            family="qft",
            sizes=(4, 6),
            coupling=tokyo,
            sabre_trials=1,
            bka_max_nodes=100_000,
            bka_max_seconds=20.0,
        )
        assert [r.num_qubits for r in rows] == [4, 6]
        assert all(r.sabre_seconds > 0 for r in rows)

    def test_bka_exhaustion_reported(self, tokyo):
        rows = run_scaling(
            family="ising",
            sizes=(16,),
            coupling=tokyo,
            sabre_trials=1,
            bka_max_nodes=5_000,
            bka_max_seconds=5.0,
        )
        assert rows[0].bka_exhausted
        assert rows[0].bka_nodes > 0

    def test_unknown_family_rejected(self, tokyo):
        with pytest.raises(ReproError, match="unknown scaling family"):
            run_scaling(family="shor", sizes=(4,), coupling=tokyo)

    def test_text_rendering(self, tokyo):
        rows = run_scaling(
            family="qft",
            sizes=(4,),
            coupling=tokyo,
            sabre_trials=1,
            bka_max_nodes=50_000,
        )
        text = scaling_to_text(rows)
        assert "Scalability" in text
        assert "qft_4" in text

    def test_sabre_stays_fast_while_bka_grows(self, tokyo):
        """The §V-B2 shape: BKA effort grows much faster than SABRE's."""
        rows = run_scaling(
            family="qft",
            sizes=(4, 8),
            coupling=tokyo,
            sabre_trials=1,
            bka_max_nodes=500_000,
            bka_max_seconds=30.0,
        )
        assert rows[1].bka_nodes > 5 * max(rows[0].bka_nodes, 1)
