"""Unit tests for the Table II harness."""

import pytest

from repro.analysis.table2 import (
    HEADERS,
    Table2Row,
    run_benchmark_row,
    run_table2,
    table2_rows_to_text,
)
from repro.bench_circuits import get_benchmark
from repro.hardware import distance_matrix, ibm_q20_tokyo


@pytest.fixture(scope="module")
def tokyo():
    return ibm_q20_tokyo()


@pytest.fixture(scope="module")
def dist(tokyo):
    return distance_matrix(tokyo)


class TestRunBenchmarkRow:
    def test_small_row(self, tokyo, dist):
        row = run_benchmark_row(
            get_benchmark("4mod5-v1_22"),
            tokyo,
            dist,
            num_trials=3,
            bka_max_nodes=100_000,
        )
        assert row.gates_ours == 21
        assert row.sabre_added % 3 == 0
        assert row.bka_added is not None

    def test_row_without_bka(self, tokyo, dist):
        row = run_benchmark_row(
            get_benchmark("mod5mils_65"),
            tokyo,
            dist,
            num_trials=2,
            include_bka=False,
        )
        assert row.bka_added is None
        assert row.bka_time is None

    def test_oom_row_reported_not_raised(self, tokyo, dist):
        """Budget exhaustion must become an 'OOM' cell, not a crash."""
        row = run_benchmark_row(
            get_benchmark("ising_model_16"),
            tokyo,
            dist,
            num_trials=1,
            bka_max_nodes=5_000,
            bka_max_seconds=5.0,
        )
        assert row.bka_added is None
        assert row.delta_vs_bka() is None

    def test_delta_vs_bka(self, tokyo, dist):
        spec = get_benchmark("4mod5-v1_22")
        row = Table2Row(
            spec=spec,
            gates_ours=21,
            bka_added=30,
            bka_time=0.1,
            sabre_lookahead_added=9,
            sabre_added=0,
            sabre_time=0.01,
        )
        assert row.delta_vs_bka() == 30
        assert len(row.as_cells()) == len(HEADERS)


class TestRunTable2:
    def test_category_filter(self, tokyo):
        rows = run_table2(
            categories=["small"],
            coupling=tokyo,
            num_trials=2,
            bka_max_nodes=100_000,
        )
        assert len(rows) == 5
        assert all(r.spec.category == "small" for r in rows)

    def test_name_filter(self, tokyo):
        rows = run_table2(
            names=["qft_10"],
            coupling=tokyo,
            num_trials=1,
            include_bka=False,
        )
        assert len(rows) == 1
        assert rows[0].spec.name == "qft_10"

    def test_text_rendering(self, tokyo):
        rows = run_table2(
            names=["4mod5-v1_22", "decod24-v2_43"],
            coupling=tokyo,
            num_trials=2,
            bka_max_nodes=100_000,
        )
        text = table2_rows_to_text(rows)
        assert "Table II" in text
        assert "4mod5-v1_22" in text
        assert "SABRE <= BKA" in text

    def test_oom_summary_line(self, tokyo):
        rows = run_table2(
            names=["ising_model_16"],
            coupling=tokyo,
            num_trials=1,
            bka_max_nodes=5_000,
            bka_max_seconds=5.0,
        )
        text = table2_rows_to_text(rows)
        assert "OOM" in text
