"""Unit tests for metric extraction and fidelity reporting."""

import pytest

from repro.analysis import fidelity_report, result_metrics
from repro.circuits import random_circuit
from repro.core import compile_circuit
from repro.hardware import NoiseModel


@pytest.fixture(scope="module")
def sample_result(tokyo):
    circ = random_circuit(8, 60, seed=0, two_qubit_fraction=0.7)
    return compile_circuit(circ, tokyo, seed=0, num_trials=2)


# tokyo fixture is function-scope free (session), but module fixture needs it;
# redefine locally to avoid scope mismatch.
@pytest.fixture(scope="module")
def tokyo():
    from repro.hardware import ibm_q20_tokyo

    return ibm_q20_tokyo()


class TestResultMetrics:
    def test_table2_keys_present(self, sample_result):
        metrics = result_metrics(sample_result)
        for key in ("name", "n", "g_ori", "g_add", "g_tot", "d_ori", "d_out"):
            assert key in metrics

    def test_gate_arithmetic(self, sample_result):
        metrics = result_metrics(sample_result)
        assert metrics["g_tot"] == metrics["g_ori"] + metrics["g_add"]
        assert metrics["g_add"] == 3 * metrics["swaps"]

    def test_overheads_consistent(self, sample_result):
        metrics = result_metrics(sample_result)
        assert metrics["gate_overhead"] == pytest.approx(
            metrics["g_add"] / metrics["g_ori"], abs=1e-3
        )
        assert metrics["depth_overhead"] >= 1.0 or metrics["g_add"] == 0


class TestFidelityReport:
    def test_routing_costs_fidelity(self, sample_result):
        report = fidelity_report(sample_result)
        assert 0 < report["success_after_routing"]
        assert (
            report["success_after_routing"] <= report["success_before_routing"]
        )
        assert 0 <= report["relative_fidelity_cost"] < 1

    def test_custom_noise_model(self, sample_result):
        pessimistic = NoiseModel(two_qubit_error=0.2)
        default = fidelity_report(sample_result)
        worse = fidelity_report(sample_result, pessimistic)
        assert (
            worse["success_after_routing"] < default["success_after_routing"]
        )


class TestJsonSafeProperties:
    def test_keeps_scalars_drops_objects(self):
        from repro.analysis.metrics import json_safe_properties

        properties = {
            "pipeline.name": "paper_default",
            "compliance.checked_direction": False,
            "bridge.swaps_removed": 2,
            "objective.g_add": 12.0,
            "layout_object": object(),  # must be dropped, not stringified
            "maybe": None,
        }
        safe = json_safe_properties(properties)
        assert safe == {
            "pipeline.name": "paper_default",
            "compliance.checked_direction": False,
            "bridge.swaps_removed": 2,
            "objective.g_add": 12.0,
            "maybe": None,
        }

    def test_normalises_pass_timings(self):
        import json

        from repro.analysis.metrics import json_safe_properties

        safe = json_safe_properties(
            {"pass_timings": [("SabreRoutePass", 0.25), ("CollectMetrics", 0.01)]}
        )
        assert safe["pass_timings"] == [
            ["SabreRoutePass", 0.25],
            ["CollectMetrics", 0.01],
        ]
        json.dumps(safe)  # round-trippable by construction

    def test_empty_and_none(self):
        from repro.analysis.metrics import json_safe_properties

        assert json_safe_properties(None) == {}
        assert json_safe_properties({}) == {}

    def test_real_pipeline_properties_serialise(self, sample_result):
        import json

        from repro.analysis.metrics import json_safe_properties

        json.dumps(json_safe_properties(getattr(sample_result, "properties", {})))
