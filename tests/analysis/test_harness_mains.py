"""Contract tests for the experiment harness entry points.

Each ``python -m repro.analysis.*`` main must accept its documented
flags and print the expected artifact — these are the commands
EXPERIMENTS.md tells readers to run.
"""

import pytest

from repro.analysis import scaling, table2, tradeoff


class TestTable2Main:
    def test_names_subset_without_bka(self, capsys):
        code = table2.main(
            ["--names", "4mod5-v1_22", "--trials", "1", "--no-bka"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "4mod5-v1_22" in out

    def test_category_flag(self, capsys):
        code = table2.main(
            [
                "--category",
                "small",
                "--trials",
                "1",
                "--no-bka",
                "--no-verify",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("\n") >= 9  # 5 rows + header + summary

    def test_bka_budget_flags(self, capsys):
        code = table2.main(
            [
                "--names",
                "decod24-v2_43",
                "--trials",
                "1",
                "--bka-max-nodes",
                "50000",
                "--bka-max-seconds",
                "10",
            ]
        )
        assert code == 0


class TestTradeoffMain:
    def test_subset_run(self, capsys):
        code = tradeoff.main(
            ["--names", "qft_10", "--deltas", "0.0", "0.01", "--trials", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "qft_10" in out
        assert "depth variation" in out


class TestScalingMain:
    def test_qft_sweep(self, capsys):
        code = scaling.main(
            ["--family", "qft", "--sizes", "4", "6", "--bka-max-nodes", "50000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Scalability" in out
        assert "qft_4" in out and "qft_6" in out

    def test_bad_family_rejected(self):
        with pytest.raises(SystemExit):
            scaling.main(["--family", "grover"])
