"""Property tests: vector / fast scorers == reference scorer, step by
step — plus the lockstep ensemble executor == the serial executor,
seed by seed."""

from hypothesis import given, settings, strategies as st

from repro.circuits import random_circuit
from repro.core import HeuristicConfig, Layout, SabreRouter
from repro.engine import run_trials
from repro.extensions.noise_aware import noise_weighted_distance
from repro.hardware import NoiseModel, grid_device, ring_device

SCORERS = ("vector", "fast", "reference")


def _winner_trace(device, circuit, layout, mode, scorer, seed, distance=None):
    router = SabreRouter(
        device,
        config=HeuristicConfig(mode=mode, scorer=scorer),
        seed=seed,
        distance=distance,
    )
    steps = []
    router.on_winner_set = lambda best: steps.append(list(best))
    result = router.run(circuit, initial_layout=layout)
    return steps, result


@settings(max_examples=25, deadline=None)
@given(
    circuit_seed=st.integers(min_value=0, max_value=10_000),
    layout_seed=st.integers(min_value=0, max_value=10_000),
    tie_seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(["basic", "lookahead", "decay"]),
)
def test_winner_sets_and_circuits_identical(
    circuit_seed, layout_seed, tie_seed, mode
):
    """For any circuit/layout/tie-break seed and any heuristic mode,
    the vector and fast scorers' per-step winner sets — the complete
    set of best-scoring SWAPs *before* the random tie-break — equal the
    reference scorer's, and the routed circuits are bit-for-bit
    identical."""
    device = grid_device(3, 3)
    circuit = random_circuit(9, 40, seed=circuit_seed, two_qubit_fraction=0.8)
    layout = Layout.random(9, seed=layout_seed)
    traces = {
        scorer: _winner_trace(device, circuit, layout, mode, scorer, tie_seed)
        for scorer in SCORERS
    }
    ref_steps, ref = traces["reference"]
    for scorer in ("vector", "fast"):
        steps, result = traces[scorer]
        assert steps == ref_steps
        assert result.circuit == ref.circuit
        assert result.final_layout == ref.final_layout


@settings(max_examples=15, deadline=None)
@given(
    circuit_seed=st.integers(min_value=0, max_value=10_000),
    layout_seed=st.integers(min_value=0, max_value=10_000),
    asymmetric=st.booleans(),
    weighted=st.booleans(),
)
def test_winner_sets_identical_under_distance_matrices(
    circuit_seed, layout_seed, asymmetric, weighted
):
    """Scorer equivalence holds under noise-weighted (non-integer)
    symmetric matrices; asymmetric matrices make both optimized
    scorers fall back to the reference scorer (the escape hatch), so
    equality is preserved trivially — either way the routed circuits
    match."""
    device = grid_device(3, 3)
    distance = None
    if weighted:
        noise = NoiseModel(edge_errors={(0, 1): 0.2, (4, 5): 0.1})
        distance = [
            list(row) for row in noise_weighted_distance(device, noise)
        ]
    if asymmetric:
        if distance is None:
            distance = [
                list(row)
                for row in noise_weighted_distance(device, NoiseModel())
            ]
        distance[0][3] += 0.25  # break symmetry => reference fallback
    circuit = random_circuit(9, 30, seed=circuit_seed, two_qubit_fraction=0.8)
    layout = Layout.random(9, seed=layout_seed)
    traces = {
        scorer: _winner_trace(
            device, circuit, layout, "decay", scorer, 0, distance=distance
        )
        for scorer in SCORERS
    }
    ref_steps, ref = traces["reference"]
    for scorer in ("vector", "fast"):
        steps, result = traces[scorer]
        assert steps == ref_steps
        assert result.circuit == ref.circuit


@settings(max_examples=10, deadline=None)
@given(
    circuit_seed=st.integers(min_value=0, max_value=10_000),
    stall_limit=st.integers(min_value=1, max_value=4),
)
def test_escape_hatch_identical(circuit_seed, stall_limit):
    """The forced-escape path must also be scorer-independent."""
    device = ring_device(6)
    circuit = random_circuit(6, 30, seed=circuit_seed, two_qubit_fraction=1.0)
    layout = Layout.trivial(6)
    results = {}
    for scorer in SCORERS:
        router = SabreRouter(
            device,
            config=HeuristicConfig(mode="basic", scorer=scorer),
            seed=0,
            stall_limit=stall_limit,
        )
        results[scorer] = router.run(circuit, initial_layout=layout)
    for scorer in ("vector", "fast"):
        assert results[scorer].circuit == results["reference"].circuit
        assert (
            results[scorer].num_forced_escapes
            == results["reference"].num_forced_escapes
        )


@settings(max_examples=10, deadline=None)
@given(
    circuit_seed=st.integers(min_value=0, max_value=10_000),
    seed_base=st.integers(min_value=0, max_value=1_000),
    num_traversals=st.sampled_from([1, 3]),
    mode=st.sampled_from(["basic", "lookahead", "decay"]),
)
def test_ensemble_matches_serial_per_seed(
    circuit_seed, seed_base, num_traversals, mode
):
    """For any seed list, the trial-major lockstep ensemble produces
    byte-identical per-trial circuits to the serial executor — and
    hence the same best-of-K winner."""
    device = grid_device(3, 3)
    circuit = random_circuit(9, 40, seed=circuit_seed, two_qubit_fraction=0.8)
    seeds = [seed_base, seed_base + 1, seed_base + 2]
    ens = run_trials(
        circuit,
        device,
        seeds=seeds,
        config=HeuristicConfig(mode=mode, scorer="vector"),
        num_traversals=num_traversals,
        executor="ensemble",
    )
    ser = run_trials(
        circuit,
        device,
        seeds=seeds,
        config=HeuristicConfig(mode=mode, scorer="fast"),
        num_traversals=num_traversals,
        executor="serial",
    )
    assert ens.trial_swaps == ser.trial_swaps
    assert ens.winner_index == ser.winner_index
    for a, b in zip(ens.trials, ser.trials):
        assert a.result.routing.circuit == b.result.routing.circuit
