"""Property tests: delta scorer == reference scorer, step by step."""

from hypothesis import given, settings, strategies as st

from repro.circuits import random_circuit
from repro.core import HeuristicConfig, Layout, SabreRouter
from repro.hardware import grid_device, ring_device


def _winner_trace(device, circuit, layout, mode, scorer, seed):
    router = SabreRouter(
        device, config=HeuristicConfig(mode=mode, scorer=scorer), seed=seed
    )
    steps = []
    router.on_winner_set = lambda best: steps.append(list(best))
    result = router.run(circuit, initial_layout=layout)
    return steps, result


@settings(max_examples=25, deadline=None)
@given(
    circuit_seed=st.integers(min_value=0, max_value=10_000),
    layout_seed=st.integers(min_value=0, max_value=10_000),
    tie_seed=st.integers(min_value=0, max_value=10_000),
    mode=st.sampled_from(["basic", "lookahead", "decay"]),
)
def test_winner_sets_and_circuits_identical(
    circuit_seed, layout_seed, tie_seed, mode
):
    """For any circuit/layout/tie-break seed and any heuristic mode, the
    fast scorer's per-step winner sets — the complete set of best-scoring
    SWAPs *before* the random tie-break — equal the reference scorer's,
    and the routed circuits are bit-for-bit identical."""
    device = grid_device(3, 3)
    circuit = random_circuit(9, 40, seed=circuit_seed, two_qubit_fraction=0.8)
    layout = Layout.random(9, seed=layout_seed)
    fast_steps, fast = _winner_trace(
        device, circuit, layout, mode, "fast", tie_seed
    )
    ref_steps, ref = _winner_trace(
        device, circuit, layout, mode, "reference", tie_seed
    )
    assert fast_steps == ref_steps
    assert fast.circuit == ref.circuit
    assert fast.final_layout == ref.final_layout


@settings(max_examples=10, deadline=None)
@given(
    circuit_seed=st.integers(min_value=0, max_value=10_000),
    stall_limit=st.integers(min_value=1, max_value=4),
)
def test_escape_hatch_identical(circuit_seed, stall_limit):
    """The forced-escape path must also be scorer-independent."""
    device = ring_device(6)
    circuit = random_circuit(6, 30, seed=circuit_seed, two_qubit_fraction=1.0)
    layout = Layout.trivial(6)
    results = {}
    for scorer in ("fast", "reference"):
        router = SabreRouter(
            device,
            config=HeuristicConfig(mode="basic", scorer=scorer),
            seed=0,
            stall_limit=stall_limit,
        )
        results[scorer] = router.run(circuit, initial_layout=layout)
    assert results["fast"].circuit == results["reference"].circuit
    assert (
        results["fast"].num_forced_escapes
        == results["reference"].num_forced_escapes
    )
