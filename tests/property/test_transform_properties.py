"""Property-based tests: optimization passes preserve semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.circuits.transforms import (
    cancel_adjacent_inverses,
    merge_rotations,
    optimize_circuit,
)
from repro.verify import Statevector

_GATES_1Q = ("h", "x", "t", "tdg", "s", "sdg", "z")


@st.composite
def cancellable_circuits(draw):
    """Circuits biased toward adjacent inverse pairs and rotations."""
    n = draw(st.integers(min_value=2, max_value=5))
    circ = QuantumCircuit(n)
    for _ in range(draw(st.integers(0, 25))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            name = draw(st.sampled_from(_GATES_1Q))
            q = draw(st.integers(0, n - 1))
            circ.add_gate(name, q)
            if draw(st.booleans()):  # often append the inverse right away
                from repro.circuits.gates import Gate

                circ.append(Gate(name, (q,)).inverse())
        elif kind == 1:
            a, b = draw(
                st.lists(
                    st.integers(0, n - 1), min_size=2, max_size=2, unique=True
                )
            )
            circ.cx(a, b)
            if draw(st.booleans()):
                circ.cx(a, b)
        elif kind == 2:
            q = draw(st.integers(0, n - 1))
            angle = draw(
                st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False)
            )
            circ.rz(angle, q)
            if draw(st.booleans()):
                circ.rz(-angle, q)
        else:
            q = draw(st.integers(0, n - 1))
            circ.add_gate(draw(st.sampled_from(_GATES_1Q)), q)
    return circ


def _equivalent(a: QuantumCircuit, b: QuantumCircuit) -> bool:
    probe = Statevector.random(a.num_qubits, seed=99)
    out_a = probe.copy().apply_circuit(a)
    out_b = probe.copy().apply_circuit(b)
    return out_a.fidelity(out_b) > 1 - 1e-9


@settings(max_examples=60, deadline=None)
@given(circ=cancellable_circuits())
def test_cancel_preserves_unitary(circ):
    out = cancel_adjacent_inverses(circ)
    assert out.num_gates <= circ.num_gates
    assert _equivalent(circ, out)


@settings(max_examples=60, deadline=None)
@given(circ=cancellable_circuits())
def test_merge_preserves_unitary(circ):
    out = merge_rotations(circ)
    assert out.num_gates <= circ.num_gates
    assert _equivalent(circ, out)


@settings(max_examples=40, deadline=None)
@given(circ=cancellable_circuits())
def test_optimize_fixpoint_and_equivalence(circ):
    out = optimize_circuit(circ)
    assert _equivalent(circ, out)
    assert optimize_circuit(out) == out


@settings(max_examples=40, deadline=None)
@given(circ=cancellable_circuits())
def test_optimize_never_reorders_surviving_gates(circ):
    """Optimization only deletes/merges; surviving unmerged gates keep
    their relative order (checked per wire, ignoring merged rotations)."""
    out = cancel_adjacent_inverses(circ)
    # Surviving gates must appear in the original as a subsequence.
    original = list(circ.gates)
    position = 0
    for gate in out:
        while position < len(original) and original[position] != gate:
            position += 1
        assert position < len(original)
        position += 1
