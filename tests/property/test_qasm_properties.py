"""Property-based tests: QASM emit/parse round-trips exactly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.circuits.gates import GATE_SPECS
from repro.qasm import emit_qasm, parse_qasm

# Gates the emitter/parser round-trip (everything in the registry except
# bare directives handled specially).
_ROUNDTRIP_GATES = sorted(
    name
    for name, spec in GATE_SPECS.items()
    if name not in ("barrier", "measure", "reset")
)


@st.composite
def circuits(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    num_gates = draw(st.integers(min_value=0, max_value=25))
    circ = QuantumCircuit(n, name="prop")
    for _ in range(num_gates):
        name = draw(st.sampled_from(_ROUNDTRIP_GATES))
        spec = GATE_SPECS[name]
        if spec.num_qubits > n:
            continue
        qubits = tuple(
            draw(
                st.lists(
                    st.integers(0, n - 1),
                    min_size=spec.num_qubits,
                    max_size=spec.num_qubits,
                    unique=True,
                )
            )
        )
        params = tuple(
            draw(
                st.floats(
                    min_value=-10.0,
                    max_value=10.0,
                    allow_nan=False,
                    allow_infinity=False,
                )
            )
            for _ in range(spec.num_params)
        )
        circ.add_gate(name, *qubits, params=params)
    if draw(st.booleans()):
        circ.barrier()
    if draw(st.booleans()):
        circ.measure(draw(st.integers(0, n - 1)))
    return circ


@settings(max_examples=80, deadline=None)
@given(circ=circuits())
def test_emit_parse_roundtrip(circ):
    """parse(emit(c)) reproduces every gate, operand, and parameter."""
    reparsed = parse_qasm(emit_qasm(circ))
    assert reparsed.num_qubits == circ.num_qubits
    assert reparsed.gates == circ.gates


@settings(max_examples=40, deadline=None)
@given(circ=circuits())
def test_emit_is_stable(circ):
    """Emitting twice (after a round-trip) gives identical text."""
    once = emit_qasm(circ)
    twice = emit_qasm(parse_qasm(once))
    assert once == twice
