"""Property-based tests: every trial winner is a correct compilation.

Whatever the seed pool, objective, or executor, the engine's winner
must satisfy the mapper's two contracts — hardware compliance on the
device and structural equivalence to the input circuit — and its
objective value must actually be the pool's minimum.  hypothesis
explores random circuits, random connected devices, and random seed
pools.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit
from repro.engine import run_trials
from repro.engine.trials import OBJECTIVES, objective_value
from repro.hardware import random_device
from repro.verify import assert_compliant, assert_equivalent

circuit_specs = st.tuples(
    st.integers(min_value=2, max_value=7),      # logical qubits
    st.integers(min_value=1, max_value=30),     # gate count
    st.integers(min_value=0, max_value=10_000), # circuit seed
)
device_specs = st.tuples(
    st.integers(min_value=7, max_value=12),     # physical qubits
    st.integers(min_value=0, max_value=10_000), # device seed
)
seed_pools = st.lists(
    st.integers(min_value=0, max_value=100_000),
    min_size=1,
    max_size=4,
    unique=True,
)


def build_circuit(spec):
    n, gates, seed = spec
    rng = random.Random(seed)
    circ = QuantumCircuit(n, name=f"trialprop_{seed}")
    for _ in range(gates):
        if n >= 2 and rng.random() < 0.6:
            a, b = rng.sample(range(n), 2)
            circ.cx(a, b)
        else:
            circ.add_gate(rng.choice(["h", "t", "x", "s"]), rng.randrange(n))
    return circ


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(circuit=circuit_specs, device=device_specs, seeds=seed_pools)
def test_winner_is_verified_compilation(circuit, device, seeds):
    """The winning trial passes equivalence and compliance checks."""
    circ = build_circuit(circuit)
    dev = random_device(device[0], seed=device[1])
    outcome = run_trials(circ, dev, seeds=seeds)
    winner = outcome.best_result
    assert_compliant(winner.physical_circuit(), dev)
    assert_equivalent(
        winner.original_circuit,
        winner.routing.circuit,
        winner.routing.initial_layout,
        winner.routing.swap_positions,
    )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    circuit=circuit_specs,
    device=device_specs,
    seeds=seed_pools,
    objective=st.sampled_from(sorted(OBJECTIVES)),
)
def test_every_trial_verified_and_winner_minimal(circuit, device, seeds, objective):
    """ALL trials (not just the winner) are correct compilations, and
    the winner attains the pool's minimum objective value."""
    circ = build_circuit(circuit)
    dev = random_device(device[0], seed=device[1])
    outcome = run_trials(circ, dev, seeds=seeds, objective=objective)
    for trial in outcome.trials:
        result = trial.result
        assert_compliant(result.physical_circuit(), dev)
        assert_equivalent(
            result.original_circuit,
            result.routing.circuit,
            result.routing.initial_layout,
            result.routing.swap_positions,
        )
        assert trial.value == objective_value(result, objective)
    assert outcome.winner.value == min(t.value for t in outcome.trials)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(circuit=circuit_specs, device=device_specs)
def test_growing_seed_pool_never_hurts(circuit, device):
    """Best-of-K g_add is monotonically non-increasing in K over a
    fixed, nested seed pool."""
    circ = build_circuit(circuit)
    dev = random_device(device[0], seed=device[1])
    pool = [11, 22, 33, 44]
    previous = float("inf")
    full = run_trials(circ, dev, seeds=pool)
    values = [t.value for t in full.trials]
    for k in range(1, len(pool) + 1):
        best_k = min(values[:k])
        assert best_k <= previous
        previous = best_k
