"""Property-based tests: Layout stays a bijection under any swap script."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Layout


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_random_layout_is_bijection(n, seed):
    layout = Layout.random(n, seed=seed)
    assert sorted(layout.l2p) == list(range(n))
    assert sorted(layout.p2l) == list(range(n))
    for q in range(n):
        assert layout.logical(layout.physical(q)) == q


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    swaps=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)),
        max_size=50,
    ),
)
def test_swap_scripts_preserve_bijection(n, swaps):
    layout = Layout.trivial(n)
    for a, b in swaps:
        a %= n
        b %= n
        if a != b:
            layout.swap_logical(a, b)
    assert sorted(layout.l2p) == list(range(n))
    for p in range(n):
        assert layout.physical(layout.logical(p)) == p


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    swaps=st.lists(
        st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=30
    ),
)
def test_swap_script_inverts(n, swaps):
    """Applying a swap script then its reverse restores the layout."""
    filtered = [(a % n, b % n) for a, b in swaps if a % n != b % n]
    layout = Layout.random(n, seed=1)
    reference = layout.copy()
    for a, b in filtered:
        layout.swap_logical(a, b)
    for a, b in reversed(filtered):
        layout.swap_logical(a, b)
    assert layout == reference


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_swap_logical_equals_swap_physical(n, seed):
    """swap_logical(a, b) == swap_physical(pi(a), pi(b))."""
    import random

    rng = random.Random(seed)
    a, b = rng.sample(range(n), 2)
    via_logical = Layout.random(n, seed=seed)
    via_physical = via_logical.copy()
    pa, pb = via_logical.physical(a), via_logical.physical(b)
    via_logical.swap_logical(a, b)
    via_physical.swap_physical(pa, pb)
    assert via_logical == via_physical
