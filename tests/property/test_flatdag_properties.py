"""Property-based tests: compile-once IR vs object DAG, reset-reuse.

For ANY circuit, the flat IR must mirror the object DAG's structure,
the resettable frontier must replay the object frontier move-for-move,
and routing through one shared (reset) IR/frontier must be
byte-identical to per-run construction — on both the shared-IR router
and the frozen legacy path.  hypothesis explores the space.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitDag, QuantumCircuit
from repro.circuits.dag import DagFrontier
from repro.circuits.flatdag import FlatDag, FrontierState
from repro.core import Layout, LegacyDagRouter, SabreRouter
from repro.hardware import random_device

circuit_specs = st.tuples(
    st.integers(min_value=2, max_value=8),       # logical qubits
    st.integers(min_value=0, max_value=40),      # gate count
    st.integers(min_value=0, max_value=10_000),  # circuit seed
)
device_specs = st.tuples(
    st.integers(min_value=8, max_value=14),      # physical qubits
    st.integers(min_value=0, max_value=10_000),  # device seed
)


def build_circuit(spec):
    n, gates, seed = spec
    rng = random.Random(seed)
    circ = QuantumCircuit(n, name=f"prop_{seed}")
    for _ in range(gates):
        roll = rng.random()
        if n >= 2 and roll < 0.6:
            a, b = rng.sample(range(n), 2)
            circ.cx(a, b)
        elif roll < 0.9:
            circ.add_gate(rng.choice(["h", "t", "x", "s"]), rng.randrange(n))
        else:
            circ.measure(rng.randrange(n))
    return circ


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(circuit=circuit_specs)
def test_flatdag_structure_matches_object_dag(circuit):
    circ = build_circuit(circuit)
    flat = FlatDag.from_circuit(circ)
    obj = CircuitDag(circ)
    assert flat.num_nodes == len(obj)
    for i in range(flat.num_nodes):
        assert flat.successors(i) == obj.successors(i)
        assert flat.predecessors(i) == obj.predecessors(i)
        assert list(flat.succs[i]) == obj.successors(i)
    assert list(flat.roots) == obj.roots()


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(circuit=circuit_specs, choice_seed=st.integers(min_value=0, max_value=999))
def test_frontier_replays_object_frontier(circuit, choice_seed):
    """Co-execute both frontiers with identical random choices; every
    observable (drain order, front layer, extended set) must agree."""
    circ = build_circuit(circuit)
    obj = DagFrontier(CircuitDag(circ))
    flat = FrontierState(FlatDag.from_circuit(circ))
    rng = random.Random(choice_seed)
    while True:
        assert obj.drain_nonrouting() == flat.drain_nonrouting()
        assert sorted(obj.front) == flat.front_list()
        assert obj.done == flat.done
        if flat.done:
            break
        size = rng.randrange(0, 8)
        assert [g.qubits for g in obj.extended_set(size)] == [
            flat.dag.pairs[i] for i in flat.extended_nodes(size)
        ]
        pick = rng.choice(flat.front_list())
        obj.execute_front_gate(pick)
        flat.execute_front_gate(pick)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(circuit=circuit_specs, device=device_specs)
def test_route_reset_route_is_identical(circuit, device):
    """route -> reset -> route again through one frontier == two fresh
    runs, and both equal the legacy per-run-DAG path."""
    circ = build_circuit(circuit)
    dev = random_device(device[0], seed=device[1])
    layout = Layout.random(dev.num_qubits, seed=3)
    router = SabreRouter(dev, seed=0)
    ir = FlatDag.from_circuit(circ)
    frontier = FrontierState(ir)
    first = router.run(ir, initial_layout=layout, frontier=frontier)
    second = router.run(ir, initial_layout=layout, frontier=frontier)
    legacy = LegacyDagRouter(dev, seed=0).run(circ, initial_layout=layout)
    assert first.circuit == second.circuit == legacy.circuit
    assert first.swap_positions == second.swap_positions == legacy.swap_positions
    assert first.final_layout == second.final_layout == legacy.final_layout
