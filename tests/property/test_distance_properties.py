"""Property-based tests: the distance matrix is a graph metric."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import (
    bfs_distance_matrix,
    floyd_warshall,
    random_device,
    weighted_floyd_warshall,
)

devices = st.tuples(
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=0, max_value=10_000),
)


@settings(max_examples=50, deadline=None)
@given(spec=devices)
def test_metric_axioms(spec):
    dev = random_device(spec[0], seed=spec[1])
    dist = floyd_warshall(dev)
    n = dev.num_qubits
    for i in range(n):
        assert dist[i][i] == 0
        for j in range(n):
            # symmetry
            assert dist[i][j] == dist[j][i]
            # positivity
            if i != j:
                assert dist[i][j] >= 1
    # triangle inequality
    for i in range(n):
        for j in range(n):
            for k in range(n):
                assert dist[i][j] <= dist[i][k] + dist[k][j]


@settings(max_examples=50, deadline=None)
@given(spec=devices)
def test_bfs_and_floyd_warshall_agree(spec):
    """Two independent APSP implementations must agree everywhere."""
    dev = random_device(spec[0], seed=spec[1])
    assert bfs_distance_matrix(dev) == floyd_warshall(dev)


@settings(max_examples=50, deadline=None)
@given(spec=devices)
def test_edges_have_distance_one(spec):
    dev = random_device(spec[0], seed=spec[1])
    dist = floyd_warshall(dev)
    for a, b in dev.edges:
        assert dist[a][b] == 1


@settings(max_examples=50, deadline=None)
@given(spec=devices)
def test_distance_bounded_by_diameter(spec):
    dev = random_device(spec[0], seed=spec[1])
    dist = floyd_warshall(dev)
    diameter = dev.diameter()
    n = dev.num_qubits
    assert all(dist[i][j] <= diameter for i in range(n) for j in range(n))


@settings(max_examples=30, deadline=None)
@given(
    spec=devices,
    weight_seed=st.integers(min_value=0, max_value=100),
)
def test_weighted_distances_lower_bounded_by_cheapest_edge(spec, weight_seed):
    import random

    dev = random_device(spec[0], seed=spec[1])
    rng = random.Random(weight_seed)
    weights = {edge: rng.uniform(0.5, 3.0) for edge in dev.edges}
    dist = weighted_floyd_warshall(dev, weights)
    cheapest = min(weights.values())
    n = dev.num_qubits
    for i in range(n):
        for j in range(n):
            if i != j:
                assert dist[i][j] >= cheapest - 1e-12


@settings(max_examples=30, deadline=None)
@given(spec=devices)
def test_unit_weights_match_hops(spec):
    dev = random_device(spec[0], seed=spec[1])
    unit = {edge: 1.0 for edge in dev.edges}
    assert weighted_floyd_warshall(dev, unit) == floyd_warshall(dev)
