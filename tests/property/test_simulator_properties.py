"""Property-based tests: simulator unitarity and composition laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, inverted_circuit
from repro.circuits.gates import GATE_SPECS
from repro.verify import Statevector

_UNITARY_GATES = sorted(
    name for name, spec in GATE_SPECS.items() if not spec.directive
)


@st.composite
def unitary_circuits(draw, max_qubits=5, max_gates=20):
    n = draw(st.integers(min_value=2, max_value=max_qubits))
    circ = QuantumCircuit(n)
    for _ in range(draw(st.integers(0, max_gates))):
        name = draw(st.sampled_from(_UNITARY_GATES))
        spec = GATE_SPECS[name]
        if spec.num_qubits > n:
            continue
        qubits = tuple(
            draw(
                st.lists(
                    st.integers(0, n - 1),
                    min_size=spec.num_qubits,
                    max_size=spec.num_qubits,
                    unique=True,
                )
            )
        )
        params = tuple(
            draw(st.floats(-6.0, 6.0, allow_nan=False, allow_infinity=False))
            for _ in range(spec.num_params)
        )
        circ.add_gate(name, *qubits, params=params)
    return circ


@settings(max_examples=60, deadline=None)
@given(circ=unitary_circuits(), seed=st.integers(0, 1000))
def test_norm_preserved(circ, seed):
    """Unitary evolution preserves the 2-norm."""
    state = Statevector.random(circ.num_qubits, seed=seed)
    state.apply_circuit(circ)
    assert abs(state.norm() - 1.0) < 1e-9


@settings(max_examples=40, deadline=None)
@given(circ=unitary_circuits(max_gates=12), seed=st.integers(0, 1000))
def test_inverse_undoes_circuit(circ, seed):
    """U_dagger U = I on a random state."""
    probe = Statevector.random(circ.num_qubits, seed=seed)
    evolved = probe.copy().apply_circuit(circ).apply_circuit(
        inverted_circuit(circ)
    )
    assert probe.fidelity(evolved) > 1 - 1e-9


@settings(max_examples=40, deadline=None)
@given(
    a=unitary_circuits(max_gates=8),
    seed=st.integers(0, 1000),
)
def test_composition_associates(a, seed):
    """Applying c then c equals applying compose(c, c)."""
    probe = Statevector.random(a.num_qubits, seed=seed)
    stepwise = probe.copy().apply_circuit(a).apply_circuit(a)
    composed = probe.copy().apply_circuit(a.compose(a))
    assert stepwise.fidelity(composed) > 1 - 1e-9


@settings(max_examples=40, deadline=None)
@given(circ=unitary_circuits(max_gates=10), seed=st.integers(0, 1000))
def test_fidelity_symmetric(circ, seed):
    a = Statevector.random(circ.num_qubits, seed=seed)
    b = a.copy().apply_circuit(circ)
    assert abs(a.fidelity(b) - b.fidelity(a)) < 1e-12
