"""Property-based tests: routing invariants on random circuits/devices.

For ANY circuit and ANY connected device, a correct mapper must emit a
hardware-compliant, semantically equivalent circuit whose size is the
original plus exactly 3 gates per SWAP.  hypothesis explores the space.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import TrivialRouter
from repro.circuits import QuantumCircuit
from repro.core import HeuristicConfig, Layout, SabreRouter
from repro.hardware import random_device
from repro.verify import (
    assert_compliant,
    assert_equivalent,
    routed_statevector_equivalent,
)

# Reusable strategy: a random circuit description (sizes kept modest so
# hypothesis can run many examples quickly).
circuit_specs = st.tuples(
    st.integers(min_value=2, max_value=8),    # logical qubits
    st.integers(min_value=0, max_value=40),   # gate count
    st.integers(min_value=0, max_value=10_000),  # circuit seed
)
device_specs = st.tuples(
    st.integers(min_value=8, max_value=14),   # physical qubits
    st.integers(min_value=0, max_value=10_000),  # device seed
)


def build_circuit(spec):
    n, gates, seed = spec
    import random

    rng = random.Random(seed)
    circ = QuantumCircuit(n, name=f"prop_{seed}")
    for _ in range(gates):
        if n >= 2 and rng.random() < 0.6:
            a, b = rng.sample(range(n), 2)
            circ.cx(a, b)
        else:
            circ.add_gate(rng.choice(["h", "t", "x", "s"]), rng.randrange(n))
    return circ


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(circuit=circuit_specs, device=device_specs)
def test_sabre_routing_invariants(circuit, device):
    circ = build_circuit(circuit)
    dev = random_device(device[0], seed=device[1])
    router = SabreRouter(dev, seed=0)
    result = router.run(circ)
    # 1. compliance
    assert_compliant(result.physical_circuit(), dev)
    # 2. structural equivalence
    assert_equivalent(
        circ, result.circuit, result.initial_layout, result.swap_positions
    )
    # 3. gate conservation
    physical = result.physical_circuit(decompose_swaps=True)
    assert physical.count_gates() == circ.count_gates() + 3 * result.num_swaps
    # 4. layout book-keeping
    layout = result.initial_layout.copy()
    for pos in result.swap_positions:
        layout.swap_physical(*result.circuit[pos].qubits)
    assert layout == result.final_layout


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    circuit=st.tuples(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=25),
        st.integers(min_value=0, max_value=10_000),
    ),
    device_seed=st.integers(min_value=0, max_value=1000),
)
def test_sabre_statevector_equivalence(circuit, device_seed):
    """Unitary-level equivalence on simulable sizes."""
    circ = build_circuit(circuit)
    dev = random_device(8, seed=device_seed)
    result = SabreRouter(dev, seed=0).run(circ)
    assert routed_statevector_equivalent(
        circ, result.circuit, result.initial_layout, result.final_layout
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    circuit=circuit_specs,
    device=device_specs,
    mode=st.sampled_from(["basic", "lookahead", "decay"]),
    delta=st.floats(min_value=0.0, max_value=0.2),
)
def test_all_heuristic_modes_route_correctly(circuit, device, mode, delta):
    circ = build_circuit(circuit)
    dev = random_device(device[0], seed=device[1])
    config = HeuristicConfig(mode=mode, decay_delta=delta)
    result = SabreRouter(dev, config=config, seed=0).run(circ)
    assert_compliant(result.physical_circuit(), dev)
    assert_equivalent(
        circ, result.circuit, result.initial_layout, result.swap_positions
    )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(circuit=circuit_specs, device=device_specs)
def test_trivial_router_invariants(circuit, device):
    """The baseline router obeys the same contract."""
    circ = build_circuit(circuit)
    dev = random_device(device[0], seed=device[1])
    result = TrivialRouter(dev).run(circ)
    assert_compliant(result.physical_circuit(), dev)
    assert_equivalent(
        circ,
        result.routing.circuit,
        result.initial_layout,
        result.routing.swap_positions,
    )


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    circuit=circuit_specs,
    device=device_specs,
    layout_seed=st.integers(min_value=0, max_value=100),
)
def test_any_initial_layout_routes(circuit, device, layout_seed):
    """Routing succeeds from any starting permutation."""
    circ = build_circuit(circuit)
    dev = random_device(device[0], seed=device[1])
    layout = Layout.random(dev.num_qubits, seed=layout_seed)
    result = SabreRouter(dev, seed=0).run(circ, initial_layout=layout)
    assert result.initial_layout == layout
    assert_compliant(result.physical_circuit(), dev)
