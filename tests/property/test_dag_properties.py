"""Property-based tests: DAG construction and frontier invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import CircuitDag, QuantumCircuit
from repro.circuits.dag import DagFrontier

circuit_specs = st.tuples(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=10_000),
)


def build_circuit(spec):
    n, gates, seed = spec
    import random

    rng = random.Random(seed)
    circ = QuantumCircuit(n)
    for _ in range(gates):
        roll = rng.random()
        if roll < 0.55 and n >= 2:
            a, b = rng.sample(range(n), 2)
            circ.cx(a, b)
        elif roll < 0.9:
            circ.add_gate(rng.choice(["h", "t", "x"]), rng.randrange(n))
        else:
            circ.measure(rng.randrange(n))
    return circ


@settings(max_examples=60, deadline=None)
@given(spec=circuit_specs)
def test_edges_respect_circuit_order(spec):
    """Every DAG edge points forward in circuit order."""
    circ = build_circuit(spec)
    dag = CircuitDag(circ)
    for node in dag.nodes:
        for pred in node.predecessors:
            assert pred < node.index
        for succ in node.successors:
            assert succ > node.index


@settings(max_examples=60, deadline=None)
@given(spec=circuit_specs)
def test_dependencies_share_qubits(spec):
    circ = build_circuit(spec)
    dag = CircuitDag(circ)
    for node in dag.nodes:
        for pred in node.predecessors:
            assert set(node.gate.qubits) & set(dag.nodes[pred].gate.qubits)


@settings(max_examples=60, deadline=None)
@given(spec=circuit_specs)
def test_frontier_executes_every_gate_exactly_once(spec):
    """Greedy frontier consumption is a valid full linearisation."""
    circ = build_circuit(spec)
    dag = CircuitDag(circ)
    frontier = DagFrontier(dag)
    order = list(frontier.drain_nonrouting())
    while not frontier.done:
        index = min(frontier.front)
        frontier.execute_front_gate(index)
        order.append(index)
        order.extend(frontier.drain_nonrouting())
    assert dag.is_linearisation(order)


@settings(max_examples=60, deadline=None)
@given(spec=circuit_specs)
def test_front_layer_gates_are_independent(spec):
    """No two front-layer gates share a qubit (they are concurrently
    executable by definition)."""
    circ = build_circuit(spec)
    frontier = DagFrontier(CircuitDag(circ))
    frontier.drain_nonrouting()
    used = set()
    for _, gate in frontier.front_gates():
        assert not set(gate.qubits) & used
        used |= set(gate.qubits)


@settings(max_examples=60, deadline=None)
@given(spec=circuit_specs, size=st.integers(0, 30))
def test_extended_set_bounded_and_unexecuted(spec, size):
    circ = build_circuit(spec)
    frontier = DagFrontier(CircuitDag(circ))
    frontier.drain_nonrouting()
    extended = frontier.extended_set(size)
    assert len(extended) <= size
    assert all(g.is_two_qubit for g in extended)


@settings(max_examples=60, deadline=None)
@given(spec=circuit_specs)
def test_two_qubit_layers_form_partition(spec):
    circ = build_circuit(spec)
    dag = CircuitDag(circ)
    layers = dag.two_qubit_layers()
    flat = [i for layer in layers for i in layer]
    expected = [i for i, g in enumerate(circ) if g.is_two_qubit]
    assert sorted(flat) == expected
    # within a layer: disjoint qubits
    for layer in layers:
        used = set()
        for index in layer:
            qs = set(circ[index].qubits)
            assert not qs & used
            used |= qs
