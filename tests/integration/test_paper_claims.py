"""Integration tests for the paper's headline evaluation claims (§V).

Each test pins one sentence of the evaluation section to a measurable
assertion on our reproduction.  These are the "shape" checks: who wins,
by roughly what factor, where the baseline falls over.
"""

import pytest

from repro.baselines import AStarMapper
from repro.bench_circuits import build_benchmark, ising_model, qft, suite
from repro.core import compile_circuit
from repro.exceptions import SearchExhausted
from repro.hardware import distance_matrix, ibm_q20_tokyo


@pytest.fixture(scope="module")
def tokyo():
    return ibm_q20_tokyo()


@pytest.fixture(scope="module")
def dist(tokyo):
    return distance_matrix(tokyo)


class TestSmallBenchmarkClaims:
    """§V-A1: 'SABRE ... is able to find a good initial qubit mapping
    with no or very few additional SWAPs required.'"""

    @pytest.mark.parametrize(
        "name,paper_added",
        [
            ("4mod5-v1_22", 0),
            ("mod5mils_65", 0),
            ("alu-v0_27", 3),
            ("decod24-v2_43", 0),
            ("4gt13_92", 0),
        ],
    )
    def test_small_benchmarks_nearly_swap_free(
        self, tokyo, dist, name, paper_added
    ):
        result = compile_circuit(
            build_benchmark(name), tokyo, seed=0, distance=dist
        )
        assert result.added_gates <= max(paper_added, 3)

    def test_reverse_traversal_improves_small(self, tokyo, dist):
        """g_op <= g_la on every small benchmark (Table II columns)."""
        for spec in suite("small"):
            result = compile_circuit(
                spec.build(), tokyo, seed=0, distance=dist
            )
            assert result.num_swaps <= result.first_pass_swaps


class TestIsingClaims:
    """§V-A1: 'Although the number of qubits and the number of gates are
    much larger ... SABRE can still find the optimal solution.'"""

    @pytest.mark.parametrize("n", [10, 13])
    def test_ising_optimal_zero_swaps(self, tokyo, dist, n):
        result = compile_circuit(ising_model(n), tokyo, seed=0, distance=dist)
        assert result.added_gates == 0

    def test_ising16_near_optimal(self, tokyo, dist):
        """The 16-qubit chain still embeds (a Hamiltonian path exists);
        allow a small slack since restarts are finite."""
        result = compile_circuit(
            ising_model(16), tokyo, seed=0, num_trials=10, distance=dist
        )
        assert result.added_gates <= 9


class TestBkaComparisonClaims:
    """§V-A2 and Table II: SABRE matches or beats the BKA."""

    @pytest.mark.parametrize("name", ["qft_10", "qft_13", "rd84_142"])
    def test_sabre_beats_bka(self, tokyo, dist, name):
        circ = build_benchmark(name)
        sabre = compile_circuit(circ, tokyo, seed=0, distance=dist)
        bka = AStarMapper(
            tokyo, max_nodes=600_000, max_seconds=60.0, distance=dist
        ).run(circ)
        assert sabre.added_gates <= bka.added_gates

    def test_bka_oom_rows(self, tokyo, dist):
        """Table II: BKA exhausts resources on ising_model_16 while
        SABRE finishes fast."""
        mapper = AStarMapper(
            tokyo, max_nodes=300_000, max_seconds=30.0, distance=dist
        )
        with pytest.raises(SearchExhausted):
            mapper.run(ising_model(16))
        sabre = compile_circuit(
            ising_model(16), tokyo, seed=0, num_trials=2, distance=dist
        )
        assert sabre.runtime_seconds < 5.0


class TestScalabilityClaims:
    """§V-B2: BKA's effort explodes with n; SABRE's stays flat."""

    def test_bka_node_growth_superlinear(self, tokyo, dist):
        nodes = []
        for n in (4, 6, 8, 10):
            mapper = AStarMapper(
                tokyo, max_nodes=700_000, max_seconds=60.0, distance=dist
            )
            mapper.run(qft(n))
            nodes.append(mapper.last_run_nodes)
        growth = [b / max(a, 1) for a, b in zip(nodes, nodes[1:])]
        assert all(g > 1.5 for g in growth)
        assert nodes[-1] > 20 * nodes[0]

    def test_sabre_runtime_stays_subsecond_per_trial(self, tokyo, dist):
        for n in (10, 16, 20):
            result = compile_circuit(
                qft(n), tokyo, seed=0, num_trials=1, distance=dist
            )
            assert result.runtime_seconds < 2.0


class TestLargeBenchmarkClaims:
    """§V-A2: reverse traversal cuts ~10% of additional gates on large
    circuits (g_op < g_la)."""

    @pytest.mark.parametrize("name", ["rd84_142", "z4_268"])
    def test_reverse_traversal_helps_large(self, tokyo, dist, name):
        result = compile_circuit(
            build_benchmark(name), tokyo, seed=0, distance=dist
        )
        assert result.num_swaps <= result.first_pass_swaps

    @pytest.mark.slow
    def test_medium_large_benchmark_end_to_end(self, tokyo, dist):
        from repro.verify import assert_compliant, assert_equivalent

        result = compile_circuit(
            build_benchmark("adr4_197"), tokyo, seed=0, num_trials=2,
            distance=dist,
        )
        assert_compliant(result.physical_circuit(), tokyo)
        assert_equivalent(
            result.original_circuit,
            result.routing.circuit,
            result.initial_layout,
            result.routing.swap_positions,
        )
