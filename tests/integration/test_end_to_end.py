"""End-to-end integration: every mapper x several devices x workloads.

The invariants that define a correct mapper, checked across the whole
matrix: hardware compliance, structural equivalence, gate-count
conservation, and (small cases) state-vector equivalence.
"""

import pytest

from repro.baselines import AStarMapper, GreedyMapper, TrivialRouter
from repro.bench_circuits import ising_model, qft
from repro.circuits import QuantumCircuit, random_circuit
from repro.core import compile_circuit
from repro.hardware import (
    grid_device,
    heavy_hex_device,
    ibm_q20_tokyo,
    line_device,
    random_device,
    ring_device,
)
from repro.qasm import emit_qasm, parse_qasm
from repro.verify import (
    assert_compliant,
    assert_equivalent,
    routed_statevector_equivalent,
)

DEVICES = [
    ibm_q20_tokyo(),
    grid_device(4, 4),
    line_device(12),
    ring_device(12),
    heavy_hex_device(2),
    random_device(14, seed=9),
]


def _verify(result, device, check_statevector=False):
    assert_compliant(result.physical_circuit(), device)
    assert_equivalent(
        result.original_circuit,
        result.routing.circuit,
        result.initial_layout,
        result.routing.swap_positions,
    )
    # gate conservation: total = original + 3 * swaps
    physical = result.physical_circuit(decompose_swaps=True)
    assert physical.count_gates() == (
        result.original_circuit.count_gates() + 3 * result.num_swaps
    )
    if check_statevector and result.routing.circuit.num_qubits <= 14:
        assert routed_statevector_equivalent(
            result.original_circuit,
            result.routing.circuit,
            result.initial_layout,
            result.final_layout,
        )


class TestSabreAcrossDevices:
    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    def test_random_workload(self, device):
        circ = random_circuit(
            min(10, device.num_qubits), 60, seed=1, two_qubit_fraction=0.7
        )
        result = compile_circuit(circ, device, seed=0, num_trials=2)
        _verify(result, device, check_statevector=device.num_qubits <= 14)

    @pytest.mark.parametrize("device", DEVICES, ids=lambda d: d.name)
    def test_qft_workload(self, device):
        n = min(8, device.num_qubits)
        result = compile_circuit(qft(n), device, seed=0, num_trials=2)
        _verify(result, device)


class TestAllMappersAgree:
    """Every mapper must produce a valid (if differently sized) result."""

    @pytest.mark.parametrize(
        "make",
        [
            lambda d, c: compile_circuit(c, d, seed=0, num_trials=2),
            lambda d, c: AStarMapper(d, max_nodes=400_000).run(c),
            lambda d, c: GreedyMapper(d).run(c),
            lambda d, c: TrivialRouter(d).run(c),
        ],
        ids=["sabre", "astar", "greedy", "trivial"],
    )
    def test_mapper_validity(self, make):
        device = ibm_q20_tokyo()
        circ = random_circuit(8, 50, seed=4, two_qubit_fraction=0.6)
        result = make(device, circ)
        _verify(result, device, check_statevector=False)


class TestPipelineWithQasm:
    def test_qasm_in_qasm_out(self, tokyo):
        source = "\n".join(
            [
                "OPENQASM 2.0;",
                'include "qelib1.inc";',
                "qreg q[5]; creg c[5];",
                "h q[0];",
                "ccx q[0], q[2], q[4];",
                "cx q[1], q[3];",
                "cx q[0], q[4];",
                "measure q -> c;",
            ]
        )
        circ = parse_qasm(source, name="e2e")
        result = compile_circuit(circ, tokyo, seed=0, num_trials=2)
        text = emit_qasm(result.physical_circuit())
        reparsed = parse_qasm(text)
        assert_compliant(reparsed, tokyo)
        assert reparsed.gate_counts() == result.physical_circuit().gate_counts()


class TestIsingAcrossLineLikeDevices:
    """A chain workload embeds perfectly wherever a Hamiltonian path
    exists (line, ring, grid, tokyo)."""

    @pytest.mark.parametrize(
        "device",
        [line_device(10), ring_device(10), grid_device(3, 4), ibm_q20_tokyo()],
        ids=lambda d: d.name,
    )
    def test_zero_swap_embedding(self, device):
        result = compile_circuit(
            ising_model(10), device, seed=0, num_trials=5
        )
        assert result.num_swaps == 0


class TestRepeatedCompilationStability:
    def test_same_seed_same_result(self, tokyo):
        circ = random_circuit(9, 70, seed=6, two_qubit_fraction=0.7)
        first = compile_circuit(circ, tokyo, seed=5, num_trials=3)
        second = compile_circuit(circ, tokyo, seed=5, num_trials=3)
        assert first.num_swaps == second.num_swaps
        assert first.routing.circuit == second.routing.circuit

    def test_more_trials_never_worse(self, tokyo):
        circ = random_circuit(9, 70, seed=7, two_qubit_fraction=0.7)
        few = compile_circuit(circ, tokyo, seed=0, num_trials=1)
        many = compile_circuit(circ, tokyo, seed=0, num_trials=5)
        assert many.num_swaps <= few.num_swaps
