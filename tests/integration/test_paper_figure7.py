"""Integration test: the Figure 7 depth/gate-count trade-off example.

A 3x3 grid, two parallel CNOTs on diagonal corners.  The paper shows a
depth-first solution (4 concurrent SWAPs, depth +1 swap layer) and a
gate-count-first solution (3 SWAPs, depth +2 swap layers): more decay
pressure should push SABRE toward the parallel (more-gates, less-depth)
end, and zero decay toward fewer gates.
"""

import pytest

from repro.analysis.tradeoff import decay_sweep
from repro.circuits import QuantumCircuit
from repro.core import HeuristicConfig, Layout, SabreRouter
from repro.hardware import grid_device


@pytest.fixture(scope="module")
def grid():
    return grid_device(3, 3)


@pytest.fixture(scope="module")
def figure7_circuit():
    """Fig. 7 (0-indexed grid): CNOTs on {q1,q2} and {q3,q4} placed at
    opposite corners: physical homes 0<->8 and 2<->6."""
    circ = QuantumCircuit(9, name="fig7")
    circ.cx(0, 8)
    circ.cx(2, 6)
    return circ


class TestFigure7:
    def test_both_gates_blocked_initially(self, grid, figure7_circuit):
        for gate in figure7_circuit:
            assert not grid.are_coupled(*gate.qubits)

    @pytest.mark.parametrize("delta", [0.0, 0.001, 0.05])
    def test_all_deltas_route_correctly(self, grid, figure7_circuit, delta):
        from repro.verify import assert_compliant, assert_equivalent

        config = HeuristicConfig(mode="decay", decay_delta=delta)
        router = SabreRouter(grid, config=config, seed=0)
        result = router.run(figure7_circuit, initial_layout=Layout.trivial(9))
        assert_compliant(result.physical_circuit(), grid)
        assert_equivalent(
            figure7_circuit,
            result.circuit,
            result.initial_layout,
            result.swap_positions,
        )

    def test_tradeoff_direction_on_qft(self, grid):
        """Across a delta sweep, the minimum-depth point should not be
        the minimum-gate point (the Fig. 8 trade-off exists)."""
        from repro.bench_circuits import qft

        points = decay_sweep(
            qft(8), grid, deltas=(0.0, 0.001, 0.01, 0.1), seed=0, num_trials=2
        )
        min_depth = min(points, key=lambda p: (p.depth_norm, p.delta))
        min_gates = min(points, key=lambda p: (p.gates_norm, p.delta))
        # degenerate collapse would make the trade-off claim vacuous
        assert not (
            min_depth.delta == min_gates.delta
            and len({p.depth_norm for p in points}) == 1
        )

    def test_decay_shifts_swap_concurrency(self, grid):
        """Aggressive decay should produce swap schedules at least as
        parallel (lower swap-layer depth per swap) as no decay, on
        workloads with routing pressure."""
        from repro.bench_circuits import qft
        from repro.circuits.depth import schedule_asap

        def swap_parallelism(delta: float) -> float:
            config = HeuristicConfig(mode="decay", decay_delta=delta)
            router = SabreRouter(grid, config=config, seed=0)
            result = router.run(qft(8), initial_layout=Layout.trivial(9))
            swaps = [result.circuit[i] for i in result.swap_positions]
            if not swaps:
                return 0.0
            slots = schedule_asap(list(result.circuit), 9)
            swap_slots = {slots[i] for i in result.swap_positions}
            return len(swaps) / max(len(swap_slots), 1)

        # parallelism ratio: swaps per distinct swap time-slot
        assert swap_parallelism(0.1) >= swap_parallelism(0.0) * 0.9
