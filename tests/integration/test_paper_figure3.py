"""Integration test: the paper's Figure 3 worked example, end to end.

A 4-qubit device with couplings {Q1Q2, Q2Q4, Q4Q3, Q3Q1} (a square), a
6-CNOT circuit, and the identity initial mapping.  The paper shows one
SWAP (q1, q2) after the third CNOT suffices, growing the circuit from
6 gates / depth 5 to 9 gates / depth 8.
"""

import pytest

from repro.circuits import QuantumCircuit, circuit_depth
from repro.core import Layout, SabreRouter
from repro.hardware import CouplingGraph
from repro.verify import (
    assert_compliant,
    assert_equivalent,
    routed_statevector_equivalent,
)


@pytest.fixture(scope="module")
def square_device():
    """Fig. 3b, 0-indexed: edges Q0-Q1, Q1-Q3, Q3-Q2, Q2-Q0."""
    return CouplingGraph(4, [(0, 1), (1, 3), (3, 2), (2, 0)], name="fig3b")


@pytest.fixture(scope="module")
def figure3_circuit():
    """Fig. 3c, 0-indexed logical qubits."""
    circ = QuantumCircuit(4, name="fig3c")
    for a, b in [(0, 1), (2, 3), (1, 3), (1, 2), (2, 3), (0, 3)]:
        circ.cx(a, b)
    return circ


class TestFigure3:
    def test_original_metrics(self, figure3_circuit):
        assert figure3_circuit.num_gates == 6
        assert circuit_depth(figure3_circuit) == 5

    def test_first_three_gates_execute_under_identity(
        self, square_device, figure3_circuit
    ):
        for gate in figure3_circuit.gates[:3]:
            assert square_device.are_coupled(*gate.qubits)

    def test_fourth_and_sixth_gates_blocked(self, square_device, figure3_circuit):
        """The paper marks CNOT(q2,q3) and CNOT(q1,q4) as not executable
        (0-indexed: (1,2) and (0,3))."""
        assert not square_device.are_coupled(1, 2)
        assert not square_device.are_coupled(0, 3)

    def test_single_swap_solution_found(self, square_device, figure3_circuit):
        router = SabreRouter(square_device, seed=0)
        result = router.run(figure3_circuit, initial_layout=Layout.trivial(4))
        assert result.num_swaps == 1

    def test_routed_metrics_match_paper(self, square_device, figure3_circuit):
        """'the number of gates increases from 6 to 9 and the circuit
        depth increased from 5 to 8' (§III-A)."""
        router = SabreRouter(square_device, seed=0)
        result = router.run(figure3_circuit, initial_layout=Layout.trivial(4))
        physical = result.physical_circuit(decompose_swaps=True)
        assert physical.count_gates() == 9
        assert circuit_depth(physical) == 8

    def test_routed_output_verified(self, square_device, figure3_circuit):
        router = SabreRouter(square_device, seed=0)
        result = router.run(figure3_circuit, initial_layout=Layout.trivial(4))
        assert_compliant(result.physical_circuit(), square_device)
        assert_equivalent(
            figure3_circuit,
            result.circuit,
            result.initial_layout,
            result.swap_positions,
        )
        assert routed_statevector_equivalent(
            figure3_circuit,
            result.circuit,
            result.initial_layout,
            result.final_layout,
        )

    def test_updated_mapping_matches_paper(self, square_device, figure3_circuit):
        """Fig. 3d: after the SWAP the mapping is q1->Q2, q2->Q1 (i.e.
        logical 0 and 1 exchanged homes)."""
        router = SabreRouter(square_device, seed=0)
        result = router.run(figure3_circuit, initial_layout=Layout.trivial(4))
        swapped = {
            q for q in range(4)
            if result.final_layout.physical(q) != Layout.trivial(4).physical(q)
        }
        assert len(swapped) == 2
