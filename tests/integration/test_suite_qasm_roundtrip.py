"""Integration: every Table II workload survives the QASM round-trip.

This pins down the full interchange path a downstream user relies on:
generator -> emit QASM -> parse QASM -> identical circuit, for all 26
benchmark circuits (including the 34,881-gate giants).
"""

import pytest

from repro.bench_circuits import TABLE_II
from repro.qasm import emit_qasm, parse_qasm

_SMALL_ENOUGH = [s for s in TABLE_II if s.paper_gates <= 7000]
_GIANTS = [s for s in TABLE_II if s.paper_gates > 7000]


@pytest.mark.parametrize(
    "spec", _SMALL_ENOUGH, ids=[s.name for s in _SMALL_ENOUGH]
)
def test_benchmark_roundtrip(spec):
    circuit = spec.build()
    reparsed = parse_qasm(emit_qasm(circuit), name=circuit.name)
    assert reparsed.num_qubits == circuit.num_qubits
    assert reparsed.gates == circuit.gates


@pytest.mark.slow
@pytest.mark.parametrize("spec", _GIANTS, ids=[s.name for s in _GIANTS])
def test_giant_benchmark_roundtrip(spec):
    circuit = spec.build()
    reparsed = parse_qasm(emit_qasm(circuit), name=circuit.name)
    assert reparsed.gates == circuit.gates


def test_roundtrip_of_routed_benchmark(tokyo):
    """Emit -> parse the *routed* output of a mid-size benchmark."""
    from repro.bench_circuits import build_benchmark
    from repro.core import compile_circuit
    from repro.verify import is_hardware_compliant

    result = compile_circuit(
        build_benchmark("rd84_142"), tokyo, seed=0, num_trials=2
    )
    physical = result.physical_circuit()
    reparsed = parse_qasm(emit_qasm(physical))
    assert reparsed.gates == physical.gates
    assert is_hardware_compliant(reparsed, tokyo)
