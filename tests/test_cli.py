"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.hardware import ibm_q20_tokyo
from repro.qasm import parse_qasm_file
from repro.verify import is_hardware_compliant

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0], q[4];
cx q[1], q[3];
ccx q[0], q[2], q[4];
measure q -> c;
"""


@pytest.fixture
def qasm_file(tmp_path):
    path = tmp_path / "input.qasm"
    path.write_text(QASM)
    return str(path)


class TestMapCommand:
    def test_map_to_file(self, qasm_file, tmp_path, capsys):
        out = str(tmp_path / "mapped.qasm")
        code = main(["map", qasm_file, "-o", out, "--trials", "2"])
        assert code == 0
        assert os.path.exists(out)
        mapped = parse_qasm_file(out)
        assert is_hardware_compliant(mapped, ibm_q20_tokyo())

    def test_map_to_stdout(self, qasm_file, capsys):
        code = main(["map", qasm_file, "--trials", "1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "OPENQASM 2.0;" in captured.out
        assert "circuit" in captured.err  # summary on stderr

    def test_map_keep_swaps(self, qasm_file, capsys):
        code = main(["map", qasm_file, "--trials", "1", "--keep-swaps"])
        assert code == 0

    def test_map_with_optimize(self, qasm_file, capsys):
        code = main(["map", qasm_file, "--trials", "1", "--optimize"])
        assert code == 0
        assert "post-optimize" in capsys.readouterr().err

    def test_map_heuristic_flags(self, qasm_file, capsys):
        code = main(
            [
                "map",
                qasm_file,
                "--trials",
                "1",
                "--heuristic",
                "lookahead",
                "--delta",
                "0.01",
                "--extended-set",
                "10",
                "--weight",
                "0.3",
            ]
        )
        assert code == 0

    @pytest.mark.parametrize("scorer", ["vector", "fast", "reference"])
    def test_map_scorer_flag(self, qasm_file, capsys, scorer):
        code = main(
            ["map", qasm_file, "--trials", "1", "--scorer", scorer]
        )
        assert code == 0

    def test_map_ensemble_executor_matches_serial(
        self, qasm_file, tmp_path, capsys
    ):
        """--executor ensemble must produce the same routed program as
        the serial executor for the same seed pool."""
        outputs = {}
        for executor in ("serial", "ensemble"):
            out = str(tmp_path / f"{executor}.qasm")
            code = main(
                [
                    "map",
                    qasm_file,
                    "--trials",
                    "3",
                    "--executor",
                    executor,
                    "-o",
                    out,
                ]
            )
            assert code == 0
            with open(out) as handle:
                outputs[executor] = handle.read()
        assert outputs["ensemble"] == outputs["serial"]

    def test_map_bare_noise_aware_preset(self, qasm_file, capsys):
        # The preset must be usable without the --noise-aware flag: the
        # CLI supplies the chip-average model whenever the resolved
        # pipeline contains the noise-aware pass.
        code = main(
            ["map", qasm_file, "--pipeline", "noise_aware", "--trials", "1"]
        )
        assert code == 0

    def test_map_pipeline_flags_and_verbose(self, qasm_file, tmp_path, capsys):
        out = str(tmp_path / "mapped.qasm")
        code = main(
            [
                "map",
                qasm_file,
                "--device",
                "ibm_qx5",
                "--pipeline",
                "directed_device",
                "--bridge",
                "--trials",
                "1",
                "--verbose",
                "-o",
                out,
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "pass timings:" in err
        assert "BridgeRewrite" in err
        from repro.hardware.devices import ibm_qx5

        mapped = parse_qasm_file(out)
        assert is_hardware_compliant(mapped, ibm_qx5(), check_direction=True)

    def test_map_noise_profile(self, qasm_file, tmp_path, capsys):
        profile = tmp_path / "noise.json"
        profile.write_text(
            '{"two_qubit_error": 0.03, "edge_errors": {"0,1": 0.2, "5,6": 0.1}}'
        )
        code = main(
            [
                "map",
                qasm_file,
                "--noise-aware",
                "--noise-profile",
                str(profile),
                "--trials",
                "1",
            ]
        )
        assert code == 0

    def test_unknown_pipeline_rejected(self, qasm_file):
        with pytest.raises(SystemExit):
            main(["map", qasm_file, "--pipeline", "bogus"])

    def test_unknown_device_rejected(self, qasm_file):
        with pytest.raises(SystemExit):
            main(["map", qasm_file, "--device", "ibm_q1000"])


class TestOtherCommands:
    def test_devices_listing(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "ibm_q20_tokyo" in out
        assert "symmetric" in out
        assert "directed" in out

    def test_draw_circuit(self, qasm_file, capsys):
        assert main(["draw", qasm_file]) == 0
        out = capsys.readouterr().out
        assert "q0" in out and "●" in out

    def test_draw_device(self, capsys):
        assert main(["draw", "--device", "ibm_qx2"]) == 0
        assert "ibm_qx2" in capsys.readouterr().out

    def test_draw_without_input_fails(self, capsys):
        assert main(["draw"]) == 2

    def test_forwarded_scaling_command(self, capsys):
        code = main(
            [
                "scaling",
                "--family",
                "qft",
                "--sizes",
                "4",
                "--bka-max-nodes",
                "20000",
            ]
        )
        assert code == 0
        assert "Scalability" in capsys.readouterr().out

    def test_forwarded_fig8_command(self, capsys):
        code = main(
            ["fig8", "--names", "qft_10", "--deltas", "0.0", "--trials", "1"]
        )
        assert code == 0
        assert "Figure 8" in capsys.readouterr().out

    def test_no_command_errors(self):
        with pytest.raises(SystemExit):
            main([])


class TestDevicesCommand:
    def test_listing_columns(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        # name, qubits, couplings, diameter, directedness — per device.
        assert "ibm_q20_tokyo" in out and "symmetric" in out
        assert "ibm_qx5" in out and "directed" in out
        assert "43 couplings" in out  # Tokyo's edge count

    def test_json_matches_service_catalog(self, capsys):
        import json

        from repro.hardware.devices import device_catalog

        assert main(["devices", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == device_catalog()


class TestServeAndSubmit:
    """`repro submit` against an in-process service instance."""

    @pytest.fixture()
    def running_service(self, tmp_path):
        from repro.service import (
            ResultStore,
            build_server,
            serve_url,
            shutdown_service,
            start_in_thread,
        )

        store = ResultStore(root=str(tmp_path / "store"))
        server = build_server(port=0, store=store, workers=1)
        start_in_thread(server)
        try:
            yield serve_url(server), store
        finally:
            shutdown_service(server)

    def test_submit_writes_compliant_output(
        self, qasm_file, tmp_path, running_service, capsys
    ):
        url, _ = running_service
        out = str(tmp_path / "routed.qasm")
        code = main(
            ["submit", qasm_file, "--url", url, "--trials", "2", "-o", out]
        )
        assert code == 0
        routed = parse_qasm_file(out)
        assert is_hardware_compliant(routed, ibm_q20_tokyo())
        assert "[compiled]" in capsys.readouterr().err

    def test_resubmit_hits_the_store(
        self, qasm_file, running_service, capsys
    ):
        url, store = running_service
        assert main(["submit", qasm_file, "--url", url, "--trials", "2"]) == 0
        capsys.readouterr()
        assert main(["submit", qasm_file, "--url", url, "--trials", "2"]) == 0
        captured = capsys.readouterr()
        assert "[store]" in captured.err
        assert "OPENQASM 2.0;" in captured.out
        assert store.stats()["hits"] >= 1

    def test_submit_against_dead_server_fails_cleanly(
        self, qasm_file, capsys
    ):
        from repro.service.client import find_free_port

        url = f"http://127.0.0.1:{find_free_port()}"
        code = main(
            ["submit", qasm_file, "--url", url, "--timeout", "2"]
        )
        assert code == 1
        assert "submit failed" in capsys.readouterr().err
