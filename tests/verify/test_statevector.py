"""Unit tests for the state-vector simulator."""

import math

import numpy as np
import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import GATE_SPECS, Gate
from repro.core import Layout
from repro.exceptions import VerificationError
from repro.verify import (
    Statevector,
    routed_statevector_equivalent,
    simulate,
    statevector_equivalent,
)
from repro.verify.statevector import gate_matrix


class TestStatevectorBasics:
    def test_initial_state_all_zero(self):
        state = Statevector(2)
        amps = state.amplitudes()
        assert amps[0] == 1.0
        assert np.allclose(amps[1:], 0.0)

    def test_too_many_qubits_refused(self):
        with pytest.raises(VerificationError, match="refusing"):
            Statevector(25)

    def test_zero_qubits_refused(self):
        with pytest.raises(VerificationError):
            Statevector(0)

    def test_explicit_data_normalised_shape(self):
        state = Statevector(1, [0.0, 1.0])
        assert state.amplitudes()[1] == 1.0

    def test_wrong_data_size_rejected(self):
        with pytest.raises(VerificationError, match="amplitudes"):
            Statevector(2, [1.0, 0.0])

    def test_random_state_normalised(self):
        state = Statevector.random(4, seed=0)
        assert state.norm() == pytest.approx(1.0)

    def test_random_deterministic(self):
        a = Statevector.random(3, seed=5)
        b = Statevector.random(3, seed=5)
        assert a.fidelity(b) == pytest.approx(1.0)


class TestGateApplication:
    def test_x_flips(self):
        circ = QuantumCircuit(1)
        circ.x(0)
        assert simulate(circ).probabilities()[1] == pytest.approx(1.0)

    def test_h_superposition(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        probs = simulate(circ).probabilities()
        assert probs == pytest.approx([0.5, 0.5])

    def test_bell_state(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        circ.cx(0, 1)
        probs = simulate(circ).probabilities()
        assert probs == pytest.approx([0.5, 0.0, 0.0, 0.5])

    def test_qubit0_most_significant(self):
        circ = QuantumCircuit(2)
        circ.x(0)  # |10>
        probs = simulate(circ).probabilities()
        assert probs[2] == pytest.approx(1.0)

    def test_cx_control_target_order(self):
        circ = QuantumCircuit(2)
        circ.x(1)       # set target... |01>
        circ.cx(1, 0)   # control=1 fires, flips qubit 0 -> |11>
        probs = simulate(circ).probabilities()
        assert probs[3] == pytest.approx(1.0)

    def test_directives_ignored(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        circ.barrier()
        circ.measure(0)
        assert simulate(circ).norm() == pytest.approx(1.0)

    def test_swap_gate(self):
        circ = QuantumCircuit(2)
        circ.x(0)
        circ.swap(0, 1)
        probs = simulate(circ).probabilities()
        assert probs[1] == pytest.approx(1.0)  # |01>

    def test_toffoli_truth_table(self):
        circ = QuantumCircuit(3)
        circ.x(0)
        circ.x(1)
        circ.ccx(0, 1, 2)
        probs = simulate(circ).probabilities()
        assert probs[0b111] == pytest.approx(1.0)

    def test_width_mismatch_rejected(self):
        state = Statevector(2)
        with pytest.raises(VerificationError):
            state.apply_circuit(QuantumCircuit(3))


class TestGateMatrices:
    @pytest.mark.parametrize(
        "name",
        [
            n
            for n, spec in GATE_SPECS.items()
            if not spec.directive
        ],
    )
    def test_all_matrices_unitary(self, name):
        spec = GATE_SPECS[name]
        params = tuple(0.3 * (i + 1) for i in range(spec.num_params))
        gate = Gate(name, tuple(range(spec.num_qubits)), params)
        matrix = gate_matrix(gate)
        identity = matrix @ matrix.conj().T
        assert np.allclose(identity, np.eye(matrix.shape[0]), atol=1e-12)

    def test_directive_has_no_matrix(self):
        with pytest.raises(VerificationError):
            gate_matrix(Gate("measure", (0,)))

    def test_inverse_matrices_multiply_to_identity(self):
        for name in ("s", "t", "rz", "u3", "u2", "crz"):
            spec = GATE_SPECS[name]
            params = tuple(0.4 for _ in range(spec.num_params))
            gate = Gate(name, tuple(range(spec.num_qubits)), params)
            product = gate_matrix(gate) @ gate_matrix(gate.inverse())
            assert np.allclose(
                product, np.eye(product.shape[0]), atol=1e-12
            ), name


class TestEquivalenceProbes:
    def test_equal_circuits_equivalent(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(0, 2)
        assert statevector_equivalent(circ, circ.copy())

    def test_global_phase_ignored(self):
        a = QuantumCircuit(1)
        a.z(0)
        b = QuantumCircuit(1)
        b.u1(math.pi, 0)  # Z up to global phase
        assert statevector_equivalent(a, b)

    def test_different_circuits_rejected(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        b = QuantumCircuit(2)
        b.cx(1, 0)
        assert not statevector_equivalent(a, b)

    def test_width_mismatch(self):
        assert not statevector_equivalent(QuantumCircuit(1), QuantumCircuit(2))

    def test_permuted_axes(self):
        circ = QuantumCircuit(2)
        circ.x(0)
        state = simulate(circ)           # |10>
        swapped = state.permuted([1, 0])  # -> |01>
        assert swapped.probabilities()[1] == pytest.approx(1.0)

    def test_permuted_rejects_non_permutation(self):
        with pytest.raises(VerificationError):
            Statevector(2).permuted([0, 0])


class TestRoutedEquivalence:
    def test_hand_routed_example(self):
        original = QuantumCircuit(3)
        original.h(0)
        original.cx(0, 2)
        routed = QuantumCircuit(3)
        routed.h(0)
        routed.append(Gate("swap", (0, 1)))
        routed.cx(1, 2)
        initial = Layout.trivial(3)
        final = initial.compose_swaps([(0, 1)])
        assert routed_statevector_equivalent(original, routed, initial, final)

    def test_wrong_final_layout_detected(self):
        original = QuantumCircuit(3)
        original.h(0)
        original.cx(0, 2)
        routed = QuantumCircuit(3)
        routed.h(0)
        routed.append(Gate("swap", (0, 1)))
        routed.cx(1, 2)
        initial = Layout.trivial(3)
        assert not routed_statevector_equivalent(
            original, routed, initial, initial
        )
