"""Unit tests for structural equivalence checking."""

import pytest

from repro.circuits import QuantumCircuit
from repro.circuits.gates import Gate
from repro.core import Layout
from repro.exceptions import VerificationError
from repro.verify import (
    assert_equivalent,
    extract_logical_circuit,
    structurally_equivalent,
    wires_signature,
)


class TestWiresSignature:
    def test_signature_shape(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(0, 1)
        sig = wires_signature(circ)
        assert len(sig[0]) == 2
        assert len(sig[1]) == 1
        assert sig[2] == []

    def test_directives_included(self):
        circ = QuantumCircuit(2)
        circ.measure(0)
        assert len(wires_signature(circ)[0]) == 1


class TestStructuralEquivalence:
    def test_identical_circuits(self):
        a = QuantumCircuit(2)
        a.cx(0, 1)
        assert structurally_equivalent(a, a.copy())

    def test_commuting_disjoint_gates_equal(self):
        a = QuantumCircuit(4)
        a.cx(0, 1)
        a.cx(2, 3)
        b = QuantumCircuit(4)
        b.cx(2, 3)
        b.cx(0, 1)
        assert structurally_equivalent(a, b)

    def test_reordered_dependent_gates_not_equal(self):
        a = QuantumCircuit(3)
        a.cx(0, 1)
        a.cx(1, 2)
        b = QuantumCircuit(3)
        b.cx(1, 2)
        b.cx(0, 1)
        assert not structurally_equivalent(a, b)

    def test_different_width_not_equal(self):
        assert not structurally_equivalent(QuantumCircuit(2), QuantumCircuit(3))

    def test_param_mismatch_not_equal(self):
        a = QuantumCircuit(1)
        a.rz(0.5, 0)
        b = QuantumCircuit(1)
        b.rz(0.6, 0)
        assert not structurally_equivalent(a, b)


class TestExtractLogicalCircuit:
    def test_identity_layout_no_swaps(self):
        routed = QuantumCircuit(4)
        routed.cx(0, 1)
        logical = extract_logical_circuit(routed, Layout.trivial(4), 2)
        assert logical[0].qubits == (0, 1)

    def test_swaps_update_mapping_and_vanish(self):
        routed = QuantumCircuit(3)
        routed.append(Gate("swap", (0, 1)))
        routed.cx(1, 2)  # after the swap, physical 1 holds logical 0
        logical = extract_logical_circuit(routed, Layout.trivial(3), 3)
        assert logical.num_gates == 1
        assert logical[0].qubits == (0, 2)

    def test_nontrivial_initial_layout(self):
        routed = QuantumCircuit(3)
        routed.cx(2, 0)
        layout = Layout([2, 0, 1])  # logical 0 on physical 2, 2 on 1
        logical = extract_logical_circuit(routed, layout, 3)
        assert logical[0].qubits == (0, 1)

    def test_gate_on_padding_ancilla_rejected(self):
        routed = QuantumCircuit(4)
        routed.cx(3, 0)  # physical 3 holds padding (only 2 logical)
        with pytest.raises(VerificationError, match="padding ancilla"):
            extract_logical_circuit(routed, Layout.trivial(4), 2)

    def test_explicit_swap_positions(self):
        """When the original contains real SWAP gates, positions
        disambiguate inserted ones."""
        routed = QuantumCircuit(2)
        routed.append(Gate("swap", (0, 1)))  # real gate, NOT inserted
        logical = extract_logical_circuit(
            routed, Layout.trivial(2), 2, swap_positions=[]
        )
        assert logical.num_gates == 1
        assert logical[0].name == "swap"


class TestAssertEquivalent:
    def test_valid_routing_passes(self):
        original = QuantumCircuit(3)
        original.cx(0, 2)
        routed = QuantumCircuit(3)
        routed.append(Gate("swap", (0, 1)))
        routed.cx(1, 2)
        assert_equivalent(original, routed, Layout.trivial(3))

    def test_missing_gate_detected(self):
        original = QuantumCircuit(2)
        original.cx(0, 1)
        original.cx(0, 1)
        routed = QuantumCircuit(2)
        routed.cx(0, 1)
        with pytest.raises(VerificationError, match="length mismatch"):
            assert_equivalent(original, routed, Layout.trivial(2))

    def test_wrong_gate_detected(self):
        original = QuantumCircuit(2)
        original.cx(0, 1)
        routed = QuantumCircuit(2)
        routed.cx(1, 0)
        with pytest.raises(VerificationError, match="diverges"):
            assert_equivalent(original, routed, Layout.trivial(2))

    def test_divergence_reports_wire(self):
        original = QuantumCircuit(2)
        original.t(0)
        routed = QuantumCircuit(2)
        routed.s(0)
        with pytest.raises(VerificationError, match="wire 0"):
            assert_equivalent(original, routed, Layout.trivial(2))
