"""Unit tests for the hardware-compliance checker."""

import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import VerificationError
from repro.hardware import ibm_qx2, line_device
from repro.verify import (
    assert_compliant,
    compliance_violations,
    is_hardware_compliant,
)


class TestCompliance:
    def test_compliant_circuit(self, line5):
        circ = QuantumCircuit(5)
        circ.h(0)
        circ.cx(0, 1)
        circ.cx(3, 4)
        assert is_hardware_compliant(circ, line5)
        assert compliance_violations(circ, line5) == []

    def test_uncoupled_gate_flagged(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        violations = compliance_violations(circ, line5)
        assert len(violations) == 1
        assert violations[0][0] == 0
        assert violations[0][1].qubits == (0, 4)

    def test_one_qubit_gates_always_ok(self, line5):
        circ = QuantumCircuit(5)
        for q in range(5):
            circ.h(q)
        assert is_hardware_compliant(circ, line5)

    def test_directives_always_ok(self, line5):
        circ = QuantumCircuit(5)
        circ.barrier()
        circ.measure(0)
        assert is_hardware_compliant(circ, line5)

    def test_three_qubit_gate_always_violation(self, line5):
        circ = QuantumCircuit(3)
        circ.ccx(0, 1, 2)
        assert not is_hardware_compliant(circ, line5)

    def test_violation_positions_reported(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 1)   # ok
        circ.cx(0, 2)   # bad
        circ.cx(1, 4)   # bad
        positions = [pos for pos, _ in compliance_violations(circ, line5)]
        assert positions == [1, 2]

    def test_assert_compliant_passes(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(1, 2)
        assert_compliant(circ, line5)  # no raise

    def test_assert_compliant_raises_with_details(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 3)
        with pytest.raises(VerificationError, match="coupling violation"):
            assert_compliant(circ, line5)

    def test_assert_compliant_truncates_long_lists(self, line5):
        circ = QuantumCircuit(5)
        for _ in range(10):
            circ.cx(0, 3)
        with pytest.raises(VerificationError, match=r"\+5 more"):
            assert_compliant(circ, line5)


class TestDirectionCompliance:
    def test_direction_ignored_by_default(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cx(1, 0)  # reversed direction
        assert is_hardware_compliant(circ, dev)

    def test_direction_checked_when_asked(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cx(1, 0)
        assert not is_hardware_compliant(circ, dev, check_direction=True)

    def test_native_direction_accepted(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cx(0, 1)
        assert is_hardware_compliant(circ, dev, check_direction=True)

    def test_direction_check_ignores_non_cx(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cz(1, 0)
        assert is_hardware_compliant(circ, dev, check_direction=True)
