"""Composed-pipeline equivalence suite.

Two guarantees anchor the pipeline refactor:

1. **Byte-identity** — ``Pipeline("paper_default")`` (and therefore
   ``compile_circuit``) produces bit-for-bit the same routed circuits,
   layouts, and trial statistics as the pre-refactor direct path (a
   plain :class:`SabreLayout` search, replicated inline here as the
   reference), across heuristic modes, scorers, and seeds.
2. **Composition soundness** — extension combinations that previously
   required hand-rolled glue (noise-aware + directed + bridge) run
   end-to-end through a single pipeline, stay hardware-compliant
   *including CNOT directions*, and preserve circuit semantics
   (structural equivalence at the routing level, statevector
   equivalence through the unitary-level rewrites).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import QuantumCircuit, decompose_to_cx_basis, random_circuit
from repro.circuits.decompositions import needs_cx_decomposition
from repro.core import (
    HeuristicConfig,
    Layout,
    SabreLayout,
    compile_circuit,
)
from repro.core.router import RoutingResult
from repro.engine.cache import get_flat_distance_matrix
from repro.hardware import CouplingGraph, NoiseModel, line_device
from repro.hardware.devices import ibm_qx2, ibm_qx5
from repro.pipeline import (
    BridgeRewrite,
    CompilationContext,
    Pipeline,
    compose_pipeline,
)
from repro.verify import (
    is_hardware_compliant,
    routed_statevector_equivalent,
)

MODES = ["basic", "lookahead", "decay"]
SCORERS = ["fast", "reference"]


def reference_compile(circuit, coupling, config, seed, num_trials, num_traversals):
    """The pre-pipeline direct path, replicated verbatim: decompose,
    resolve the cached distance matrix, run one SabreLayout search."""
    coupling.require_connected()
    working = (
        decompose_to_cx_basis(circuit)
        if needs_cx_decomposition(circuit)
        else circuit
    )
    searcher = SabreLayout(
        coupling,
        config=config,
        num_traversals=num_traversals,
        num_trials=num_trials,
        seed=seed,
        distance=get_flat_distance_matrix(coupling),
    )
    return working, searcher.run(working)


class TestPaperDefaultByteIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("scorer", SCORERS)
    def test_identical_across_modes_and_scorers(self, tokyo, mode, scorer):
        circuit = random_circuit(8, 60, seed=23, two_qubit_fraction=0.6)
        config = HeuristicConfig(mode=mode, scorer=scorer)
        result = Pipeline("paper_default").run(
            circuit, tokyo, config=config, seed=11, num_trials=3
        )
        working, best = reference_compile(
            circuit, tokyo, config, seed=11, num_trials=3, num_traversals=3
        )
        assert result.routing.circuit == best.routing.circuit
        assert result.routing.swap_positions == best.routing.swap_positions
        assert result.initial_layout == best.initial_layout
        assert result.final_layout == best.routing.final_layout
        assert result.num_swaps == best.num_swaps
        assert result.trial_swaps == [t.final_swaps for t in best.trials]
        assert result.first_pass_swaps == best.best_first_pass_swaps
        assert result.original_circuit == working

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_compile_circuit_is_the_pipeline(self, tokyo, seed):
        circuit = random_circuit(6, 40, seed=5, two_qubit_fraction=0.7)
        via_front_door = compile_circuit(circuit, tokyo, seed=seed)
        via_pipeline = Pipeline("paper_default").run(circuit, tokyo, seed=seed)
        assert via_front_door.routing.circuit == via_pipeline.routing.circuit
        assert via_front_door.trial_swaps == via_pipeline.trial_swaps
        assert via_front_door.initial_layout == via_pipeline.initial_layout

    def test_engine_path_identical_to_front_door(self, tokyo):
        circuit = random_circuit(6, 40, seed=9, two_qubit_fraction=0.7)
        a = compile_circuit(
            circuit, tokyo, seed=2, num_trials=4, executor="serial"
        )
        b = Pipeline("paper_default").run(
            circuit, tokyo, seed=2, num_trials=4, executor="serial"
        )
        assert a.routing.circuit == b.routing.circuit
        assert a.trial_swaps == b.trial_swaps
        assert a.first_pass_swaps == b.first_pass_swaps


def _bridge_context(coupling, routed, swap_positions, initial_layout=None):
    """Run the BridgeRewrite pass over a hand-built routing."""
    initial = initial_layout or Layout.trivial(coupling.num_qubits)
    final = initial.copy()
    for position in swap_positions:
        final.swap_physical(*routed[position].qubits)
    context = CompilationContext(
        circuit=routed, coupling=coupling, working=routed
    )
    context.routing = context.raw_routing = RoutingResult(
        circuit=routed,
        initial_layout=initial,
        final_layout=final,
        num_swaps=len(swap_positions),
        swap_positions=list(swap_positions),
    )
    BridgeRewrite().run(context)
    return context


class TestBridgeRewrite:
    def test_swap_then_cx_becomes_bridge(self):
        line3 = line_device(3)
        routed = QuantumCircuit(3, name="r")
        routed.swap(1, 2)
        routed.cx(1, 0)  # enabled by the SWAP; wires idle afterwards
        context = _bridge_context(line3, routed, [0])
        assert context.properties["bridge.swaps_removed"] == 1
        assert context.properties["bridge.bridged_cx"] == 1
        out = context.routing.circuit
        assert out.count_gates() == 4  # 4-CNOT bridge replaces SWAP+CX
        assert context.routing.num_swaps == 0
        assert is_hardware_compliant(out, line3)
        # The bridged circuit must implement the same physical unitary
        # as the original routed circuit, up to the dropped SWAP's wire
        # exchange (re-append it before comparing).
        from repro.verify import statevector_equivalent
        from repro.circuits.decompositions import swap_decomposition

        expanded = QuantumCircuit(3, name="expanded")
        expanded.extend(swap_decomposition(1, 2))
        expanded.cx(1, 0)
        rebuilt = out.copy()
        rebuilt.extend(swap_decomposition(1, 2))
        assert statevector_equivalent(expanded, rebuilt)

    def test_swap_dropped_when_pair_directly_coupled(self):
        triangle = CouplingGraph(3, [(0, 1), (1, 2), (0, 2)], name="tri")
        routed = QuantumCircuit(3, name="r")
        routed.swap(1, 2)
        routed.cx(0, 2)  # without the SWAP this is cx(0, 1): coupled
        context = _bridge_context(triangle, routed, [0])
        assert context.properties["bridge.swaps_removed"] == 1
        assert context.properties["bridge.direct_cx"] == 1
        out = context.routing.circuit
        assert [g.name for g in out] == ["cx"]
        assert out[0].qubits == (0, 1)

    def test_swap_kept_when_wire_interacts_later(self):
        line4 = line_device(4)
        routed = QuantumCircuit(4, name="r")
        routed.swap(1, 2)
        routed.cx(2, 3)
        routed.cx(1, 0)  # wire 1 used again: the SWAP must stay
        context = _bridge_context(line4, routed, [0])
        assert context.properties["bridge.swaps_removed"] == 0
        assert context.routing.circuit == routed

    def test_later_1q_gates_relabelled(self):
        triangle = CouplingGraph(3, [(0, 1), (1, 2), (0, 2)], name="tri")
        routed = QuantumCircuit(3, name="r")
        routed.swap(1, 2)
        routed.cx(0, 2)
        routed.h(2)  # logically the qubit that stayed on wire 1
        routed.x(1)
        context = _bridge_context(triangle, routed, [0])
        out = context.routing.circuit
        assert [(g.name, g.qubits) for g in out] == [
            ("cx", (0, 1)),
            ("h", (1,)),
            ("x", (2,)),
        ]

    def test_end_to_end_bridge_preset_preserves_semantics(self):
        line4 = line_device(4)
        circuit = QuantumCircuit(4, name="far")
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(0, 3)
        result = Pipeline("bridge").run(
            circuit, line4, seed=0, initial_layout=Layout.trivial(4)
        )
        assert is_hardware_compliant(result.physical_circuit(), line4)
        assert routed_statevector_equivalent(
            result.original_circuit,
            result.physical_circuit(decompose_swaps=True),
            result.initial_layout,
            result.final_layout,
        )


class TestThreeExtensionComposition:
    """noise-aware + directed + bridge through one Pipeline (the glue
    the ISSUE says was previously impossible without hand-rolling)."""

    NOISE = NoiseModel(
        edge_errors={(0, 1): 0.15, (2, 3): 0.08, (1, 2): 0.05}
    )

    def composed(self):
        return compose_pipeline(
            "paper_default",
            noise_aware=True,
            bridge=True,
            legalize_directions=True,
        )

    def test_runs_end_to_end_on_directed_device(self):
        device = ibm_qx5()
        circuit = random_circuit(8, 50, seed=3, two_qubit_fraction=0.6)
        result = self.composed().run(
            circuit, device, seed=1, noise=self.NOISE
        )
        # ComplianceCheck ran inside (direction-aware on qx5) and the
        # output is verifiably direction-legal.
        assert result.properties["compliance.checked_direction"] is True
        assert result.properties["compliance.structural"] is True
        assert is_hardware_compliant(
            result.physical_circuit(), device, check_direction=True
        )
        # The noise-aware distance pass actually ran.
        assert result.properties["noise.weighted_edges"] == device.num_edges

    def test_composition_preserves_semantics_small_device(self):
        device = ibm_qx2()
        circuit = random_circuit(5, 30, seed=8, two_qubit_fraction=0.5)
        result = self.composed().run(
            circuit, device, seed=0, noise=self.NOISE
        )
        assert is_hardware_compliant(
            result.physical_circuit(), device, check_direction=True
        )
        assert routed_statevector_equivalent(
            result.original_circuit,
            result.physical_circuit(decompose_swaps=True),
            result.initial_layout,
            result.final_layout,
        )

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        gates=st.integers(min_value=5, max_value=40),
        fraction=st.floats(min_value=0.2, max_value=0.9),
    )
    def test_hypothesis_sweep_directed_composition(
        self, seed, gates, fraction
    ):
        device = ibm_qx2()
        circuit = random_circuit(
            5, gates, seed=seed, two_qubit_fraction=fraction
        )
        result = self.composed().run(
            circuit, device, seed=seed % 17, num_trials=2, noise=self.NOISE
        )
        assert is_hardware_compliant(
            result.physical_circuit(), device, check_direction=True
        )
        assert routed_statevector_equivalent(
            result.original_circuit,
            result.physical_circuit(decompose_swaps=True),
            result.initial_layout,
            result.final_layout,
        )

    def test_noise_aware_preset_matches_legacy_router(self, tokyo):
        from repro.extensions import NoiseAwareRouter

        circuit = random_circuit(6, 30, seed=4, two_qubit_fraction=0.6)
        router = NoiseAwareRouter(tokyo, self.NOISE)
        via_wrapper = router.run(circuit, seed=3, num_trials=2)
        via_pipeline = Pipeline("noise_aware").run(
            circuit, tokyo, seed=3, num_trials=2, noise=self.NOISE
        )
        assert via_wrapper.routing.circuit == via_pipeline.routing.circuit
        assert via_wrapper.num_swaps == via_pipeline.num_swaps
