"""Unit tests for the pass-pipeline compiler surface."""

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.decompositions import needs_cx_decomposition
from repro.core import HeuristicConfig, Layout, compile_circuit
from repro.engine import run_trials
from repro.engine.trials import objective_value
from repro.exceptions import MappingError, ReproError, VerificationError
from repro.hardware import line_device, ring_device
from repro.hardware.devices import ibm_qx5
from repro.hardware.noise import NoiseModel
from repro.pipeline import (
    PRESETS,
    AnalysisPass,
    CollectMetrics,
    ComplianceCheck,
    CompilationContext,
    DecomposeToBasis,
    Pipeline,
    PropertySet,
    ResolveDistance,
    SabreLayoutPass,
    SabreRoutePass,
    compose_pipeline,
    get_pipeline,
    preset_names,
)
from repro.verify import is_hardware_compliant


class TestPresets:
    def test_registry_names(self):
        assert "paper_default" in preset_names()
        for expected in (
            "fast",
            "best_effort",
            "noise_aware",
            "directed_device",
            "bridge",
            "baseline_trivial",
            "baseline_greedy",
            "baseline_astar",
        ):
            assert expected in PRESETS

    def test_unknown_preset_raises(self):
        with pytest.raises(ReproError, match="unknown pipeline preset"):
            Pipeline("no_such_preset")

    def test_shared_instances(self):
        assert get_pipeline("paper_default") is get_pipeline("paper_default")

    def test_fast_preset_defaults(self, tokyo, random6):
        result = Pipeline("fast").run(random6, tokyo, seed=3)
        assert result.num_trials == 1
        assert result.num_traversals == 1
        # Explicit overrides still win over preset defaults.
        result = Pipeline("fast").run(random6, tokyo, seed=3, num_trials=2)
        assert result.num_trials == 2

    def test_every_preset_produces_compliant_output(self, random6):
        device = line_device(6)
        noise = NoiseModel(edge_errors={(0, 1): 0.2, (3, 4): 0.1})
        for name in preset_names():
            kwargs = {"noise": noise} if name == "noise_aware" else {}
            result = Pipeline(name).run(random6, device, seed=1, **kwargs)
            assert is_hardware_compliant(
                result.physical_circuit(), device
            ), f"preset {name} emitted a non-compliant circuit"
            assert result.properties["pipeline.name"] == name


class TestRunner:
    def test_records_one_timing_per_pass(self, tokyo, ghz5):
        pipeline = Pipeline("paper_default")
        result = pipeline.run(ghz5, tokyo, seed=0)
        names = [name for name, _ in result.properties.pass_timings]
        assert names == [p.name for p in pipeline.passes]
        assert all(t >= 0.0 for _, t in result.properties.pass_timings)
        assert "DecomposeToBasis" in result.properties.timing_report()

    def test_too_large_circuit_raises(self, ghz5):
        with pytest.raises(MappingError, match="needs 5 qubits"):
            Pipeline("paper_default").run(ghz5, ring_device(4))

    def test_non_pass_entry_rejected(self):
        with pytest.raises(ReproError, match="is not a Pass"):
            Pipeline([object()])

    def test_missing_collect_metrics(self, tokyo, ghz5):
        with pytest.raises(ReproError, match="CollectMetrics"):
            Pipeline([DecomposeToBasis()]).run(ghz5, tokyo)

    def test_analysis_pass_mutation_guard(self, tokyo, ghz5):
        class Rogue(AnalysisPass):
            def run(self, context):
                context.working = QuantumCircuit(1, name="rogue")

        with pytest.raises(ReproError, match="mutated the program state"):
            Pipeline([DecomposeToBasis(), Rogue()]).run(ghz5, tokyo)

    def test_analysis_pass_inplace_mutation_guard(self, tokyo, ghz5):
        # Appending to the working circuit (no object replacement) must
        # be caught too — the mutation counter, not just identity.
        class SneakyAppend(AnalysisPass):
            def run(self, context):
                context.working.h(0)

        with pytest.raises(ReproError, match="mutated the program state"):
            Pipeline([DecomposeToBasis(), SneakyAppend()]).run(ghz5, tokyo)

    def test_initial_layout_short_circuits_search(self, tokyo, random6):
        layout = Layout.random(tokyo.num_qubits, seed=7)
        result = Pipeline("paper_default").run(
            random6, tokyo, seed=0, initial_layout=layout
        )
        assert result.num_trials == 1
        assert result.num_traversals == 1
        assert result.first_pass_swaps is None
        assert result.initial_layout == layout

    def test_noise_aware_requires_noise(self, tokyo, ghz5):
        with pytest.raises(ReproError, match="needs a noise model"):
            Pipeline("noise_aware").run(ghz5, tokyo)

    def test_engine_path_through_pipeline(self, tokyo, random6):
        serial = Pipeline("paper_default").run(
            random6, tokyo, seed=0, num_trials=3, executor="serial"
        )
        direct = Pipeline("paper_default").run(
            random6, tokyo, seed=0, num_trials=3
        )
        assert serial.num_trials == 3
        assert len(serial.trial_swaps) == 3
        assert serial.properties["engine.trial_swaps"] == serial.trial_swaps
        # Winner selection by g_add matches the direct path's best swaps.
        assert serial.num_swaps <= min(direct.trial_swaps)


class TestObjectivePropertySet:
    def test_override_wins(self, tokyo, ghz5):
        result = compile_circuit(ghz5, tokyo, num_trials=1)
        baseline = objective_value(result, "g_add")
        result.properties["objective.g_add"] = baseline + 100.0
        assert objective_value(result, "g_add") == baseline + 100.0

    def test_override_steers_trial_selection(self, tokyo, random6):
        # Rescoring through the PropertySet must override the built-in
        # metric for every trial result the engine produced.
        outcome = run_trials(
            random6, tokyo, seeds=[0, 1, 2, 3], objective="g_add"
        )
        values = [t.value for t in outcome.trials]
        if len(set(values)) > 1:
            for trial in outcome.trials:
                trial.result.properties["objective.g_add"] = -trial.value
            rescored = [
                objective_value(t.result, "g_add") for t in outcome.trials
            ]
            assert rescored == [-v for v in values]

    def test_property_objective_ranks_trials(self, tokyo, random6, monkeypatch):
        # A custom analysis pass records a score; "property:<key>"
        # objectives rank trials by it — here: *maximise* swaps, the
        # opposite of g_add, so the winner provably came from the
        # PropertySet, not the built-in metrics.
        from repro.pipeline import presets as presets_mod
        from repro.pipeline import runner as runner_mod

        class RecordAntiSwap(AnalysisPass):
            def run(self, context):
                context.properties["score.anti_swap"] = float(
                    -context.routing.num_swaps
                )

        def build():
            factory, _, _ = presets_mod.get_preset("paper_default")
            passes = factory()
            passes.insert(-1, RecordAntiSwap())
            return passes

        monkeypatch.setitem(
            presets_mod.PRESETS, "anti_swap", (build, {}, "test preset")
        )
        monkeypatch.delitem(runner_mod._SHARED, "anti_swap", raising=False)
        outcome = run_trials(
            random6,
            tokyo,
            seeds=[0, 1, 2, 3],
            objective="property:score.anti_swap",
            pipeline="anti_swap",
        )
        swaps = [t.result.num_swaps for t in outcome.trials]
        assert outcome.best_result.num_swaps == max(swaps)

    def test_property_objective_missing_key_raises(self, tokyo, ghz5):
        result = compile_circuit(ghz5, tokyo, num_trials=1)
        with pytest.raises(ReproError, match="record property"):
            objective_value(result, "property:not.recorded")

    def test_unknown_objective_still_rejected_early(self, tokyo, ghz5):
        with pytest.raises(ReproError, match="unknown objective"):
            run_trials(ghz5, tokyo, seeds=[0], objective="fidelity")


class TestDecompositionCache:
    def test_cached_until_mutation(self, tokyo):
        circ = QuantumCircuit(3, name="cache-me")
        circ.h(0)
        circ.cx(0, 1)
        assert needs_cx_decomposition(circ) is False
        # Cached: same mutation counter returns the memoised answer.
        assert circ.__dict__["_needs_cx_decomposition"][1] is False
        circ.ccx(0, 1, 2)
        assert needs_cx_decomposition(circ) is True
        circ2 = QuantumCircuit(2, name="swapper")
        circ2.swap(0, 1)
        assert needs_cx_decomposition(circ2) is True

    def test_compile_uses_cached_predicate(self, tokyo, ghz5):
        compile_circuit(ghz5, tokyo, num_trials=1)
        counter, value = ghz5.__dict__["_needs_cx_decomposition"]
        assert value is False
        assert counter == ghz5._mutations


class TestComplianceCheckPass:
    def test_catches_illegal_direction(self, random6):
        device = ibm_qx5()
        # Routing alone on a directed device leaves reversed CNOTs; the
        # check must refuse to let them escape.
        passes = [
            DecomposeToBasis(),
            ResolveDistance(),
            SabreLayoutPass(),
            SabreRoutePass(),
            ComplianceCheck(),
            CollectMetrics(),
        ]
        with pytest.raises(VerificationError, match="violation"):
            Pipeline(passes).run(random6, device, seed=0)

    def test_directed_preset_passes_the_check(self, random6):
        device = ibm_qx5()
        result = Pipeline("directed_device").run(random6, device, seed=0)
        assert result.properties["compliance.checked_direction"] is True
        assert is_hardware_compliant(
            result.physical_circuit(), device, check_direction=True
        )
        assert result.final_circuit is not None


class TestComposeHelper:
    def test_bridge_precedes_legalize_regardless_of_base(self):
        for base in ("paper_default", "directed_device"):
            pipeline = compose_pipeline(
                base, bridge=True, legalize_directions=True
            )
            names = [p.name for p in pipeline.passes]
            assert names.index("BridgeRewrite") < names.index(
                "LegalizeDirections"
            )
            assert names.index("LegalizeDirections") < names.index(
                "ComplianceCheck"
            )
            assert names[-1] == "CollectMetrics"

    def test_no_duplicate_passes(self):
        pipeline = compose_pipeline(
            "directed_device", legalize_directions=True
        )
        names = [p.name for p in pipeline.passes]
        assert names.count("LegalizeDirections") == 1
        assert names.count("ComplianceCheck") == 1

    def test_composed_name(self):
        pipeline = compose_pipeline(
            "paper_default", noise_aware=True, bridge=True
        )
        assert pipeline.name == "paper_default+noise+bridge"


class TestBaselinePresets:
    @pytest.mark.parametrize(
        "preset", ["baseline_trivial", "baseline_greedy", "baseline_astar"]
    )
    def test_baseline_runs_under_verification(self, preset):
        device = line_device(5)
        circ = random_circuit(5, 16, seed=5, two_qubit_fraction=0.6)
        result = Pipeline(preset).run(circ, device)
        assert is_hardware_compliant(result.physical_circuit(), device)
        assert result.properties["baseline.name"] == preset.split("_", 1)[1]
        assert result.num_trials == 1


class TestPropertySetHelpers:
    def test_timing_report_empty(self):
        assert "no pass timings" in PropertySet().timing_report()

    def test_context_require_routing_message(self, tokyo, ghz5):
        context = CompilationContext(circuit=ghz5, coupling=tokyo)
        with pytest.raises(ReproError, match="needs a routed circuit"):
            context.require_routing("SomePass")
