"""Unit tests for the noise model (paper Fig. 2 parameters)."""

import math

import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import HardwareError
from repro.hardware import IBM_Q20_TOKYO_NOISE, NoiseModel


class TestConstruction:
    def test_paper_defaults(self):
        noise = IBM_Q20_TOKYO_NOISE
        assert noise.single_qubit_error == pytest.approx(4.43e-3)
        assert noise.two_qubit_error == pytest.approx(3.00e-2)
        assert noise.measurement_error == pytest.approx(8.74e-2)
        assert noise.t1_us == pytest.approx(87.29)
        assert noise.t2_us == pytest.approx(54.43)

    def test_invalid_rate_rejected(self):
        with pytest.raises(HardwareError):
            NoiseModel(two_qubit_error=1.5)

    def test_edge_error_override(self):
        noise = NoiseModel(edge_errors={(0, 1): 0.2})
        assert noise.edge_error(0, 1) == 0.2
        assert noise.edge_error(1, 0) == 0.2  # order-insensitive
        assert noise.edge_error(2, 3) == noise.two_qubit_error


class TestGateSuccess:
    def test_empty_circuit_perfect(self):
        assert IBM_Q20_TOKYO_NOISE.gate_success_probability(QuantumCircuit(2)) == 1.0

    def test_single_gate(self):
        circ = QuantumCircuit(1)
        circ.h(0)
        expected = 1 - IBM_Q20_TOKYO_NOISE.single_qubit_error
        assert IBM_Q20_TOKYO_NOISE.gate_success_probability(circ) == pytest.approx(
            expected
        )

    def test_cnot_worse_than_1q(self):
        noise = IBM_Q20_TOKYO_NOISE
        one = QuantumCircuit(2)
        one.h(0)
        two = QuantumCircuit(2)
        two.cx(0, 1)
        assert noise.gate_success_probability(two) < noise.gate_success_probability(
            one
        )

    def test_multiplicative(self):
        noise = IBM_Q20_TOKYO_NOISE
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        circ.cx(0, 1)
        single = 1 - noise.two_qubit_error
        assert noise.gate_success_probability(circ) == pytest.approx(single**2)

    def test_measurement_counted(self):
        noise = IBM_Q20_TOKYO_NOISE
        circ = QuantumCircuit(1)
        circ.measure(0)
        assert noise.gate_success_probability(circ) == pytest.approx(
            1 - noise.measurement_error
        )

    def test_barrier_free(self):
        noise = IBM_Q20_TOKYO_NOISE
        circ = QuantumCircuit(2)
        circ.barrier()
        assert noise.gate_success_probability(circ) == 1.0

    def test_ccx_counted_as_decomposition(self):
        noise = IBM_Q20_TOKYO_NOISE
        circ = QuantumCircuit(3)
        circ.ccx(0, 1, 2)
        expected = (1 - noise.two_qubit_error) ** 6 * (
            1 - noise.single_qubit_error
        ) ** 9
        assert noise.gate_success_probability(circ) == pytest.approx(expected)


class TestDecoherence:
    def test_deeper_circuit_decays_more(self):
        noise = IBM_Q20_TOKYO_NOISE
        shallow = QuantumCircuit(2)
        shallow.cx(0, 1)
        deep = QuantumCircuit(2)
        for _ in range(50):
            deep.cx(0, 1)
        assert noise.decoherence_factor(deep) < noise.decoherence_factor(shallow)

    def test_combined_estimate_bounded(self):
        noise = IBM_Q20_TOKYO_NOISE
        circ = QuantumCircuit(3)
        for _ in range(20):
            circ.cx(0, 1)
            circ.cx(1, 2)
        p = noise.estimated_success_probability(circ)
        assert 0.0 < p < 1.0

    def test_swap_overhead_costs_fidelity(self):
        """The paper's motivation: added SWAPs reduce fidelity."""
        noise = IBM_Q20_TOKYO_NOISE
        base = QuantumCircuit(3)
        base.cx(0, 1)
        with_swap = QuantumCircuit(3)
        with_swap.cx(0, 2)
        with_swap.cx(2, 0)
        with_swap.cx(0, 2)  # a SWAP's 3 CNOTs
        with_swap.cx(0, 1)
        assert noise.estimated_success_probability(
            with_swap
        ) < noise.estimated_success_probability(base)
