"""Unit tests for distance matrices (the paper's D[][], §IV-A)."""

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    CouplingGraph,
    bfs_distance_matrix,
    distance_matrix,
    floyd_warshall,
    weighted_floyd_warshall,
)
from repro.hardware.distance import INFINITY
from repro.hardware.devices import grid_device, line_device, random_device


class TestFloydWarshall:
    def test_line_distances(self):
        dist = floyd_warshall(line_device(4))
        assert dist[0][3] == 3
        assert dist[3][0] == 3
        assert dist[1][2] == 1

    def test_diagonal_zero(self):
        dist = floyd_warshall(grid_device(3, 3))
        assert all(dist[i][i] == 0 for i in range(9))

    def test_grid_manhattan(self):
        dist = floyd_warshall(grid_device(3, 3))
        # corner to corner on a 3x3 grid = 4 hops
        assert dist[0][8] == 4

    def test_disconnected_infinity(self):
        graph = CouplingGraph(3, [(0, 1)])
        dist = floyd_warshall(graph)
        assert dist[0][2] == INFINITY

    def test_edge_distance_one(self):
        """'Each edge in the coupling graph has distance 1' (§IV-A)."""
        graph = grid_device(2, 3)
        dist = floyd_warshall(graph)
        for a, b in graph.edges:
            assert dist[a][b] == 1


class TestBfsAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_bfs_equals_floyd_warshall_random(self, seed):
        graph = random_device(14, seed=seed)
        assert bfs_distance_matrix(graph) == floyd_warshall(graph)

    def test_bfs_equals_floyd_warshall_tokyo(self, tokyo):
        assert bfs_distance_matrix(tokyo) == floyd_warshall(tokyo)

    def test_distance_matrix_method_selector(self, tokyo):
        assert distance_matrix(tokyo, "bfs") == distance_matrix(
            tokyo, "floyd-warshall"
        )

    def test_unknown_method_rejected(self, tokyo):
        with pytest.raises(HardwareError, match="unknown distance method"):
            distance_matrix(tokyo, "dijkstra")


class TestTokyoDistances:
    def test_symmetry(self, tokyo_distance):
        n = len(tokyo_distance)
        for i in range(n):
            for j in range(n):
                assert tokyo_distance[i][j] == tokyo_distance[j][i]

    def test_triangle_inequality(self, tokyo_distance):
        n = len(tokyo_distance)
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert (
                        tokyo_distance[i][j]
                        <= tokyo_distance[i][k] + tokyo_distance[k][j]
                    )

    def test_diameter_matches_graph(self, tokyo, tokyo_distance):
        assert max(max(row) for row in tokyo_distance) == tokyo.diameter()


class TestWeightedDistances:
    def test_defaults_to_unit_weights(self):
        graph = line_device(4)
        assert weighted_floyd_warshall(graph, {}) == floyd_warshall(graph)

    def test_heavy_edge_avoided(self):
        # square: direct edge (0,1) weight 10, path 0-3-2-1 weight 3
        graph = CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        dist = weighted_floyd_warshall(graph, {(0, 1): 10.0})
        assert dist[0][1] == 3.0

    def test_nonpositive_weight_rejected(self):
        graph = line_device(3)
        with pytest.raises(HardwareError, match="positive"):
            weighted_floyd_warshall(graph, {(0, 1): 0.0})

    def test_weighted_triangle_inequality(self):
        graph = random_device(10, seed=1)
        weights = {
            edge: 1.0 + (hash(edge) % 5) / 2.0 for edge in graph.edges
        }
        dist = weighted_floyd_warshall(graph, weights)
        n = graph.num_qubits
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert dist[i][j] <= dist[i][k] + dist[k][j] + 1e-12
