"""Unit tests for CouplingGraph."""

import pytest

from repro.exceptions import HardwareError
from repro.hardware import CouplingGraph


class TestConstruction:
    def test_basic(self):
        graph = CouplingGraph(3, [(0, 1), (1, 2)])
        assert graph.num_qubits == 3
        assert graph.num_edges == 2

    def test_duplicate_and_reversed_edges_collapse(self):
        graph = CouplingGraph(2, [(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(HardwareError, match="self-loop"):
            CouplingGraph(2, [(1, 1)])

    def test_out_of_range_rejected(self):
        with pytest.raises(HardwareError, match="out of range"):
            CouplingGraph(2, [(0, 5)])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(HardwareError):
            CouplingGraph(0, [])

    def test_directed_edge_requires_coupling(self):
        with pytest.raises(HardwareError, match="no underlying coupling"):
            CouplingGraph(3, [(0, 1)], directed_edges=[(1, 2)])


class TestQueries:
    def _square(self):
        return CouplingGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)], name="sq")

    def test_edges_sorted_normalised(self):
        graph = CouplingGraph(3, [(2, 1), (1, 0)])
        assert graph.edges == [(0, 1), (1, 2)]

    def test_neighbors(self):
        assert self._square().neighbors(0) == [1, 3]

    def test_degree(self):
        assert self._square().degree(2) == 2

    def test_are_coupled_symmetric(self):
        graph = self._square()
        assert graph.are_coupled(0, 1)
        assert graph.are_coupled(1, 0)
        assert not graph.are_coupled(0, 2)

    def test_allows_cnot_symmetric_default(self):
        graph = self._square()
        assert graph.allows_cnot(0, 1)
        assert graph.allows_cnot(1, 0)

    def test_allows_cnot_directed(self):
        graph = CouplingGraph(2, [(0, 1)], directed_edges=[(0, 1)])
        assert graph.allows_cnot(0, 1)
        assert not graph.allows_cnot(1, 0)

    def test_is_symmetric_flag(self):
        assert self._square().is_symmetric
        directed = CouplingGraph(2, [(0, 1)], directed_edges=[(0, 1)])
        assert not directed.is_symmetric
        both = CouplingGraph(2, [(0, 1)], directed_edges=[(0, 1), (1, 0)])
        assert both.is_symmetric

    def test_degree_sequence(self):
        assert self._square().subgraph_degree_sequence() == [2, 2, 2, 2]

    def test_repr(self):
        assert "sq" in repr(self._square())


class TestConnectivity:
    def test_connected(self):
        assert CouplingGraph(3, [(0, 1), (1, 2)]).is_connected()

    def test_disconnected(self):
        assert not CouplingGraph(4, [(0, 1), (2, 3)]).is_connected()

    def test_single_qubit_connected(self):
        assert CouplingGraph(1, []).is_connected()

    def test_require_connected_raises(self):
        graph = CouplingGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(HardwareError, match="disconnected"):
            graph.require_connected()

    def test_diameter_line(self):
        graph = CouplingGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.diameter() == 3

    def test_diameter_complete(self):
        graph = CouplingGraph(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert graph.diameter() == 1


class TestShortestPath:
    def test_trivial_path(self):
        graph = CouplingGraph(2, [(0, 1)])
        assert graph.shortest_path(0, 0) == [0]

    def test_line_path(self):
        graph = CouplingGraph(4, [(0, 1), (1, 2), (2, 3)])
        assert graph.shortest_path(0, 3) == [0, 1, 2, 3]

    def test_path_endpoints(self):
        graph = CouplingGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)])
        path = graph.shortest_path(1, 4)
        assert path[0] == 1 and path[-1] == 4
        assert len(path) == 3  # via 0

    def test_path_uses_edges(self):
        from repro.hardware import random_device

        graph = random_device(12, seed=3)
        path = graph.shortest_path(0, 11)
        for a, b in zip(path, path[1:]):
            assert graph.are_coupled(a, b)

    def test_no_path_raises(self):
        graph = CouplingGraph(4, [(0, 1), (2, 3)])
        with pytest.raises(HardwareError, match="no path"):
            graph.shortest_path(0, 3)
