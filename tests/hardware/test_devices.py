"""Unit tests for the device zoo (paper Fig. 2 and synthetic topologies)."""

import pytest

from repro.exceptions import HardwareError
from repro.hardware import (
    DEVICE_BUILDERS,
    complete_device,
    get_device,
    grid_device,
    heavy_hex_device,
    ibm_q20_tokyo,
    ibm_qx2,
    ibm_qx4,
    ibm_qx5,
    line_device,
    random_device,
    ring_device,
    star_device,
)


class TestTokyo:
    """The paper's Fig. 2 device."""

    def test_twenty_qubits(self, tokyo):
        assert tokyo.num_qubits == 20

    def test_forty_three_couplings(self, tokyo):
        assert tokyo.num_edges == 43

    def test_symmetric(self, tokyo):
        assert tokyo.is_symmetric

    def test_connected(self, tokyo):
        assert tokyo.is_connected()

    def test_figure2_examples(self, tokyo):
        """'Q0 is connected to Q1 and Q5 ... Q0 is not directly
        connected with Q6' (§II-B)."""
        assert tokyo.are_coupled(0, 1)
        assert tokyo.are_coupled(0, 5)
        assert not tokyo.are_coupled(0, 6)

    def test_grid_rows_coupled(self, tokyo):
        for row_start in (0, 5, 10, 15):
            for offset in range(4):
                assert tokyo.are_coupled(row_start + offset, row_start + offset + 1)

    def test_diagonals_present(self, tokyo):
        for a, b in [(1, 7), (2, 6), (11, 17), (14, 18)]:
            assert tokyo.are_coupled(a, b)

    def test_diameter_four(self, tokyo):
        assert tokyo.diameter() == 4

    def test_contains_k4(self, tokyo):
        """{1, 2, 6, 7} is fully connected — why small dense circuits
        can embed perfectly (§V-A1)."""
        quad = [1, 2, 6, 7]
        for i, a in enumerate(quad):
            for b in quad[i + 1:]:
                assert tokyo.are_coupled(a, b)


class TestDirectedChips:
    def test_qx2(self):
        dev = ibm_qx2()
        assert dev.num_qubits == 5
        assert not dev.is_symmetric
        assert dev.allows_cnot(0, 1)
        assert not dev.allows_cnot(1, 0)

    def test_qx4(self):
        dev = ibm_qx4()
        assert dev.num_qubits == 5
        assert dev.allows_cnot(1, 0)
        assert not dev.allows_cnot(0, 1)

    def test_qx5(self):
        dev = ibm_qx5()
        assert dev.num_qubits == 16
        assert dev.is_connected()
        assert not dev.is_symmetric


class TestSyntheticTopologies:
    def test_line(self):
        dev = line_device(5)
        assert dev.num_edges == 4
        assert dev.diameter() == 4

    def test_line_single_qubit(self):
        assert line_device(1).num_edges == 0

    def test_ring(self):
        dev = ring_device(6)
        assert dev.num_edges == 6
        assert dev.diameter() == 3

    def test_ring_minimum_size(self):
        with pytest.raises(HardwareError):
            ring_device(2)

    def test_grid(self):
        dev = grid_device(3, 4)
        assert dev.num_qubits == 12
        assert dev.num_edges == 3 * 3 + 2 * 4  # horiz + vert

    def test_grid_bad_dims(self):
        with pytest.raises(HardwareError):
            grid_device(0, 3)

    def test_complete(self):
        dev = complete_device(6)
        assert dev.num_edges == 15
        assert dev.diameter() == 1

    def test_star(self):
        dev = star_device(7)
        assert dev.degree(0) == 6
        assert dev.diameter() == 2

    def test_heavy_hex_connected_low_degree(self):
        dev = heavy_hex_device(3)
        assert dev.is_connected()
        assert max(dev.degree(q) for q in range(dev.num_qubits)) <= 4

    def test_heavy_hex_min_distance(self):
        with pytest.raises(HardwareError):
            heavy_hex_device(1)


class TestRandomDevice:
    @pytest.mark.parametrize("seed", range(6))
    def test_always_connected(self, seed):
        assert random_device(15, seed=seed).is_connected()

    def test_deterministic(self):
        a = random_device(10, seed=5)
        b = random_device(10, seed=5)
        assert a.edges == b.edges

    def test_extra_edges_added(self):
        sparse = random_device(20, extra_edge_fraction=0.0, seed=0)
        dense = random_device(20, extra_edge_fraction=1.0, seed=0)
        assert sparse.num_edges == 19  # spanning tree only
        assert dense.num_edges > sparse.num_edges

    def test_too_small_rejected(self):
        with pytest.raises(HardwareError):
            random_device(1)


class TestRegistry:
    def test_builders_complete(self):
        assert set(DEVICE_BUILDERS) == {
            "ibm_q20_tokyo",
            "ibm_qx2",
            "ibm_qx4",
            "ibm_qx5",
        }

    def test_get_device(self):
        assert get_device("ibm_q20_tokyo").num_qubits == 20

    def test_get_device_unknown(self):
        with pytest.raises(HardwareError, match="unknown device"):
            get_device("ibm_q1000")
