"""Shared fixtures: devices, distance matrices, and workload circuits."""

from __future__ import annotations

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.hardware import (
    distance_matrix,
    grid_device,
    ibm_q20_tokyo,
    line_device,
    ring_device,
)


@pytest.fixture(scope="session")
def tokyo():
    """The paper's evaluation device (Fig. 2)."""
    return ibm_q20_tokyo()


@pytest.fixture(scope="session")
def tokyo_distance(tokyo):
    return distance_matrix(tokyo)


@pytest.fixture(scope="session")
def grid3x3():
    """The 9-qubit device of the paper's Fig. 6/7 examples."""
    return grid_device(3, 3)


@pytest.fixture(scope="session")
def line5():
    return line_device(5)


@pytest.fixture(scope="session")
def ring4():
    """The 4-qubit square of the paper's Fig. 3 example."""
    return ring_device(4)


@pytest.fixture
def ghz5():
    circ = QuantumCircuit(5, name="ghz5")
    circ.h(0)
    for q in range(4):
        circ.cx(q, q + 1)
    return circ


@pytest.fixture
def random6():
    """A fixed random 6-qubit circuit that certainly needs routing."""
    return random_circuit(6, 40, seed=13, two_qubit_fraction=0.7)
