"""Unit tests for the QASM parser."""

import math

import pytest

from repro.exceptions import QasmError
from repro.qasm import parse_qasm
from repro.verify import statevector_equivalent

HEADER = 'OPENQASM 2.0;\ninclude "qelib1.inc";\n'


class TestDeclarations:
    def test_single_qreg(self):
        circ = parse_qasm(HEADER + "qreg q[4];")
        assert circ.num_qubits == 4

    def test_multiple_qregs_flattened(self):
        circ = parse_qasm(HEADER + "qreg a[2]; qreg b[3]; cx a[1], b[0];")
        assert circ.num_qubits == 5
        assert circ[0].qubits == (1, 2)  # b starts at offset 2

    def test_creg(self):
        circ = parse_qasm(HEADER + "qreg q[2]; creg c[2]; measure q[1] -> c[0];")
        assert circ[0].name == "measure"
        assert circ[0].clbit == 0

    def test_duplicate_qreg_rejected(self):
        with pytest.raises(QasmError, match="duplicate"):
            parse_qasm(HEADER + "qreg q[2]; qreg q[3];")

    def test_zero_size_register_rejected(self):
        with pytest.raises(QasmError, match="positive size"):
            parse_qasm(HEADER + "qreg q[0];")

    def test_missing_version_ok(self):
        circ = parse_qasm('include "qelib1.inc";\nqreg q[1];\nh q[0];')
        assert circ.num_gates == 1

    def test_wrong_version_rejected(self):
        with pytest.raises(QasmError, match="version"):
            parse_qasm("OPENQASM 3.0;\nqreg q[1];")


class TestGateCalls:
    def test_standard_gates(self):
        src = HEADER + "qreg q[2];\nh q[0];\ncx q[0], q[1];\ntdg q[1];\n"
        circ = parse_qasm(src)
        assert [g.name for g in circ] == ["h", "cx", "tdg"]

    def test_builtin_U_and_CX(self):
        src = HEADER + "qreg q[2];\nU(0.1, 0.2, 0.3) q[0];\nCX q[0], q[1];"
        circ = parse_qasm(src)
        assert circ[0].name == "u3"
        assert circ[0].params == pytest.approx((0.1, 0.2, 0.3))
        assert circ[1].name == "cx"

    def test_parameter_expressions(self):
        src = HEADER + "qreg q[1];\nu1(pi/2) q[0];\nu1(-pi/4 + 1) q[0];\nu1(2*pi^2) q[0];"
        circ = parse_qasm(src)
        assert circ[0].params[0] == pytest.approx(math.pi / 2)
        assert circ[1].params[0] == pytest.approx(1 - math.pi / 4)
        assert circ[2].params[0] == pytest.approx(2 * math.pi**2)

    def test_function_calls_in_params(self):
        src = HEADER + "qreg q[1];\nrz(sin(pi/2)) q[0];\nrz(sqrt(4)) q[0];"
        circ = parse_qasm(src)
        assert circ[0].params[0] == pytest.approx(1.0)
        assert circ[1].params[0] == pytest.approx(2.0)

    def test_register_broadcast_1q(self):
        circ = parse_qasm(HEADER + "qreg q[3];\nh q;")
        assert circ.gate_counts() == {"h": 3}

    def test_register_broadcast_mixed(self):
        circ = parse_qasm(HEADER + "qreg q[3]; qreg a[1];\ncx q, a[0];")
        assert [g.qubits for g in circ] == [(0, 3), (1, 3), (2, 3)]

    def test_mismatched_broadcast_rejected(self):
        with pytest.raises(QasmError, match="mismatched register sizes"):
            parse_qasm(HEADER + "qreg q[3]; qreg r[2];\ncx q, r;")

    def test_index_out_of_range(self):
        with pytest.raises(QasmError, match="out of range"):
            parse_qasm(HEADER + "qreg q[2];\nh q[5];")

    def test_unknown_gate_rejected(self):
        with pytest.raises(QasmError, match="unknown gate"):
            parse_qasm(HEADER + "qreg q[1];\nwibble q[0];")

    def test_undeclared_register_rejected(self):
        with pytest.raises(QasmError, match="undeclared qreg"):
            parse_qasm(HEADER + "qreg q[1];\nh r[0];")

    def test_duplicate_operand_error_carries_position(self):
        with pytest.raises(QasmError, match="line 4"):
            parse_qasm(HEADER + "qreg q[2];\ncx q[0], q[0];")


class TestMeasureBarrierReset:
    def test_measure_register_broadcast(self):
        circ = parse_qasm(
            HEADER + "qreg q[3]; creg c[3];\nmeasure q -> c;"
        )
        assert circ.gate_counts() == {"measure": 3}
        assert [g.clbit for g in circ] == [0, 1, 2]

    def test_measure_size_mismatch(self):
        with pytest.raises(QasmError, match="size mismatch"):
            parse_qasm(HEADER + "qreg q[3]; creg c[2];\nmeasure q -> c;")

    def test_barrier_multiple_args(self):
        circ = parse_qasm(HEADER + "qreg q[4];\nbarrier q[0], q[2];")
        assert circ[0].qubits == (0, 2)

    def test_barrier_register(self):
        circ = parse_qasm(HEADER + "qreg q[3];\nbarrier q;")
        assert circ[0].qubits == (0, 1, 2)

    def test_reset(self):
        circ = parse_qasm(HEADER + "qreg q[2];\nreset q[1];")
        assert circ[0].name == "reset"

    def test_if_rejected(self):
        with pytest.raises(QasmError, match="not supported"):
            parse_qasm(
                HEADER + "qreg q[1]; creg c[1];\nif (c==1) x q[0];"
            )


class TestGateDefinitions:
    def test_user_macro_expanded(self):
        src = HEADER + (
            "qreg q[2];\n"
            "gate entangle a, b { h a; cx a, b; }\n"
            "entangle q[0], q[1];"
        )
        circ = parse_qasm(src)
        assert [g.name for g in circ] == ["h", "cx"]

    def test_parameterised_macro(self):
        src = HEADER + (
            "qreg q[1];\n"
            "gate tilt(theta) a { rz(theta/2) a; }\n"
            "tilt(pi) q[0];"
        )
        circ = parse_qasm(src)
        assert circ[0].params[0] == pytest.approx(math.pi / 2)

    def test_nested_macros(self):
        src = HEADER + (
            "qreg q[2];\n"
            "gate inner a { h a; }\n"
            "gate outer a, b { inner a; cx a, b; inner b; }\n"
            "outer q[0], q[1];"
        )
        circ = parse_qasm(src)
        assert [g.name for g in circ] == ["h", "cx", "h"]

    def test_builtin_cu3_macro(self):
        src = HEADER + "qreg q[2];\ncu3(0.3, 0.2, 0.1) q[0], q[1];"
        circ = parse_qasm(src)
        assert circ.num_gates == 6  # qelib1 cu3 expansion

    def test_macro_wrong_arity(self):
        src = HEADER + (
            "qreg q[2];\ngate g2 a, b { cx a, b; }\ng2 q[0];"
        )
        with pytest.raises(QasmError, match="expects 2 qubit"):
            parse_qasm(src)

    def test_macro_wrong_params(self):
        src = HEADER + (
            "qreg q[1];\ngate rot(t) a { rz(t) a; }\nrot q[0];"
        )
        with pytest.raises(QasmError, match="parameter"):
            parse_qasm(src)

    def test_opaque_call_rejected(self):
        src = HEADER + "qreg q[1];\nopaque mystery a;\nmystery q[0];"
        with pytest.raises(QasmError, match="opaque"):
            parse_qasm(src)

    def test_macro_semantics_match_inline(self):
        src_macro = HEADER + (
            "qreg q[2];\n"
            "gate br a, b { cx a, b; cx b, a; }\n"
            "h q[0];\nbr q[0], q[1];"
        )
        src_inline = HEADER + (
            "qreg q[2];\nh q[0];\ncx q[0], q[1];\ncx q[1], q[0];"
        )
        assert statevector_equivalent(
            parse_qasm(src_macro).without_directives(),
            parse_qasm(src_inline).without_directives(),
        )
