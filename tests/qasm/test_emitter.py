"""Unit tests for the QASM emitter."""

import os
import tempfile

import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import QasmError
from repro.qasm import emit_qasm, parse_qasm, write_qasm_file


class TestEmit:
    def test_header_present(self):
        text = emit_qasm(QuantumCircuit(2))
        lines = text.splitlines()
        assert lines[0] == "OPENQASM 2.0;"
        assert lines[1] == 'include "qelib1.inc";'
        assert "qreg q[2];" in lines
        assert "creg c[2];" in lines

    def test_gate_lines(self):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.cx(0, 2)
        circ.rz(0.5, 1)
        text = emit_qasm(circ)
        assert "h q[0];" in text
        assert "cx q[0], q[2];" in text
        assert "rz(0.5) q[1];" in text

    def test_measure_line(self):
        circ = QuantumCircuit(2)
        circ.measure(1, clbit=0)
        assert "measure q[1] -> c[0];" in emit_qasm(circ)

    def test_barrier_line(self):
        circ = QuantumCircuit(3)
        circ.barrier(0, 2)
        assert "barrier q[0], q[2];" in emit_qasm(circ)

    def test_zero_qubit_circuit_rejected(self):
        with pytest.raises(QasmError):
            emit_qasm(QuantumCircuit(0))

    def test_params_roundtrip_exactly(self):
        circ = QuantumCircuit(1)
        circ.rz(0.1 + 0.2, 0)  # 0.30000000000000004
        reparsed = parse_qasm(emit_qasm(circ))
        assert reparsed[0].params == circ[0].params


class TestRoundTrip:
    def test_simple_roundtrip(self):
        circ = QuantumCircuit(4, name="rt")
        circ.h(0)
        circ.cx(0, 1)
        circ.swap(1, 2)
        circ.u3(0.1, 0.2, 0.3, 3)
        circ.barrier()
        circ.measure(0)
        reparsed = parse_qasm(emit_qasm(circ))
        assert reparsed.num_qubits == circ.num_qubits
        assert reparsed.gates == circ.gates

    def test_file_roundtrip(self):
        circ = QuantumCircuit(2, name="file_rt")
        circ.h(0)
        circ.cx(0, 1)
        path = os.path.join(tempfile.gettempdir(), "repro_test_rt.qasm")
        try:
            write_qasm_file(circ, path)
            from repro.qasm import parse_qasm_file

            reparsed = parse_qasm_file(path)
            assert reparsed.gates == circ.gates
            assert reparsed.name == "repro_test_rt"
        finally:
            os.unlink(path)
