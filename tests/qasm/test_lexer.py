"""Unit tests for the QASM lexer."""

import pytest

from repro.exceptions import QasmError
from repro.qasm import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)[:-1]]


class TestTokenKinds:
    def test_keywords_recognised(self):
        assert kinds("OPENQASM qreg creg gate measure barrier pi") == [
            "KEYWORD"
        ] * 7

    def test_identifiers(self):
        assert kinds("foo q_1 Bar2") == ["ID"] * 3

    def test_integers_and_reals(self):
        assert kinds("42 3.14 .5 2. 1e-3 2.5E+4") == [
            "INT",
            "REAL",
            "REAL",
            "REAL",
            "REAL",
            "REAL",
        ]

    def test_symbols(self):
        assert kinds("; , ( ) [ ] { } + - * / ^") == ["SYMBOL"] * 13

    def test_arrow(self):
        assert kinds("q -> c") == ["ID", "ARROW", "ID"]

    def test_string(self):
        assert kinds('"qelib1.inc"') == ["STRING"]

    def test_eof_token_present(self):
        assert tokenize("")[-1].kind == "EOF"


class TestSkipping:
    def test_comments_skipped(self):
        assert values("h q; // apply hadamard\nx q;") == [
            "h",
            "q",
            ";",
            "x",
            "q",
            ";",
        ]

    def test_whitespace_skipped(self):
        assert kinds("  h\t q  ") == ["ID", "ID"]


class TestPositions:
    def test_line_tracking(self):
        tokens = tokenize("h q;\nx r;")
        x_token = [t for t in tokens if t.value == "x"][0]
        assert x_token.line == 2
        assert x_token.column == 1

    def test_column_tracking(self):
        tokens = tokenize("cx q, r;")
        comma = [t for t in tokens if t.value == ","][0]
        assert comma.column == 5


class TestErrors:
    def test_bad_character(self):
        with pytest.raises(QasmError, match="unexpected character"):
            tokenize("h q; @")

    def test_error_carries_position(self):
        with pytest.raises(QasmError, match="line 2"):
            tokenize("h q;\n  #")
