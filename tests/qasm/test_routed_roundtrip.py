"""QASM round-trips of *routed* circuits, across presets and devices.

The serving layer ships routed circuits as QASM text, so the wire
format must be lossless for compiler *outputs*, not just hand-written
inputs: ``parse(emit(routed))`` has to preserve the exact gate list,
the hardware compliance the pipeline verified, and the measurement
directives the routing relabelled onto physical wires.  Every pipeline
preset is exercised on the paper's Tokyo device plus both directed
chips (QX2, QX5); presets whose compliance gate is direction-aware get
direction legalisation composed on for the directed devices, exactly
as a directed-device deployment would run them.
"""

import pytest

from repro.circuits import QuantumCircuit
from repro.hardware import get_device, ibm_q20_tokyo
from repro.hardware.devices import ibm_qx2, ibm_qx5
from repro.hardware.noise import NoiseModel
from repro.pipeline import Pipeline, compose_pipeline, preset_names
from repro.qasm import emit_qasm, parse_qasm
from repro.verify import is_hardware_compliant

DEVICES = {
    "ibm_qx2": ibm_qx2,
    "ibm_qx5": ibm_qx5,
    "ibm_q20_tokyo": ibm_q20_tokyo,
}

#: Presets whose pass list ends in a direction-aware ComplianceCheck;
#: on directed devices they need LegalizeDirections composed on (the
#: directed_device preset already carries it).
DIRECTION_GATED = ("bridge", "baseline_trivial", "baseline_greedy", "baseline_astar")

NOISE = NoiseModel(edge_errors={(0, 1): 0.1, (1, 2): 0.05})


def workload() -> QuantumCircuit:
    """A 4-qubit circuit with entanglement spread plus measurements."""
    circuit = QuantumCircuit(4, name="roundtrip_probe")
    circuit.h(0)
    circuit.cx(0, 3)
    circuit.t(1)
    circuit.cx(1, 2)
    circuit.rz(0.25, 2)
    circuit.cx(0, 2)
    circuit.cx(3, 1)
    circuit.cx(2, 3)
    circuit.barrier(0, 1, 2, 3)
    for q in range(4):
        circuit.measure(q, q)
    return circuit


def run_preset(preset: str, device_name: str):
    device = DEVICES[device_name]()
    directed = not device.is_symmetric
    if directed and preset in DIRECTION_GATED:
        pipeline = compose_pipeline(preset, legalize_directions=True)
    else:
        pipeline = Pipeline(preset)
    kwargs = {"noise": NOISE} if preset == "noise_aware" else {}
    result = pipeline.run(
        workload(), device, seed=0, num_trials=1, **kwargs
    )
    return result, device


@pytest.mark.parametrize("device_name", sorted(DEVICES))
@pytest.mark.parametrize("preset", preset_names())
def test_routed_roundtrip(preset, device_name):
    result, device = run_preset(preset, device_name)
    routed = result.physical_circuit(decompose_swaps=True)

    text = emit_qasm(routed)
    back = parse_qasm(text)

    # Gate list preserved exactly (names, operands, params, clbits).
    assert back.gates == routed.gates
    assert back.num_qubits == routed.num_qubits
    assert back.num_clbits == routed.num_clbits

    # Compliance preserved through the wire format.  Direction matters
    # whenever the pipeline guaranteed it (directed device + a
    # direction-aware compliance gate in the preset).
    check_direction = (not device.is_symmetric) and (
        preset == "directed_device" or preset in DIRECTION_GATED
    )
    assert is_hardware_compliant(routed, device, check_direction)
    assert is_hardware_compliant(back, device, check_direction)

    # Measurement (and barrier) directives survive routing + round-trip.
    input_measures = sum(1 for g in workload() if g.name == "measure")
    routed_measures = [g for g in routed if g.name == "measure"]
    back_measures = [g for g in back if g.name == "measure"]
    assert len(routed_measures) == input_measures
    assert back_measures == routed_measures
    assert sum(1 for g in back if g.name == "barrier") == sum(
        1 for g in routed if g.name == "barrier"
    )


@pytest.mark.parametrize("device_name", sorted(DEVICES))
def test_second_emit_is_stable(device_name):
    """emit(parse(emit(routed))) is byte-identical (emitter fixpoint)."""
    result, _ = run_preset("paper_default", device_name)
    routed = result.physical_circuit(decompose_swaps=True)
    once = emit_qasm(routed)
    assert emit_qasm(parse_qasm(once)) == once
