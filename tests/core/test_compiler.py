"""Unit tests for the compile_circuit front door."""

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.core import Layout, compile_circuit
from repro.exceptions import MappingError
from repro.hardware import CouplingGraph, grid_device
from repro.verify import assert_compliant, assert_equivalent


class TestFrontDoor:
    def test_full_pipeline(self, tokyo, random6):
        result = compile_circuit(random6, tokyo, seed=0, num_trials=2)
        assert result.device_name == "ibm_q20_tokyo"
        assert result.total_gates == result.original_gates + result.added_gates
        assert_compliant(result.physical_circuit(), tokyo)

    def test_disconnected_device_rejected(self):
        from repro.exceptions import HardwareError

        device = CouplingGraph(4, [(0, 1), (2, 3)])
        circ = QuantumCircuit(2)
        with pytest.raises(HardwareError, match="disconnected"):
            compile_circuit(circ, device)

    def test_oversized_circuit_rejected(self, grid3x3):
        with pytest.raises(MappingError, match="needs"):
            compile_circuit(QuantumCircuit(10), grid3x3)

    def test_three_qubit_gates_auto_decomposed(self, grid3x3):
        circ = QuantumCircuit(3)
        circ.ccx(0, 1, 2)
        result = compile_circuit(circ, grid3x3, seed=0, num_trials=2)
        assert result.original_gates == 15  # Fig. 1 decomposition
        assert_compliant(result.physical_circuit(), grid3x3)

    def test_input_swaps_auto_decomposed(self, grid3x3):
        circ = QuantumCircuit(3)
        circ.swap(0, 2)
        result = compile_circuit(circ, grid3x3, seed=0, num_trials=2)
        # no raw swap gates in the working circuit
        assert "swap" not in result.original_circuit.gate_counts()

    def test_fixed_initial_layout_path(self, grid3x3):
        circ = QuantumCircuit(4)
        circ.cx(0, 3)
        result = compile_circuit(
            circ, grid3x3, initial_layout=Layout.trivial(9), seed=0
        )
        assert result.num_trials == 1
        assert result.num_traversals == 1
        assert result.first_pass_swaps is None
        assert result.initial_layout == Layout.trivial(9)

    def test_trial_swaps_recorded(self, grid3x3):
        circ = random_circuit(9, 40, seed=0, two_qubit_fraction=0.6)
        result = compile_circuit(circ, grid3x3, seed=0, num_trials=3)
        assert len(result.trial_swaps) == 3
        assert result.num_swaps <= min(result.trial_swaps)

    def test_runtime_positive(self, grid3x3):
        circ = random_circuit(9, 30, seed=1, two_qubit_fraction=0.5)
        result = compile_circuit(circ, grid3x3, seed=0, num_trials=2)
        assert result.runtime_seconds > 0

    def test_precomputed_distance_accepted(self, tokyo, tokyo_distance):
        circ = random_circuit(6, 30, seed=2, two_qubit_fraction=0.5)
        a = compile_circuit(circ, tokyo, seed=0, num_trials=2)
        b = compile_circuit(
            circ, tokyo, seed=0, num_trials=2, distance=tokyo_distance
        )
        assert a.num_swaps == b.num_swaps

    def test_equivalence_end_to_end(self, grid3x3):
        circ = QuantumCircuit(5)
        circ.h(0)
        circ.ccx(0, 1, 2)
        circ.swap(1, 3)
        circ.cx(3, 4)
        circ.measure(4)
        result = compile_circuit(circ, grid3x3, seed=0, num_trials=2)
        assert_equivalent(
            result.original_circuit,
            result.routing.circuit,
            result.initial_layout,
            result.routing.swap_positions,
        )


class TestMappingResultMetrics:
    def test_as_row_keys(self, grid3x3):
        circ = random_circuit(9, 30, seed=3, two_qubit_fraction=0.5)
        row = compile_circuit(circ, grid3x3, seed=0, num_trials=2).as_row()
        assert {"name", "n", "g_ori", "g_add", "g_tot", "d_out"} <= set(row)

    def test_overhead_ratio(self, grid3x3):
        circ = random_circuit(9, 30, seed=4, two_qubit_fraction=0.8)
        result = compile_circuit(circ, grid3x3, seed=0, num_trials=2)
        assert result.gate_overhead_ratio() == pytest.approx(
            result.added_gates / result.original_gates
        )

    def test_summary_mentions_key_numbers(self, grid3x3):
        circ = random_circuit(9, 30, seed=5, two_qubit_fraction=0.5)
        result = compile_circuit(circ, grid3x3, seed=0, num_trials=2)
        text = result.summary()
        assert str(result.num_swaps) in text
        assert "g_la" in text

    def test_routed_depth_uses_decomposed_swaps(self, grid3x3):
        circ = QuantumCircuit(4)
        circ.cx(0, 3)
        result = compile_circuit(
            circ, grid3x3, initial_layout=Layout.trivial(9), seed=0
        )
        if result.num_swaps:
            assert result.routed_depth >= result.routed_depth_swaps_atomic
