"""Unit tests for the heuristic cost functions (Equations 1 and 2)."""

import pytest

from repro.circuits.gates import Gate
from repro.core.heuristic import (
    DecayTracker,
    HeuristicConfig,
    mapped_distance_sum,
    score_layout,
)
from repro.exceptions import MappingError
from repro.hardware import distance_matrix, line_device


@pytest.fixture(scope="module")
def line_dist():
    return distance_matrix(line_device(5))


class TestHeuristicConfig:
    def test_paper_defaults(self):
        config = HeuristicConfig()
        assert config.mode == "decay"
        assert config.extended_set_size == 20
        assert config.extended_set_weight == 0.5
        assert config.decay_delta == 0.001
        assert config.decay_reset_interval == 5

    def test_invalid_mode(self):
        with pytest.raises(MappingError, match="unknown heuristic mode"):
            HeuristicConfig(mode="quantum")

    def test_weight_bounds(self):
        with pytest.raises(MappingError):
            HeuristicConfig(extended_set_weight=1.0)
        with pytest.raises(MappingError):
            HeuristicConfig(extended_set_weight=-0.1)

    def test_negative_delta_rejected(self):
        with pytest.raises(MappingError):
            HeuristicConfig(decay_delta=-0.1)

    def test_negative_extended_size_rejected(self):
        with pytest.raises(MappingError):
            HeuristicConfig(extended_set_size=-1)

    def test_reset_interval_positive(self):
        with pytest.raises(MappingError):
            HeuristicConfig(decay_reset_interval=0)

    def test_capability_flags(self):
        assert not HeuristicConfig(mode="basic").uses_lookahead
        assert HeuristicConfig(mode="lookahead").uses_lookahead
        assert not HeuristicConfig(mode="lookahead").uses_decay
        assert HeuristicConfig(mode="decay").uses_decay
        assert not HeuristicConfig(
            mode="decay", extended_set_size=0
        ).uses_lookahead


class TestDecayTracker:
    def test_initial_values_one(self):
        tracker = DecayTracker(4, delta=0.01, reset_interval=5)
        assert tracker.values == [1.0] * 4
        assert tracker.factor(0, 1) == 1.0

    def test_record_swap_bumps_both(self):
        tracker = DecayTracker(4, delta=0.01, reset_interval=5)
        tracker.record_swap(0, 2)
        assert tracker.values[0] == pytest.approx(1.01)
        assert tracker.values[2] == pytest.approx(1.01)
        assert tracker.values[1] == 1.0

    def test_factor_takes_max(self):
        tracker = DecayTracker(3, delta=0.5, reset_interval=10)
        tracker.record_swap(0, 1)
        tracker.record_swap(0, 2)
        assert tracker.factor(0, 1) == pytest.approx(2.0)  # q0 bumped twice

    def test_auto_reset_on_interval(self):
        """'reset every 5 search steps' (§V)."""
        tracker = DecayTracker(2, delta=0.1, reset_interval=5)
        for _ in range(5):
            tracker.record_swap(0, 1)
        assert tracker.values == [1.0, 1.0]

    def test_manual_reset(self):
        tracker = DecayTracker(2, delta=0.1, reset_interval=100)
        tracker.record_swap(0, 1)
        tracker.reset()
        assert tracker.values == [1.0, 1.0]


class TestScoreLayout:
    def _front(self):
        return [Gate("cx", (0, 3)), Gate("cx", (1, 2))]

    def test_mapped_distance_sum(self, line_dist):
        l2p = [0, 1, 2, 3, 4]
        assert mapped_distance_sum(self._front(), l2p, line_dist) == 3 + 1

    def test_basic_mode_is_equation1(self, line_dist):
        """Equation 1: raw sum over F, no normalisation."""
        config = HeuristicConfig(mode="basic")
        score = score_layout(self._front(), [], [0, 1, 2, 3, 4], line_dist, config)
        assert score == 4.0

    def test_lookahead_mode_normalises(self, line_dist):
        config = HeuristicConfig(mode="lookahead", extended_set_weight=0.5)
        extended = [Gate("cx", (0, 4))]
        score = score_layout(
            self._front(), extended, [0, 1, 2, 3, 4], line_dist, config
        )
        # front term: (3+1)/2 = 2 ; extended term: 0.5 * 4/1 = 2
        assert score == pytest.approx(4.0)

    def test_lookahead_without_extended_gates(self, line_dist):
        config = HeuristicConfig(mode="lookahead")
        score = score_layout(self._front(), [], [0, 1, 2, 3, 4], line_dist, config)
        assert score == pytest.approx(2.0)

    def test_weight_zero_ignores_extended(self, line_dist):
        config = HeuristicConfig(mode="lookahead", extended_set_weight=0.0)
        extended = [Gate("cx", (0, 4))]
        with_e = score_layout(
            self._front(), extended, [0, 1, 2, 3, 4], line_dist, config
        )
        without = score_layout(
            self._front(), [], [0, 1, 2, 3, 4], line_dist, config
        )
        assert with_e == without

    def test_better_layout_scores_lower(self, line_dist):
        config = HeuristicConfig(mode="lookahead")
        far = score_layout(
            [Gate("cx", (0, 1))], [], [0, 4, 1, 2, 3], line_dist, config
        )
        near = score_layout(
            [Gate("cx", (0, 1))], [], [0, 1, 2, 3, 4], line_dist, config
        )
        assert near < far
