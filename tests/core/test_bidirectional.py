"""Unit tests for the reverse-traversal layout search (paper §IV-C2)."""

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.core import SabreLayout
from repro.exceptions import MappingError
from repro.hardware import grid_device
from repro.verify import assert_compliant, assert_equivalent


class TestConfiguration:
    def test_even_traversals_rejected(self, grid3x3):
        with pytest.raises(MappingError, match="odd"):
            SabreLayout(grid3x3, num_traversals=2)

    def test_zero_trials_rejected(self, grid3x3):
        with pytest.raises(MappingError, match="num_trials"):
            SabreLayout(grid3x3, num_trials=0)

    def test_single_traversal_allowed(self, grid3x3):
        circ = random_circuit(9, 30, seed=0, two_qubit_fraction=0.5)
        result = SabreLayout(grid3x3, num_traversals=1, num_trials=2).run(circ)
        assert result.num_swaps >= 0


class TestSearchBehaviour:
    def test_trials_recorded(self, grid3x3):
        circ = random_circuit(9, 40, seed=1, two_qubit_fraction=0.6)
        search = SabreLayout(grid3x3, num_trials=4, seed=0)
        result = search.run(circ)
        assert len(result.trials) == 4
        assert all(t.final_swaps >= 0 for t in result.trials)

    def test_best_trial_selected(self, grid3x3):
        """The kept routing is at least as good as every trial's final
        pass (it may beat them: any forward pass is a candidate)."""
        circ = random_circuit(9, 40, seed=1, two_qubit_fraction=0.6)
        result = SabreLayout(grid3x3, num_trials=4, seed=0).run(circ)
        best_final = min(t.final_swaps for t in result.trials)
        assert result.num_swaps <= best_final

    def test_never_worse_than_first_pass(self, grid3x3):
        """g_op <= g_la by construction (Table II monotonicity)."""
        for seed in range(4):
            circ = random_circuit(9, 50, seed=seed, two_qubit_fraction=0.7)
            result = SabreLayout(grid3x3, num_trials=3, seed=0).run(circ)
            assert result.num_swaps <= result.best_first_pass_swaps

    def test_first_pass_metric_exposed(self, grid3x3):
        circ = random_circuit(9, 40, seed=2, two_qubit_fraction=0.6)
        result = SabreLayout(grid3x3, num_trials=3, seed=0).run(circ)
        assert result.best_first_pass_swaps == min(
            t.first_pass_swaps for t in result.trials
        )

    def test_reverse_traversal_improves_on_average(self, grid3x3):
        """The headline §IV-C2 claim: the updated initial mapping beats
        the random one that the first traversal used."""
        improved = regressed = 0
        for seed in range(6):
            circ = random_circuit(9, 60, seed=seed, two_qubit_fraction=0.7)
            result = SabreLayout(grid3x3, num_trials=3, seed=0).run(circ)
            for trial in result.trials:
                if trial.final_swaps < trial.first_pass_swaps:
                    improved += 1
                elif trial.final_swaps > trial.first_pass_swaps:
                    regressed += 1
        assert improved > regressed

    def test_output_verified(self, grid3x3):
        circ = random_circuit(9, 50, seed=3, two_qubit_fraction=0.6)
        result = SabreLayout(grid3x3, num_trials=3, seed=0).run(circ)
        assert_compliant(result.routing.physical_circuit(), grid3x3)
        assert_equivalent(
            circ,
            result.routing.circuit,
            result.initial_layout,
            result.routing.swap_positions,
        )

    def test_deterministic(self, grid3x3):
        circ = random_circuit(9, 40, seed=4, two_qubit_fraction=0.6)
        a = SabreLayout(grid3x3, num_trials=3, seed=7).run(circ)
        b = SabreLayout(grid3x3, num_trials=3, seed=7).run(circ)
        assert a.routing.circuit == b.routing.circuit

    def test_initial_layout_is_last_forward_start(self, grid3x3):
        """The reported initial layout must be the one the emitted
        (final forward) traversal actually started from."""
        circ = random_circuit(9, 30, seed=5, two_qubit_fraction=0.5)
        result = SabreLayout(grid3x3, num_trials=2, seed=0).run(circ)
        assert result.initial_layout == result.routing.initial_layout

    def test_perfect_mapping_found_for_embeddable_circuit(self, grid3x3):
        """A circuit whose interaction graph is a grid path embeds
        perfectly; the search should find a 0-SWAP mapping."""
        circ = QuantumCircuit(6)
        for _ in range(3):
            for a, b in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]:
                circ.cx(a, b)
        result = SabreLayout(grid3x3, num_trials=5, seed=0).run(circ)
        assert result.num_swaps == 0
