"""Unit tests for Layout (the mapping pi, paper Table I)."""

import pytest

from repro.core import Layout
from repro.exceptions import MappingError


class TestConstruction:
    def test_trivial(self):
        layout = Layout.trivial(4)
        assert layout.l2p == [0, 1, 2, 3]
        assert layout.p2l == [0, 1, 2, 3]

    def test_explicit_permutation(self):
        layout = Layout([2, 0, 1])
        assert layout.physical(0) == 2
        assert layout.logical(2) == 0

    def test_non_permutation_rejected(self):
        with pytest.raises(MappingError):
            Layout([0, 0, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(MappingError):
            Layout([0, 1, 5])

    def test_random_is_permutation(self):
        layout = Layout.random(10, seed=3)
        assert sorted(layout.l2p) == list(range(10))

    def test_random_deterministic(self):
        assert Layout.random(8, seed=1) == Layout.random(8, seed=1)

    def test_random_seeds_differ(self):
        assert Layout.random(8, seed=1) != Layout.random(8, seed=2)

    def test_from_dict_partial(self):
        layout = Layout.from_dict({0: 3, 1: 1}, 4)
        assert layout.physical(0) == 3
        assert layout.physical(1) == 1
        # padding fills remaining physical slots in order
        assert sorted(layout.l2p) == [0, 1, 2, 3]

    def test_from_dict_conflict_rejected(self):
        with pytest.raises(MappingError):
            Layout.from_dict({0: 1, 1: 1}, 3)

    def test_from_dict_range_checked(self):
        with pytest.raises(MappingError):
            Layout.from_dict({0: 9}, 3)
        with pytest.raises(MappingError):
            Layout.from_dict({7: 0}, 3)


class TestMappingAccess:
    def test_inverse_consistency(self):
        layout = Layout([3, 1, 0, 2])
        for q in range(4):
            assert layout.logical(layout.physical(q)) == q
        for p in range(4):
            assert layout.physical(layout.logical(p)) == p

    def test_to_dict_full(self):
        layout = Layout([1, 0])
        assert layout.to_dict() == {0: 1, 1: 0}

    def test_to_dict_truncated(self):
        layout = Layout([2, 0, 1])
        assert layout.to_dict(num_logical=1) == {0: 2}


class TestSwaps:
    def test_swap_logical_paper_fig3(self):
        """Fig. 3d: after SWAP q1,q2 the mapping updates to
        q1->Q2, q2->Q1 (0-indexed here)."""
        layout = Layout.trivial(4)
        layout.swap_logical(0, 1)
        assert layout.physical(0) == 1
        assert layout.physical(1) == 0
        assert layout.physical(2) == 2

    def test_swap_physical(self):
        layout = Layout.trivial(4)
        layout.swap_physical(2, 3)
        assert layout.logical(2) == 3
        assert layout.logical(3) == 2

    def test_swap_is_involution(self):
        layout = Layout.random(6, seed=0)
        reference = layout.copy()
        layout.swap_logical(1, 4)
        layout.swap_logical(1, 4)
        assert layout == reference

    def test_compose_swaps_pure(self):
        layout = Layout.trivial(4)
        composed = layout.compose_swaps([(0, 1), (1, 2)])
        assert layout == Layout.trivial(4)  # original untouched
        assert composed.physical(0) == 1
        assert composed.physical(1) == 2
        assert composed.physical(2) == 0

    def test_swaps_keep_bijection(self):
        import random

        layout = Layout.random(10, seed=4)
        rng = random.Random(0)
        for _ in range(100):
            a, b = rng.sample(range(10), 2)
            layout.swap_logical(a, b)
            assert sorted(layout.l2p) == list(range(10))
            assert all(layout.p2l[layout.l2p[q]] == q for q in range(10))


class TestEquality:
    def test_copy_independent(self):
        layout = Layout.trivial(3)
        clone = layout.copy()
        clone.swap_logical(0, 1)
        assert layout != clone

    def test_hashable(self):
        seen = {Layout.trivial(3), Layout([1, 0, 2])}
        assert Layout.trivial(3) in seen

    def test_repr(self):
        assert "Layout" in repr(Layout.trivial(2))
