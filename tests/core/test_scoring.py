"""Unit tests for the flat-array delta-scoring state (repro.core.scoring)."""

import pickle
import random

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.dag import CircuitDag, DagFrontier
from repro.core import FlatDistance, HeuristicConfig, Layout, RouterState, SabreRouter
from repro.core.heuristic import score_layout
from repro.exceptions import MappingError
from repro.hardware import distance_matrix, grid_device, line_device


class TestFlatDistance:
    def test_roundtrip(self, tokyo, tokyo_distance):
        flat = FlatDistance.from_matrix(tokyo_distance)
        assert flat.n == tokyo.num_qubits
        assert flat.to_matrix() == [list(row) for row in tokyo_distance]

    def test_buffer_layout(self, tokyo_distance):
        flat = FlatDistance.from_matrix(tokyo_distance)
        n = flat.n
        for a in (0, 7, n - 1):
            for b in (0, 3, n - 1):
                assert flat.buf[a * n + b] == tokyo_distance[a][b]

    def test_symmetric_flag(self, tokyo_distance):
        assert FlatDistance.from_matrix(tokyo_distance).symmetric
        asym = [[0.0, 1.0], [2.0, 0.0]]
        assert not FlatDistance.from_matrix(asym).symmetric

    def test_from_matrix_idempotent(self, tokyo_distance):
        flat = FlatDistance.from_matrix(tokyo_distance)
        assert FlatDistance.from_matrix(flat) is flat

    def test_rejects_ragged(self):
        with pytest.raises(MappingError, match="square"):
            FlatDistance.from_matrix([[0.0, 1.0], [1.0]])

    def test_rejects_wrong_buffer_length(self):
        from array import array

        with pytest.raises(MappingError, match="entries"):
            FlatDistance(3, array("d", [0.0] * 8))

    def test_pickle_roundtrip(self, tokyo_distance):
        flat = FlatDistance.from_matrix(tokyo_distance)
        clone = pickle.loads(pickle.dumps(flat))
        assert clone == flat
        assert clone.symmetric == flat.symmetric

    def test_copy_is_independent(self, tokyo_distance):
        flat = FlatDistance.from_matrix(tokyo_distance)
        clone = flat.copy()
        clone.buf[0] = 99.0
        assert flat.buf[0] != 99.0


def _state_for(device, circuit, layout, config):
    """Build a RouterState reflecting ``circuit``'s initial front layer."""
    flat = FlatDistance.from_matrix(distance_matrix(device))
    neighbors = [device.neighbors(q) for q in range(device.num_qubits)]
    state = RouterState(flat, neighbors, config)
    frontier = DagFrontier(CircuitDag(circuit))
    frontier.drain_nonrouting()
    front_gates = [frontier.dag.nodes[i].gate for i in sorted(frontier.front)]
    extended = (
        frontier.extended_set(config.extended_set_size)
        if config.uses_lookahead
        else []
    )
    state.set_front(
        [g.qubits for g in front_gates],
        [g.qubits for g in extended],
        layout.l2p,
    )
    return state, front_gates, extended, frontier


class TestDeltaScoring:
    """swap_score must equal the reference full recomputation exactly
    enough that winner sets never differ (tolerance far below the
    router's 1e-9 tie epsilon)."""

    @pytest.mark.parametrize("mode", ["basic", "lookahead", "decay"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_reference_score(self, mode, seed):
        device = grid_device(4, 4)
        circuit = random_circuit(16, 60, seed=seed, two_qubit_fraction=0.8)
        layout = Layout.random(16, seed=seed + 100)
        config = HeuristicConfig(mode=mode)
        state, front_gates, extended, _ = _state_for(
            device, circuit, layout, config
        )
        dist = distance_matrix(device)
        state.begin_step(layout.l2p)
        for pa, pb in state.candidates():
            qa, qb = layout.logical(pa), layout.logical(pb)
            got = state.swap_score(qa, qb, pa, pb, layout.l2p)
            layout.swap_logical(qa, qb)
            want = score_layout(front_gates, extended, layout.l2p, dist, config)
            layout.swap_logical(qa, qb)
            assert got == pytest.approx(want, abs=1e-12), (pa, pb)

    def test_front_partner_is_scalar(self):
        device = line_device(5)
        circuit = QuantumCircuit(5)
        circuit.cx(0, 4)
        circuit.cx(1, 2)
        layout = Layout.trivial(5)
        state, _, _, _ = _state_for(device, circuit, layout, HeuristicConfig())
        assert state.partner_f[0] == 4
        assert state.partner_f[4] == 0
        assert state.partner_f[1] == 2
        assert state.partner_f[3] == -1

    def test_rejects_overlapping_front(self, tokyo):
        flat = FlatDistance.from_matrix(distance_matrix(tokyo))
        neighbors = [tokyo.neighbors(q) for q in range(tokyo.num_qubits)]
        state = RouterState(flat, neighbors, HeuristicConfig())
        pairs = [(0, 1), (1, 2)]
        with pytest.raises(MappingError, match="vertex-disjoint"):
            state.set_front(pairs, [], Layout.trivial(tokyo.num_qubits).l2p)


class TestIncrementalCandidates:
    """The incrementally maintained candidate set must agree with a
    from-scratch rebuild after every SWAP the router could apply."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_agrees_with_rebuild_under_random_swaps(self, seed):
        device = grid_device(4, 4)
        circuit = random_circuit(16, 50, seed=seed, two_qubit_fraction=0.9)
        layout = Layout.random(16, seed=seed)
        config = HeuristicConfig()
        state, _, _, _ = _state_for(device, circuit, layout, config)
        rng = random.Random(seed)
        for _ in range(60):
            # Apply a random candidate SWAP, exactly like the router.
            pa, pb = rng.choice(state.candidates())
            qa, qb = layout.logical(pa), layout.logical(pb)
            layout.swap_logical(qa, qb)
            state.on_swap_applied(qa, qb, pa, pb)
            # Scratch rebuild on a throwaway state must agree.
            fresh_cands = set()
            for q in state.front_qubits:
                p = layout.physical(q)
                for nb in device.neighbors(p):
                    fresh_cands.add((p, nb) if p < nb else (nb, p))
            assert state.cand_set == fresh_cands
            assert state.cand_list == sorted(fresh_cands)

    def test_matches_router_swap_candidates(self, grid3x3):
        from repro.circuits.flatdag import FlatDag, FrontierState

        circuit = QuantumCircuit(9)
        circuit.cx(0, 8)
        router = SabreRouter(grid3x3, seed=0)
        frontier = FrontierState(FlatDag.from_circuit(circuit))
        frontier.drain_nonrouting()
        layout = Layout.trivial(9)
        state, _, _, _ = _state_for(
            grid3x3, circuit, layout, HeuristicConfig()
        )
        assert state.candidates() == router._swap_candidates(frontier, layout)
