"""Unit tests for SabreRouter (Algorithm 1)."""

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.flatdag import FlatDag, FrontierState
from repro.core import HeuristicConfig, Layout, SabreRouter
from repro.exceptions import MappingError
from repro.hardware import grid_device, line_device, ring_device
from repro.verify import (
    assert_compliant,
    assert_equivalent,
    routed_statevector_equivalent,
)


class TestRunBasics:
    def test_already_compliant_circuit_needs_no_swaps(self, line5):
        circ = QuantumCircuit(5)
        for q in range(4):
            circ.cx(q, q + 1)
        result = SabreRouter(line5, seed=0).run(circ)
        assert result.num_swaps == 0
        assert result.circuit.num_two_qubit_gates() == 4

    def test_distant_gate_requires_swaps(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        result = SabreRouter(line5, seed=0).run(circ)
        assert result.num_swaps == 3  # distance 4 -> 3 swaps

    def test_output_is_compliant(self, line5, random6):
        # 6-qubit circuit cannot fit line5
        circ = random_circuit(5, 40, seed=2, two_qubit_fraction=0.8)
        result = SabreRouter(line5, seed=0).run(circ)
        assert_compliant(result.physical_circuit(), line5)

    def test_output_is_equivalent(self, line5):
        circ = random_circuit(5, 40, seed=2, two_qubit_fraction=0.8)
        result = SabreRouter(line5, seed=0).run(circ)
        assert_equivalent(
            circ, result.circuit, result.initial_layout, result.swap_positions
        )

    def test_statevector_equivalence(self, ring4):
        circ = random_circuit(4, 25, seed=5, two_qubit_fraction=0.7)
        result = SabreRouter(ring4, seed=0).run(circ)
        assert routed_statevector_equivalent(
            circ, result.circuit, result.initial_layout, result.final_layout
        )

    def test_too_many_qubits_rejected(self, line5):
        with pytest.raises(MappingError, match="physical qubits"):
            SabreRouter(line5).run(QuantumCircuit(6))

    def test_three_qubit_gate_rejected(self, line5):
        circ = QuantumCircuit(3)
        circ.ccx(0, 1, 2)
        with pytest.raises(MappingError, match="decompose"):
            SabreRouter(line5).run(circ)

    def test_wrong_layout_size_rejected(self, line5):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        with pytest.raises(MappingError, match="layout covers"):
            SabreRouter(line5).run(circ, initial_layout=Layout.trivial(3))

    def test_deterministic_given_seed(self, grid3x3):
        circ = random_circuit(9, 60, seed=8, two_qubit_fraction=0.6)
        a = SabreRouter(grid3x3, seed=42).run(circ)
        b = SabreRouter(grid3x3, seed=42).run(circ)
        assert a.circuit == b.circuit
        assert a.num_swaps == b.num_swaps

    def test_empty_circuit(self, line5):
        result = SabreRouter(line5, seed=0).run(QuantumCircuit(3))
        assert result.num_swaps == 0
        assert result.circuit.num_gates == 0

    def test_one_qubit_gates_pass_through(self, line5):
        circ = QuantumCircuit(3)
        circ.h(0)
        circ.t(1)
        circ.measure(2)
        result = SabreRouter(line5, seed=0).run(circ)
        assert result.num_swaps == 0
        assert result.circuit.num_gates == 3

    def test_directives_preserved_in_order(self, line5):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.barrier(0, 1, 2)
        circ.measure(0)
        result = SabreRouter(line5, seed=0).run(circ)
        names = [g.name for g in result.circuit]
        assert names.index("barrier") < names.index("measure")


class TestSwapBookkeeping:
    def test_swap_positions_point_at_swaps(self, line5):
        circ = random_circuit(5, 30, seed=1, two_qubit_fraction=0.9)
        result = SabreRouter(line5, seed=0).run(circ)
        for pos in result.swap_positions:
            assert result.circuit[pos].name == "swap"
        swap_count = sum(1 for g in result.circuit if g.name == "swap")
        assert swap_count == result.num_swaps

    def test_added_gates_metric(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        result = SabreRouter(line5, seed=0).run(circ)
        assert result.added_gates == 3 * result.num_swaps

    def test_physical_circuit_decomposes_swaps(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        result = SabreRouter(line5, seed=0).run(circ)
        physical = result.physical_circuit(decompose_swaps=True)
        assert "swap" not in physical.gate_counts()
        assert physical.count_gates() == 1 + result.added_gates

    def test_final_layout_tracks_swaps(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        result = SabreRouter(line5, seed=0).run(circ)
        layout = result.initial_layout.copy()
        for pos in result.swap_positions:
            layout.swap_physical(*result.circuit[pos].qubits)
        assert layout == result.final_layout


class TestSwapCandidates:
    def test_paper_figure6_restriction(self, grid3x3):
        """Only edges touching front-layer qubit homes are candidates."""
        circ = QuantumCircuit(9)
        circ.cx(0, 8)  # corners of the grid
        router = SabreRouter(grid3x3, seed=0)
        frontier = FrontierState(FlatDag.from_circuit(circ))
        frontier.drain_nonrouting()
        candidates = router._swap_candidates(frontier, Layout.trivial(9))
        # edges incident to 0 or 8 only
        assert set(candidates) == {(0, 1), (0, 3), (5, 8), (7, 8)}

    def test_candidates_grow_with_front_layer(self, grid3x3):
        circ = QuantumCircuit(9)
        circ.cx(0, 8)
        circ.cx(2, 6)
        router = SabreRouter(grid3x3, seed=0)
        frontier = FrontierState(FlatDag.from_circuit(circ))
        frontier.drain_nonrouting()
        candidates = router._swap_candidates(frontier, Layout.trivial(9))
        assert len(candidates) == 8


class TestHeuristicModes:
    @pytest.mark.parametrize("mode", ["basic", "lookahead", "decay"])
    def test_all_modes_produce_valid_routing(self, grid3x3, mode):
        circ = random_circuit(9, 50, seed=3, two_qubit_fraction=0.7)
        config = HeuristicConfig(mode=mode)
        result = SabreRouter(grid3x3, config=config, seed=0).run(circ)
        assert_compliant(result.physical_circuit(), grid3x3)
        assert_equivalent(
            circ, result.circuit, result.initial_layout, result.swap_positions
        )

    def test_lookahead_no_worse_than_basic_on_average(self, grid3x3):
        """Look-ahead should help on average (paper §IV-D)."""
        total_basic = total_look = 0
        for seed in range(8):
            circ = random_circuit(9, 60, seed=seed, two_qubit_fraction=0.8)
            basic = SabreRouter(
                grid3x3, config=HeuristicConfig(mode="basic"), seed=0
            ).run(circ)
            look = SabreRouter(
                grid3x3, config=HeuristicConfig(mode="lookahead"), seed=0
            ).run(circ)
            total_basic += basic.num_swaps
            total_look += look.num_swaps
        assert total_look <= total_basic

    def test_escape_hatch_terminates_pathological_config(self):
        """Even a heuristic-hostile configuration must terminate."""
        device = ring_device(8)
        circ = random_circuit(8, 60, seed=0, two_qubit_fraction=1.0)
        config = HeuristicConfig(mode="basic")
        router = SabreRouter(device, config=config, seed=0, stall_limit=2)
        result = router.run(circ)
        assert_compliant(result.physical_circuit(), device)
        assert_equivalent(
            circ, result.circuit, result.initial_layout, result.swap_positions
        )


class TestDefaultDistance:
    def test_bfs_default_equals_floyd_warshall(self, grid3x3):
        """With no matrix passed the router computes BFS APSP, which the
        FW/BFS agreement invariant guarantees is the paper's matrix."""
        from repro.hardware.distance import floyd_warshall

        router = SabreRouter(grid3x3, seed=0)
        assert router.dist == floyd_warshall(grid3x3)

    def test_flat_distance_accepted(self, line5):
        from repro.core import FlatDistance
        from repro.hardware.distance import floyd_warshall

        nested = floyd_warshall(line5)
        flat = FlatDistance.from_matrix(nested)
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        a = SabreRouter(line5, seed=0, distance=flat).run(circ)
        b = SabreRouter(line5, seed=0, distance=nested).run(circ)
        assert a.circuit == b.circuit
        assert SabreRouter(line5, distance=flat).dist == nested

    def test_wrong_size_matrix_rejected(self, line5):
        with pytest.raises(MappingError, match="device has"):
            SabreRouter(line5, distance=[[0.0, 1.0], [1.0, 0.0]])


class TestPhysicalCircuitMemo:
    def test_memoized_and_correct(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        result = SabreRouter(line5, seed=0).run(circ)
        first = result.physical_circuit()
        assert first is result.physical_circuit()  # memoised
        assert "swap" not in first.gate_counts()
        assert first.count_gates() == 1 + result.added_gates

    def test_memo_excluded_from_pickle(self, line5):
        """Pool workers ship results back through pickle; the memo must
        not double the payload."""
        import pickle

        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        result = SabreRouter(line5, seed=0).run(circ)
        decomposed = result.physical_circuit()
        clone = pickle.loads(pickle.dumps(result))
        assert clone._decomposed is None
        assert clone.physical_circuit() == decomposed

    def test_undecomposed_form_not_cached(self, line5):
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        result = SabreRouter(line5, seed=0).run(circ)
        assert result.physical_circuit(decompose_swaps=False) is result.circuit
        # Asking for the raw form must not poison the decomposed cache.
        assert "swap" not in result.physical_circuit().gate_counts()


class TestInitialLayouts:
    def test_initial_layout_respected(self, line5):
        circ = QuantumCircuit(2)
        circ.cx(0, 1)
        layout = Layout([4, 0, 1, 2, 3])  # q0 on far end
        result = SabreRouter(line5, seed=0).run(circ, initial_layout=layout)
        assert result.initial_layout == layout
        assert result.num_swaps == 3

    def test_good_layout_beats_bad_layout(self, line5):
        circ = QuantumCircuit(2)
        for _ in range(5):
            circ.cx(0, 1)
        good = SabreRouter(line5, seed=0).run(
            circ, initial_layout=Layout.trivial(5)
        )
        bad = SabreRouter(line5, seed=0).run(
            circ, initial_layout=Layout([0, 4, 1, 2, 3])
        )
        assert good.num_swaps < bad.num_swaps
