"""Differential suite: fast delta scorer vs reference scorer.

The fast path (flat-array delta scoring, incremental candidate cache)
must be *observationally identical* to the paper-literal reference
path: same per-step winner sets, same tie-break draws, and therefore
bit-for-bit identical routed circuits for identical seeds — across all
heuristic modes, the noise-aware penalty path, and the livelock escape
hatch.
"""

import pytest

from repro.circuits import random_circuit
from repro.core import (
    HeuristicConfig,
    Layout,
    SabreLayout,
    SabreRouter,
    compile_circuit,
)
from repro.core.heuristic import SCORER_ENV_VAR, resolve_scorer
from repro.exceptions import MappingError
from repro.extensions.noise_aware import noise_weighted_distance
from repro.hardware import (
    NoiseModel,
    grid_device,
    line_device,
    ring_device,
)

MODES = ["basic", "lookahead", "decay"]


def _run_both(device, circuit, mode="decay", seed=0, layout_seed=1, **cfg):
    layout = Layout.random(device.num_qubits, seed=layout_seed)
    results = {}
    for scorer in ("fast", "reference"):
        router = SabreRouter(
            device,
            config=HeuristicConfig(mode=mode, scorer=scorer, **cfg),
            seed=seed,
        )
        results[scorer] = router.run(circuit, initial_layout=layout)
    return results["fast"], results["reference"]


def _assert_identical(fast, reference):
    assert fast.circuit == reference.circuit
    assert fast.swap_positions == reference.swap_positions
    assert fast.initial_layout == reference.initial_layout
    assert fast.final_layout == reference.final_layout
    assert fast.num_forced_escapes == reference.num_forced_escapes


class TestIdenticalRouting:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_all_modes_tokyo(self, tokyo, mode, seed):
        circuit = random_circuit(20, 150, seed=seed, two_qubit_fraction=0.8)
        _assert_identical(*_run_both(tokyo, circuit, mode=mode, seed=seed))

    @pytest.mark.parametrize("mode", MODES)
    def test_all_modes_grid(self, mode):
        device = grid_device(5, 5)
        circuit = random_circuit(25, 200, seed=3, two_qubit_fraction=0.7)
        _assert_identical(*_run_both(device, circuit, mode=mode))

    @pytest.mark.parametrize("device_builder", [
        lambda: line_device(8),
        lambda: ring_device(8),
        lambda: grid_device(3, 4),
    ])
    def test_small_topologies(self, device_builder):
        device = device_builder()
        circuit = random_circuit(
            device.num_qubits, 120, seed=5, two_qubit_fraction=0.9
        )
        _assert_identical(*_run_both(device, circuit))

    def test_noise_aware_penalty_path(self, tokyo):
        """Weighted (non-integer) distance matrix + swap_cost_penalty."""
        noise = NoiseModel(edge_errors={(0, 1): 0.2, (5, 6): 0.1, (11, 12): 0.15})
        distance = noise_weighted_distance(tokyo, noise)
        circuit = random_circuit(20, 150, seed=11, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=2)
        results = {}
        for scorer in ("fast", "reference"):
            router = SabreRouter(
                tokyo,
                config=HeuristicConfig(scorer=scorer, swap_cost_penalty=1.0),
                seed=4,
                distance=distance,
            )
            results[scorer] = router.run(circuit, initial_layout=layout)
        _assert_identical(results["fast"], results["reference"])

    def test_escape_hatch_path(self):
        """Pathological stall_limit forces the escape hatch in both."""
        device = ring_device(8)
        circuit = random_circuit(8, 80, seed=0, two_qubit_fraction=1.0)
        layout = Layout.random(8, seed=6)
        results = {}
        for scorer in ("fast", "reference"):
            router = SabreRouter(
                device,
                config=HeuristicConfig(mode="basic", scorer=scorer),
                seed=0,
                stall_limit=2,
            )
            results[scorer] = router.run(circuit, initial_layout=layout)
        assert results["fast"].num_forced_escapes > 0
        _assert_identical(results["fast"], results["reference"])

    def test_bidirectional_search_identical(self, tokyo):
        circuit = random_circuit(16, 100, seed=9, two_qubit_fraction=0.7)
        outputs = {}
        for scorer in ("fast", "reference"):
            searcher = SabreLayout(
                tokyo, config=HeuristicConfig(scorer=scorer), seed=0
            )
            outputs[scorer] = searcher.run(circuit)
        assert outputs["fast"].routing.circuit == outputs["reference"].routing.circuit
        assert outputs["fast"].initial_layout == outputs["reference"].initial_layout

    def test_compile_circuit_identical(self, tokyo):
        circuit = random_circuit(12, 80, seed=21, two_qubit_fraction=0.7)
        results = {
            scorer: compile_circuit(
                circuit,
                tokyo,
                config=HeuristicConfig(scorer=scorer),
                seed=0,
                num_trials=2,
            )
            for scorer in ("fast", "reference")
        }
        assert (
            results["fast"].routing.circuit == results["reference"].routing.circuit
        )
        assert results["fast"].num_swaps == results["reference"].num_swaps


class TestWinnerSets:
    @pytest.mark.parametrize("mode", MODES)
    def test_per_step_winner_sets_identical(self, tokyo, mode):
        """Stronger than end-to-end equality: the full pre-tie-break
        best-candidate set of every search step must match."""
        circuit = random_circuit(20, 120, seed=17, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=3)
        traces = {}
        for scorer in ("fast", "reference"):
            router = SabreRouter(
                tokyo, config=HeuristicConfig(mode=mode, scorer=scorer), seed=0
            )
            steps = []
            router.on_winner_set = lambda best, steps=steps: steps.append(
                list(best)
            )
            router.run(circuit, initial_layout=layout)
            traces[scorer] = steps
        assert traces["fast"] == traces["reference"]
        assert len(traces["fast"]) > 0


class TestScorerSelection:
    def test_env_knob_reference(self, monkeypatch, line5):
        monkeypatch.setenv(SCORER_ENV_VAR, "reference")
        router = SabreRouter(line5, config=HeuristicConfig(scorer="auto"))
        assert router.scorer == "reference"

    def test_env_knob_default_fast(self, monkeypatch, line5):
        monkeypatch.delenv(SCORER_ENV_VAR, raising=False)
        router = SabreRouter(line5)
        assert router.scorer == "fast"

    def test_explicit_config_beats_env(self, monkeypatch, line5):
        monkeypatch.setenv(SCORER_ENV_VAR, "reference")
        router = SabreRouter(line5, config=HeuristicConfig(scorer="fast"))
        assert router.scorer == "fast"

    def test_invalid_scorer_rejected(self):
        with pytest.raises(MappingError, match="scorer"):
            HeuristicConfig(scorer="warp")

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SCORER_ENV_VAR, "warp")
        with pytest.raises(MappingError, match="scorer"):
            resolve_scorer("auto")

    def test_asymmetric_matrix_falls_back(self, line5):
        """The delta scorer assumes D symmetric; asymmetric input must
        silently use the reference scorer instead of mis-scoring."""
        asym = [[0.0] * 5 for _ in range(5)]
        for i in range(5):
            for j in range(5):
                if i != j:
                    asym[i][j] = abs(i - j) + (0.25 if i > j else 0.0)
        router = SabreRouter(
            line5, config=HeuristicConfig(scorer="fast"), distance=asym
        )
        assert router.scorer == "reference"
