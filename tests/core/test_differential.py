"""Differential suite: vector / fast scorers vs reference scorer.

Both optimized paths — the scalar fast delta scorer (flat-array delta
scoring, incremental candidate cache) and the batched numpy vector
scorer — must be *observationally identical* to the paper-literal
reference path: same per-step winner sets, same tie-break draws, and
therefore bit-for-bit identical routed circuits for identical seeds —
across all heuristic modes, the noise-aware penalty path, and the
livelock escape hatch.  The trial-major lockstep ensemble executor
must in turn reproduce the serial executor's per-seed results exactly.
"""

import pytest

from repro.circuits import random_circuit
from repro.core import (
    HeuristicConfig,
    Layout,
    SabreLayout,
    SabreRouter,
    compile_circuit,
)
from repro.core.heuristic import SCORER_ENV_VAR, resolve_scorer
from repro.engine import run_trials
from repro.exceptions import MappingError
from repro.extensions.noise_aware import noise_weighted_distance
from repro.hardware import (
    NoiseModel,
    grid_device,
    line_device,
    ring_device,
)

MODES = ["basic", "lookahead", "decay"]

SCORERS = ("vector", "fast", "reference")


def _run_all(device, circuit, mode="decay", seed=0, layout_seed=1, **cfg):
    layout = Layout.random(device.num_qubits, seed=layout_seed)
    results = {}
    for scorer in SCORERS:
        router = SabreRouter(
            device,
            config=HeuristicConfig(mode=mode, scorer=scorer, **cfg),
            seed=seed,
        )
        results[scorer] = router.run(circuit, initial_layout=layout)
    return results


def _assert_identical(results):
    reference = results["reference"]
    for scorer in ("vector", "fast"):
        result = results[scorer]
        assert result.circuit == reference.circuit
        assert result.swap_positions == reference.swap_positions
        assert result.initial_layout == reference.initial_layout
        assert result.final_layout == reference.final_layout
        assert result.num_forced_escapes == reference.num_forced_escapes


class TestIdenticalRouting:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("seed", [0, 7, 13])
    def test_all_modes_tokyo(self, tokyo, mode, seed):
        circuit = random_circuit(20, 150, seed=seed, two_qubit_fraction=0.8)
        _assert_identical(_run_all(tokyo, circuit, mode=mode, seed=seed))

    @pytest.mark.parametrize("mode", MODES)
    def test_all_modes_grid(self, mode):
        device = grid_device(5, 5)
        circuit = random_circuit(25, 200, seed=3, two_qubit_fraction=0.7)
        _assert_identical(_run_all(device, circuit, mode=mode))

    @pytest.mark.parametrize("device_builder", [
        lambda: line_device(8),
        lambda: ring_device(8),
        lambda: grid_device(3, 4),
    ])
    def test_small_topologies(self, device_builder):
        device = device_builder()
        circuit = random_circuit(
            device.num_qubits, 120, seed=5, two_qubit_fraction=0.9
        )
        _assert_identical(_run_all(device, circuit))

    def test_noise_aware_penalty_path(self, tokyo):
        """Weighted (non-integer) distance matrix + swap_cost_penalty."""
        noise = NoiseModel(edge_errors={(0, 1): 0.2, (5, 6): 0.1, (11, 12): 0.15})
        distance = noise_weighted_distance(tokyo, noise)
        circuit = random_circuit(20, 150, seed=11, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=2)
        results = {}
        for scorer in SCORERS:
            router = SabreRouter(
                tokyo,
                config=HeuristicConfig(scorer=scorer, swap_cost_penalty=1.0),
                seed=4,
                distance=distance,
            )
            results[scorer] = router.run(circuit, initial_layout=layout)
        _assert_identical(results)

    def test_escape_hatch_path(self):
        """Pathological stall_limit forces the escape hatch in all."""
        device = ring_device(8)
        circuit = random_circuit(8, 80, seed=0, two_qubit_fraction=1.0)
        layout = Layout.random(8, seed=6)
        results = {}
        for scorer in SCORERS:
            router = SabreRouter(
                device,
                config=HeuristicConfig(mode="basic", scorer=scorer),
                seed=0,
                stall_limit=2,
            )
            results[scorer] = router.run(circuit, initial_layout=layout)
        assert results["reference"].num_forced_escapes > 0
        _assert_identical(results)

    def test_bidirectional_search_identical(self, tokyo):
        circuit = random_circuit(16, 100, seed=9, two_qubit_fraction=0.7)
        outputs = {}
        for scorer in SCORERS:
            searcher = SabreLayout(
                tokyo, config=HeuristicConfig(scorer=scorer), seed=0
            )
            outputs[scorer] = searcher.run(circuit)
        for scorer in ("vector", "fast"):
            assert (
                outputs[scorer].routing.circuit
                == outputs["reference"].routing.circuit
            )
            assert (
                outputs[scorer].initial_layout
                == outputs["reference"].initial_layout
            )

    def test_compile_circuit_identical(self, tokyo):
        circuit = random_circuit(12, 80, seed=21, two_qubit_fraction=0.7)
        results = {
            scorer: compile_circuit(
                circuit,
                tokyo,
                config=HeuristicConfig(scorer=scorer),
                seed=0,
                num_trials=2,
            )
            for scorer in SCORERS
        }
        for scorer in ("vector", "fast"):
            assert (
                results[scorer].routing.circuit
                == results["reference"].routing.circuit
            )
            assert results[scorer].num_swaps == results["reference"].num_swaps


class TestWinnerSets:
    @pytest.mark.parametrize("mode", MODES)
    def test_per_step_winner_sets_identical(self, tokyo, mode):
        """Stronger than end-to-end equality: the full pre-tie-break
        best-candidate set of every search step must match."""
        circuit = random_circuit(20, 120, seed=17, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=3)
        traces = {}
        for scorer in SCORERS:
            router = SabreRouter(
                tokyo, config=HeuristicConfig(mode=mode, scorer=scorer), seed=0
            )
            steps = []
            router.on_winner_set = lambda best, steps=steps: steps.append(
                list(best)
            )
            router.run(circuit, initial_layout=layout)
            traces[scorer] = steps
        assert traces["fast"] == traces["reference"]
        assert traces["vector"] == traces["reference"]
        assert len(traces["reference"]) > 0


class TestEnsembleIdentity:
    """The lockstep ensemble executor vs the serial executor: same
    seeds in, byte-identical per-trial circuits out — including the
    multi-traversal search-mode sweep, whose winning forward traversal
    is replayed from a recorded SWAP trace rather than emitted live."""

    @pytest.mark.parametrize("num_traversals", [1, 3])
    @pytest.mark.parametrize("mode", MODES)
    def test_per_seed_identity(self, mode, num_traversals):
        device = grid_device(4, 4)
        circuit = random_circuit(16, 150, seed=23, two_qubit_fraction=0.8)
        seeds = [5, 6, 7]
        outcomes = {}
        for scorer, executor in (
            ("vector", "ensemble"),
            ("fast", "serial"),
        ):
            outcomes[executor] = run_trials(
                circuit,
                device,
                seeds=seeds,
                config=HeuristicConfig(mode=mode, scorer=scorer),
                num_traversals=num_traversals,
                executor=executor,
            )
        ens, ser = outcomes["ensemble"], outcomes["serial"]
        assert ens.trial_swaps == ser.trial_swaps
        assert ens.winner_index == ser.winner_index
        for a, b in zip(ens.trials, ser.trials):
            assert a.result.routing.circuit == b.result.routing.circuit
            assert a.result.initial_layout == b.result.initial_layout

    @pytest.mark.parametrize("num_traversals", [1, 3])
    @pytest.mark.parametrize("scorer", ["vector", "fast"])
    def test_hybrid_per_seed_identity(self, scorer, num_traversals):
        """The sharded hybrid executor vs serial, across scorers: the
        vector scorer shards run lockstep ensembles, the fast scorer
        (ensemble-ineligible) shards run per-seed serial trials — both
        against ship-once worker state, both byte-identical."""
        device = grid_device(4, 4)
        circuit = random_circuit(16, 120, seed=29, two_qubit_fraction=0.8)
        seeds = [5, 6, 7, 8, 9]
        config = HeuristicConfig(scorer=scorer)
        hyb = run_trials(
            circuit, device, seeds=seeds, config=config,
            num_traversals=num_traversals, executor="hybrid", jobs=2,
        )
        ser = run_trials(
            circuit, device, seeds=seeds, config=config,
            num_traversals=num_traversals, executor="serial",
        )
        assert hyb.executor == "hybrid"
        assert hyb.shard_plan == [[5, 6, 7], [8, 9]]
        assert hyb.trial_swaps == ser.trial_swaps
        assert hyb.winner_index == ser.winner_index
        for a, b in zip(hyb.trials, ser.trials):
            assert a.result.routing.circuit == b.result.routing.circuit
            assert a.result.initial_layout == b.result.initial_layout
            assert a.result.final_layout == b.result.final_layout

    def test_hybrid_replay_handles_directives(self):
        """Multi-traversal directive replay inside hybrid shard workers
        matches the serial path byte for byte (same contract the
        in-process ensemble already satisfies)."""
        from repro.circuits import QuantumCircuit

        device = grid_device(3, 3)
        base = random_circuit(9, 90, seed=31, two_qubit_fraction=0.8)
        circuit = QuantumCircuit(9, "directives")
        for i, gate in enumerate(base.gates):
            circuit.append(gate)
            if i % 20 == 10:
                circuit.barrier()
            if i % 25 == 5:
                circuit.measure(i % 9)
        seeds = [1, 2, 3, 4]
        hyb = run_trials(
            circuit, device, seeds=seeds,
            config=HeuristicConfig(scorer="vector"),
            num_traversals=3, executor="hybrid", jobs=2,
        )
        ser = run_trials(
            circuit, device, seeds=seeds,
            config=HeuristicConfig(scorer="fast"),
            num_traversals=3, executor="serial",
        )
        assert hyb.trial_swaps == ser.trial_swaps
        for a, b in zip(hyb.trials, ser.trials):
            assert a.result.routing.circuit == b.result.routing.circuit

    def test_replay_handles_directives(self):
        """Measure/reset/barrier directives ride through the no-emit
        search mode: SearchTrace's depth counter skips them exactly as
        ``circuit_depth`` does, so the replayed winner still matches
        the serial path byte for byte."""
        from repro.circuits import QuantumCircuit

        device = grid_device(3, 3)
        base = random_circuit(9, 90, seed=31, two_qubit_fraction=0.8)
        circuit = QuantumCircuit(9, "directives")
        for i, gate in enumerate(base.gates):
            circuit.append(gate)
            if i % 20 == 10:
                circuit.barrier()
            if i % 25 == 5:
                circuit.measure(i % 9)
        seeds = [1, 2, 3, 4]
        ens = run_trials(
            circuit,
            device,
            seeds=seeds,
            config=HeuristicConfig(scorer="vector"),
            num_traversals=3,
            executor="ensemble",
        )
        ser = run_trials(
            circuit,
            device,
            seeds=seeds,
            config=HeuristicConfig(scorer="fast"),
            num_traversals=3,
            executor="serial",
        )
        assert ens.trial_swaps == ser.trial_swaps
        for a, b in zip(ens.trials, ser.trials):
            assert a.result.routing.circuit == b.result.routing.circuit


class TestScorerSelection:
    def test_env_knob_reference(self, monkeypatch, line5):
        monkeypatch.setenv(SCORER_ENV_VAR, "reference")
        router = SabreRouter(line5, config=HeuristicConfig(scorer="auto"))
        assert router.scorer == "reference"

    def test_env_knob_default_vector(self, monkeypatch, line5):
        monkeypatch.delenv(SCORER_ENV_VAR, raising=False)
        router = SabreRouter(line5)
        assert router.scorer == "vector"

    def test_env_knob_fast(self, monkeypatch, line5):
        monkeypatch.setenv(SCORER_ENV_VAR, "fast")
        router = SabreRouter(line5, config=HeuristicConfig(scorer="auto"))
        assert router.scorer == "fast"

    def test_explicit_config_beats_env(self, monkeypatch, line5):
        monkeypatch.setenv(SCORER_ENV_VAR, "reference")
        router = SabreRouter(line5, config=HeuristicConfig(scorer="fast"))
        assert router.scorer == "fast"

    def test_invalid_scorer_rejected(self):
        with pytest.raises(MappingError, match="scorer"):
            HeuristicConfig(scorer="warp")

    def test_invalid_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(SCORER_ENV_VAR, "warp")
        with pytest.raises(MappingError, match="scorer"):
            resolve_scorer("auto")

    def test_asymmetric_matrix_falls_back(self, line5):
        """The delta scorer assumes D symmetric; asymmetric input must
        silently use the reference scorer instead of mis-scoring."""
        asym = [[0.0] * 5 for _ in range(5)]
        for i in range(5):
            for j in range(5):
                if i != j:
                    asym[i][j] = abs(i - j) + (0.25 if i > j else 0.0)
        router = SabreRouter(
            line5, config=HeuristicConfig(scorer="fast"), distance=asym
        )
        assert router.scorer == "reference"
