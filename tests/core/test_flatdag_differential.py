"""Differential suite: shared-IR routing vs per-run object-DAG routing.

The compile-once flat IR must be *observationally invisible*: routing
through a shared (cached, frontier-reused) :class:`FlatDag` must
produce byte-identical circuits to the frozen pre-IR code path
(:mod:`repro.core.legacy`), which re-lowers a fresh ``CircuitDag`` on
every run — across all heuristic modes, both scorers, the noise-aware
penalty path, and the livelock escape hatch.  A second axis pins the
reuse story itself: one shared IR + one reset frontier must route
identically to a fresh IR + fresh frontier per run.
"""

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.circuits.flatdag import FlatDag, FrontierState
from repro.core import (
    HeuristicConfig,
    Layout,
    LegacyDagRouter,
    LegacySabreLayout,
    SabreLayout,
    SabreRouter,
)
from repro.exceptions import MappingError
from repro.extensions.noise_aware import noise_weighted_distance
from repro.hardware import NoiseModel, grid_device, line_device, ring_device

MODES = ["basic", "lookahead", "decay"]
SCORERS = ["fast", "reference"]


def _assert_identical(a, b):
    assert a.circuit == b.circuit
    assert a.swap_positions == b.swap_positions
    assert a.initial_layout == b.initial_layout
    assert a.final_layout == b.final_layout
    assert a.num_forced_escapes == b.num_forced_escapes


class TestSharedIrVsFreshDag:
    """New router (shared IR) vs legacy router (fresh CircuitDag/run)."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("scorer", SCORERS)
    def test_all_modes_and_scorers(self, tokyo, mode, scorer):
        circuit = random_circuit(20, 150, seed=5, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=2)
        config = HeuristicConfig(mode=mode, scorer=scorer)
        new = SabreRouter(tokyo, config=config, seed=3).run(
            circuit, initial_layout=layout
        )
        old = LegacyDagRouter(tokyo, config=config, seed=3).run(
            circuit, initial_layout=layout
        )
        _assert_identical(new, old)

    @pytest.mark.parametrize("device_builder", [
        lambda: line_device(8),
        lambda: ring_device(8),
        lambda: grid_device(3, 4),
    ])
    def test_small_topologies(self, device_builder):
        device = device_builder()
        circuit = random_circuit(
            device.num_qubits, 120, seed=5, two_qubit_fraction=0.9
        )
        layout = Layout.random(device.num_qubits, seed=1)
        new = SabreRouter(device, seed=0).run(circuit, initial_layout=layout)
        old = LegacyDagRouter(device, seed=0).run(circuit, initial_layout=layout)
        _assert_identical(new, old)

    def test_noise_aware_penalty_path(self, tokyo):
        noise = NoiseModel(edge_errors={(0, 1): 0.2, (5, 6): 0.1, (11, 12): 0.15})
        distance = noise_weighted_distance(tokyo, noise)
        circuit = random_circuit(20, 150, seed=11, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=2)
        config = HeuristicConfig(swap_cost_penalty=1.0)
        new = SabreRouter(tokyo, config=config, seed=4, distance=distance).run(
            circuit, initial_layout=layout
        )
        old = LegacyDagRouter(
            tokyo, config=config, seed=4, distance=distance
        ).run(circuit, initial_layout=layout)
        _assert_identical(new, old)

    def test_escape_hatch_path(self):
        device = ring_device(8)
        circuit = random_circuit(8, 80, seed=0, two_qubit_fraction=1.0)
        layout = Layout.random(8, seed=6)
        config = HeuristicConfig(mode="basic")
        new = SabreRouter(device, config=config, seed=0, stall_limit=2).run(
            circuit, initial_layout=layout
        )
        old = LegacyDagRouter(device, config=config, seed=0, stall_limit=2).run(
            circuit, initial_layout=layout
        )
        assert new.num_forced_escapes > 0
        _assert_identical(new, old)

    def test_directives_and_1q_gates(self, tokyo):
        circuit = random_circuit(12, 80, seed=8, two_qubit_fraction=0.5)
        circuit.barrier()
        for q in range(12):
            circuit.measure(q)
        layout = Layout.random(20, seed=3)
        new = SabreRouter(tokyo, seed=1).run(circuit, initial_layout=layout)
        old = LegacyDagRouter(tokyo, seed=1).run(circuit, initial_layout=layout)
        _assert_identical(new, old)

    @pytest.mark.parametrize("scorer", SCORERS)
    def test_layout_search_end_to_end(self, tokyo, scorer):
        """The whole bidirectional sweep: shared IRs + reset frontiers
        vs per-traversal re-lowering must pick identical winners."""
        circuit = random_circuit(16, 100, seed=9, two_qubit_fraction=0.7)
        config = HeuristicConfig(scorer=scorer)
        new = SabreLayout(tokyo, config=config, seed=0).run(circuit)
        old = LegacySabreLayout(tokyo, config=config, seed=0).run(circuit)
        assert new.routing.circuit == old.routing.circuit
        assert new.initial_layout == old.initial_layout
        assert new.best_trial_index == old.best_trial_index
        assert [t.final_swaps for t in new.trials] == [
            t.final_swaps for t in old.trials
        ]


class TestFrontierReuse:
    """Shared IR + reset frontier == fresh IR + fresh frontier."""

    def test_route_reset_route_identical(self, tokyo):
        circuit = random_circuit(18, 120, seed=4, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=7)
        router = SabreRouter(tokyo, seed=0)
        ir = FlatDag.from_circuit(circuit)
        frontier = FrontierState(ir)
        first = router.run(ir, initial_layout=layout, frontier=frontier)
        second = router.run(ir, initial_layout=layout, frontier=frontier)
        _assert_identical(first, second)

    def test_shared_vs_fresh_construction(self, tokyo):
        circuit = random_circuit(18, 120, seed=4, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=7)
        router = SabreRouter(tokyo, seed=0)
        ir = FlatDag.from_circuit(circuit)
        frontier = FrontierState(ir)
        # Dirty the frontier, then rely on run()'s reset.
        frontier.drain_nonrouting()
        shared = router.run(ir, initial_layout=layout, frontier=frontier)
        fresh = router.run(
            FlatDag.from_circuit(circuit), initial_layout=layout
        )
        via_circuit = router.run(circuit, initial_layout=layout)
        _assert_identical(shared, fresh)
        _assert_identical(shared, via_circuit)

    def test_interleaved_circuits_one_router(self, tokyo):
        """Frontier reuse must not leak state across different IRs."""
        circ_a = random_circuit(16, 90, seed=1, two_qubit_fraction=0.8)
        circ_b = random_circuit(16, 90, seed=2, two_qubit_fraction=0.8)
        layout = Layout.random(20, seed=0)
        router = SabreRouter(tokyo, seed=5)
        ir_a, ir_b = FlatDag.from_circuit(circ_a), FlatDag.from_circuit(circ_b)
        fr_a, fr_b = FrontierState(ir_a), FrontierState(ir_b)
        solo_a = router.run(ir_a, initial_layout=layout)
        solo_b = router.run(ir_b, initial_layout=layout)
        for _ in range(2):
            _assert_identical(
                router.run(ir_a, initial_layout=layout, frontier=fr_a), solo_a
            )
            _assert_identical(
                router.run(ir_b, initial_layout=layout, frontier=fr_b), solo_b
            )

    def test_mismatched_frontier_rejected(self, tokyo):
        circ_a = random_circuit(8, 30, seed=1)
        circ_b = random_circuit(8, 30, seed=2)
        router = SabreRouter(tokyo, seed=0)
        frontier = FrontierState(FlatDag.from_circuit(circ_a))
        with pytest.raises(MappingError, match="different circuit IR"):
            router.run(FlatDag.from_circuit(circ_b), frontier=frontier)


class TestIrCacheNaming:
    def test_gate_identical_circuits_keep_their_own_names(self, line5):
        """The IR cache must not hand circuit B an IR named after a
        gate-identical circuit A (the routed output is ``<name>_routed``)."""
        from repro.core import compile_circuit
        from repro.engine.cache import clear_cache

        clear_cache()
        try:
            def build(name):
                circ = QuantumCircuit(3, name=name)
                circ.cx(0, 2)
                circ.cx(1, 2)
                return circ

            alpha = compile_circuit(build("alpha"), line5, seed=0, num_trials=1)
            beta = compile_circuit(build("beta"), line5, seed=0, num_trials=1)
            assert alpha.routing.circuit.name == "alpha_routed"
            assert beta.routing.circuit.name == "beta_routed"
        finally:
            clear_cache()


class TestIrValidation:
    def test_unroutable_ir_rejected(self, line5):
        circ = QuantumCircuit(3)
        circ.ccx(0, 1, 2)
        ir = FlatDag.from_circuit(circ)
        assert not ir.routable
        with pytest.raises(MappingError, match="decompose"):
            SabreRouter(line5).run(ir)

    def test_oversized_ir_rejected(self, line5):
        ir = FlatDag.from_circuit(QuantumCircuit(6))
        with pytest.raises(MappingError, match="physical qubits"):
            SabreRouter(line5).run(ir)
