"""Unit tests for the best-of-K trial engine (repro.engine.trials)."""

import pytest

from repro.circuits import random_circuit
from repro.core import HeuristicConfig
from repro.engine import (
    EXECUTORS,
    OBJECTIVES,
    objective_value,
    run_trials,
    select_winner,
)
from repro.engine.trials import TrialResult
from repro.exceptions import ReproError
from repro.hardware import grid_device


@pytest.fixture
def workload():
    """A circuit that certainly needs routing on a 3x3 grid."""
    return random_circuit(9, 50, seed=11, two_qubit_fraction=0.7)


class TestWinnerSelection:
    def _trial(self, seed, value):
        return TrialResult(seed=seed, result=None, value=value)

    def test_lowest_value_wins(self):
        trials = [self._trial(0, 9.0), self._trial(1, 3.0), self._trial(2, 6.0)]
        assert select_winner(trials) == 1

    def test_tie_resolves_to_earliest_seed(self):
        trials = [self._trial(5, 4.0), self._trial(1, 4.0), self._trial(9, 4.0)]
        assert select_winner(trials) == 0

    def test_empty_rejected(self):
        with pytest.raises(ReproError, match="at least one trial"):
            select_winner([])


class TestDeterminism:
    def test_same_seed_list_same_winner(self, grid3x3, workload):
        a = run_trials(workload, grid3x3, seeds=[3, 1, 4, 1 + 4])
        b = run_trials(workload, grid3x3, seeds=[3, 1, 4, 1 + 4])
        assert a.winner_index == b.winner_index
        assert a.winner.seed == b.winner.seed
        assert a.trial_swaps == b.trial_swaps
        assert a.best_result.routing.circuit == b.best_result.routing.circuit

    def test_winner_is_best_by_objective(self, grid3x3, workload):
        outcome = run_trials(workload, grid3x3, seeds=list(range(5)))
        values = [t.value for t in outcome.trials]
        assert outcome.winner.value == min(values)
        # Earliest-seed tie-break: nothing before the winner matches it.
        assert outcome.winner_index == values.index(min(values))

    def test_best_of_k_monotone_in_k(self, grid3x3, workload):
        """Over a fixed seed pool, the best-of-K g_add can only improve
        (or stay flat) as K grows — prefixes of the pool nest."""
        pool = list(range(8))
        outcome = run_trials(workload, grid3x3, seeds=pool)
        values = [t.value for t in outcome.trials]
        best_so_far = []
        for k in range(1, len(pool) + 1):
            best_so_far.append(min(values[:k]))
        assert all(
            later <= earlier
            for earlier, later in zip(best_so_far, best_so_far[1:])
        )
        # And each prefix run agrees with the full run's prefix.
        for k in (1, 3, 8):
            prefix = run_trials(workload, grid3x3, seeds=pool[:k])
            assert [t.value for t in prefix.trials] == values[:k]


class TestExecutors:
    def test_serial_and_process_agree(self, grid3x3, workload):
        seeds = [0, 1, 2, 3]
        serial = run_trials(workload, grid3x3, seeds=seeds, executor="serial")
        pooled = run_trials(
            workload, grid3x3, seeds=seeds, executor="process", jobs=2
        )
        assert serial.winner_index == pooled.winner_index
        assert serial.winner.seed == pooled.winner.seed
        assert serial.trial_swaps == pooled.trial_swaps
        assert (
            serial.best_result.routing.circuit
            == pooled.best_result.routing.circuit
        )
        assert serial.best_result.initial_layout == pooled.best_result.initial_layout

    def test_single_seed_skips_pool(self, grid3x3, workload):
        outcome = run_trials(
            workload, grid3x3, seeds=[7], executor="process", jobs=4
        )
        assert len(outcome.trials) == 1
        assert outcome.winner.seed == 7
        # The downgrade is no longer silent: the outcome records the
        # executor that actually ran, and why.
        assert outcome.requested_executor == "process"
        assert outcome.executor == "serial"
        assert outcome.downgrade_reason is not None


class TestObjectives:
    def test_all_registered_objectives_score(self, grid3x3, workload):
        outcome = run_trials(workload, grid3x3, seeds=[0, 1])
        for name in OBJECTIVES:
            for trial in outcome.trials:
                assert objective_value(trial.result, name) >= 0.0

    def test_g_add_matches_metric(self, grid3x3, workload):
        outcome = run_trials(workload, grid3x3, seeds=[0, 1, 2])
        for trial in outcome.trials:
            assert trial.value == float(trial.result.added_gates)

    def test_depth_objective_ranks_by_depth(self, grid3x3, workload):
        outcome = run_trials(
            workload, grid3x3, seeds=list(range(4)), objective="depth"
        )
        depths = [t.result.routed_depth for t in outcome.trials]
        assert outcome.winner.value == float(min(depths))

    def test_weighted_objective_combines(self, grid3x3, workload):
        outcome = run_trials(
            workload, grid3x3, seeds=[0, 1], objective="weighted"
        )
        for trial in outcome.trials:
            expected = trial.result.added_gates + 0.5 * trial.result.routed_depth
            assert trial.value == pytest.approx(expected)

    def test_config_threads_through(self, grid3x3, workload):
        basic = run_trials(
            workload,
            grid3x3,
            seeds=[0],
            config=HeuristicConfig(mode="basic"),
        )
        assert basic.best_result.num_swaps >= 0


class TestValidation:
    def test_empty_seeds_rejected(self, grid3x3, workload):
        with pytest.raises(ReproError, match="at least one seed"):
            run_trials(workload, grid3x3, seeds=[])

    def test_duplicate_seeds_rejected(self, grid3x3, workload):
        with pytest.raises(ReproError, match="distinct"):
            run_trials(workload, grid3x3, seeds=[1, 1])

    def test_unknown_objective_rejected(self, grid3x3, workload):
        with pytest.raises(ReproError, match="objective"):
            run_trials(workload, grid3x3, seeds=[0], objective="fidelity")

    def test_unknown_executor_rejected(self, grid3x3, workload):
        with pytest.raises(ReproError, match="executor"):
            run_trials(workload, grid3x3, seeds=[0], executor="thread")

    def test_executor_registry(self):
        assert EXECUTORS == (
            "serial", "process", "ensemble", "hybrid", "auto"
        )
