"""Tests for suite-level batch compilation (repro.engine.batch)."""

import pytest

from repro.bench_circuits import suite
from repro.circuits import random_circuit
from repro.core import compile_circuit
from repro.engine import GLOBAL_CACHE, compile_many
from repro.exceptions import ReproError
from repro.hardware import grid_device


@pytest.fixture
def small_suite_circuits():
    """The Table II 'small' category (5 circuits, 4-5 qubits each)."""
    return [spec.build() for spec in suite("small")]


class TestCompileMany:
    def test_reports_in_input_order(self, grid3x3):
        circuits = [
            random_circuit(6, 15, seed=s, two_qubit_fraction=0.5)
            for s in range(3)
        ]
        report = compile_many(circuits, grid3x3, num_trials=2, jobs=1)
        assert [r.name for r in report.reports] == [c.name for c in circuits]
        assert report.device_name == grid3x3.name
        assert report.wall_seconds > 0

    def test_winner_fields_consistent(self, grid3x3):
        circuits = [random_circuit(6, 20, seed=1, two_qubit_fraction=0.6)]
        report = compile_many(circuits, grid3x3, num_trials=3, jobs=1)
        row = report.reports[0]
        assert row.added_gates == 3 * row.num_swaps
        assert row.added_gates == min(3 * s for s in row.trial_swaps)
        assert len(row.trial_swaps) == 3
        assert row.result is not None
        assert row.result.added_gates == row.added_gates

    def test_serial_and_pooled_batches_agree(self, grid3x3):
        circuits = [
            random_circuit(7, 25, seed=s, two_qubit_fraction=0.6)
            for s in range(3)
        ]
        serial = compile_many(circuits, grid3x3, num_trials=3, jobs=1)
        pooled = compile_many(circuits, grid3x3, num_trials=3, jobs=3)
        for a, b in zip(serial.reports, pooled.reports):
            assert a.added_gates == b.added_gates
            assert a.winning_seed == b.winning_seed
            assert a.trial_swaps == b.trial_swaps

    def test_keep_results_flag(self, grid3x3):
        circuits = [random_circuit(5, 10, seed=0, two_qubit_fraction=0.5)]
        slim = compile_many(
            circuits, grid3x3, num_trials=1, jobs=1, keep_results=False
        )
        assert slim.reports[0].result is None

    def test_validation(self, grid3x3):
        circuits = [random_circuit(4, 5, seed=0)]
        with pytest.raises(ReproError, match="num_trials"):
            compile_many(circuits, grid3x3, num_trials=0)
        with pytest.raises(ValueError, match="jobs"):
            compile_many(circuits, grid3x3, jobs=0)
        with pytest.raises(ReproError, match="executor"):
            compile_many(circuits, grid3x3, executor="warp")
        with pytest.raises(ReproError, match="objective"):
            compile_many(circuits, grid3x3, objective="speed")

    def test_total_added_gates(self, grid3x3):
        circuits = [
            random_circuit(6, 15, seed=s, two_qubit_fraction=0.5)
            for s in range(2)
        ]
        report = compile_many(circuits, grid3x3, num_trials=2, jobs=1)
        assert report.total_added_gates == sum(
            r.added_gates for r in report.reports
        )
        assert len(report.summary_lines()) == 1 + len(circuits)


class TestAcceptance:
    """ISSUE acceptance: jobs=4 x trials=8 on the Table-2 small suite."""

    def test_small_suite_beats_single_trial_baseline(
        self, tokyo, small_suite_circuits
    ):
        """Best-of-8 quality dominates the single-trial seed baseline on
        every circuit, and the O(N^3) distance matrix is computed at
        most once per device for the whole batch."""
        GLOBAL_CACHE.clear()
        report = compile_many(
            small_suite_circuits, tokyo, num_trials=8, seed=0, jobs=4
        )
        info = GLOBAL_CACHE.cache_info()
        assert info.misses == 1, (
            "distance matrix must be computed exactly once per device "
            f"per batch run, saw {info.misses} misses"
        )
        for circuit, row in zip(small_suite_circuits, report.reports):
            baseline = compile_circuit(circuit, tokyo, seed=0, num_trials=1)
            assert row.added_gates <= baseline.added_gates, (
                f"{row.name}: best-of-8 g_add {row.added_gates} worse "
                f"than single-trial baseline {baseline.added_gates}"
            )
        # The baselines above hit the cached matrix (no recomputation);
        # each unique circuit additionally lowered its compile-once IR
        # exactly once per direction (forward + reverse) in-parent.
        assert (
            GLOBAL_CACHE.cache_info().misses
            == 1 + 2 * len(small_suite_circuits)
        )
