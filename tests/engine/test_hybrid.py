"""Tests for the hybrid executor's machinery (repro.engine.shared):
shard planning, the automatic executor chooser, the ship-once
shared-state layer, and executor downgrade reporting."""

import warnings

import pytest

from repro.circuits import random_circuit
from repro.core.heuristic import HeuristicConfig
from repro.engine import GLOBAL_CACHE, run_trials
from repro.engine.cache import get_flat_distance_matrix
from repro.engine.shared import (
    ExecutorDecision,
    SweepSpec,
    _install_sweep,
    _run_sweep_shard,
    _WORKER_SWEEPS,
    build_sweep_spec,
    choose_executor,
    plan_shards,
    run_hybrid_sweep,
    sweep_fingerprint,
)
from repro.engine.trials import _DOWNGRADES_WARNED
from repro.exceptions import ReproError
from repro.hardware import grid_device


@pytest.fixture
def device():
    return grid_device(3, 3)


@pytest.fixture
def workload():
    return random_circuit(9, 60, seed=11, two_qubit_fraction=0.7)


class TestPlanShards:
    def test_even_split(self):
        assert plan_shards([0, 1, 2, 3], 2) == [[0, 1], [2, 3]]

    def test_k_not_divisible_by_p(self):
        # The first K % P shards take the extra seed.
        assert plan_shards([0, 1, 2, 3, 4], 2) == [[0, 1, 2], [3, 4]]
        assert plan_shards(list(range(7)), 3) == [[0, 1, 2], [3, 4], [5, 6]]

    def test_k_smaller_than_p(self):
        # Never more shards than seeds.
        assert plan_shards([4, 5], 8) == [[4], [5]]

    def test_p_equals_one(self):
        assert plan_shards([1, 2, 3], 1) == [[1, 2, 3]]

    def test_order_preserved(self):
        seeds = [9, 3, 7, 1, 5]
        shards = plan_shards(seeds, 2)
        assert [s for shard in shards for s in shard] == seeds

    def test_validation(self):
        with pytest.raises(ReproError, match="seed"):
            plan_shards([], 2)
        with pytest.raises(ValueError, match="num_shards"):
            plan_shards([1], 0)


class TestChooseExecutor:
    def test_single_seed_is_serial(self):
        assert choose_executor(1, cores=8).executor == "serial"

    def test_eligible_multicore_is_hybrid(self):
        decision = choose_executor(6, cores=4, eligible=True)
        assert decision.executor == "hybrid"
        assert decision.jobs == 4

    def test_eligible_single_core_is_ensemble(self):
        assert choose_executor(6, cores=1, eligible=True).executor == "ensemble"

    def test_ineligible_multicore_is_process(self):
        assert choose_executor(6, cores=4, eligible=False).executor == "process"

    def test_ineligible_single_core_is_serial(self):
        assert choose_executor(6, cores=1, eligible=False).executor == "serial"

    def test_jobs_overrides_core_sizing(self):
        decision = choose_executor(8, cores=1, eligible=True, jobs=3)
        assert decision.executor == "hybrid"
        assert decision.jobs == 3

    def test_width_capped_by_seed_count(self):
        assert choose_executor(2, cores=16, eligible=True).jobs == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="num_seeds"):
            choose_executor(0)
        with pytest.raises(ValueError, match="jobs"):
            choose_executor(4, jobs=0)

    def test_as_properties_is_json_safe(self):
        import json

        props = choose_executor(4, cores=2).as_properties()
        assert json.loads(json.dumps(props)) == props
        assert props["executor"] == "hybrid"


class TestShipOnce:
    def test_submission_payload_is_fingerprint_and_seeds_only(
        self, device, workload
    ):
        """After the initializer ships the spec, a shard submission
        carries no circuit/coupling/distance payload — the worker entry
        point takes exactly (fingerprint, seeds)."""
        distance = get_flat_distance_matrix(device)
        spec, shm = build_sweep_spec(
            workload, device, None, 3, "paper_default", distance, True
        )
        try:
            _install_sweep(spec)  # simulate the pool initializer
            results = _run_sweep_shard(spec.fingerprint, (0, 1))
            assert len(results) == 2
        finally:
            _WORKER_SWEEPS.pop(spec.fingerprint, None)
            if shm is not None:
                shm.close()
                shm.unlink()
        serial = run_trials(workload, device, [0, 1], executor="serial")
        for result, trial in zip(results, serial.trials):
            assert result.routing.circuit == trial.result.routing.circuit

    def test_unknown_fingerprint_rejected(self):
        with pytest.raises(ReproError, match="no sweep"):
            _run_sweep_shard("deadbeef" * 8, (0,))

    def test_install_is_idempotent(self, device, workload):
        distance = get_flat_distance_matrix(device)
        spec, shm = build_sweep_spec(
            workload, device, None, 3, "paper_default", distance, True,
            use_shared_memory=False,
        )
        assert shm is None  # bytes fallback requested
        try:
            _install_sweep(spec)
            first = _WORKER_SWEEPS[spec.fingerprint]
            _install_sweep(spec)
            assert _WORKER_SWEEPS[spec.fingerprint] is first
        finally:
            _WORKER_SWEEPS.pop(spec.fingerprint, None)

    def test_bytes_fallback_matches_shared_memory(self, device, workload):
        """Hosts without usable shared memory ship the distance as
        bytes; the sweep's results must not depend on the transport."""
        shards = [[0, 1], [2]]
        distance = get_flat_distance_matrix(device)
        via_shm = run_hybrid_sweep(
            workload, device, shards, distance=distance
        )
        spec, shm = build_sweep_spec(
            workload, device, None, 3, "paper_default", distance, True,
            use_shared_memory=False,
        )
        try:
            _install_sweep(spec)
            via_bytes = [
                r
                for shard in shards
                for r in _run_sweep_shard(spec.fingerprint, tuple(shard))
            ]
        finally:
            _WORKER_SWEEPS.pop(spec.fingerprint, None)
        for a, b in zip(via_shm, via_bytes):
            assert a.routing.circuit == b.routing.circuit

    def test_fingerprint_distinguishes_knobs(self, device, workload):
        distance = get_flat_distance_matrix(device)
        base = sweep_fingerprint(
            workload, device, None, 3, "paper_default", distance
        )
        assert base != sweep_fingerprint(
            workload, device, None, 1, "paper_default", distance
        )
        assert base != sweep_fingerprint(
            workload, device, HeuristicConfig(mode="basic"), 3,
            "paper_default", distance,
        )
        assert base == sweep_fingerprint(
            workload, device, None, 3, "paper_default", distance
        )

    def test_worker_cache_preseeded(self, device, workload):
        """The initializer seeds the worker's engine cache with the
        shipped distance, so in-worker resolution hits, never
        recomputes."""
        distance = get_flat_distance_matrix(device)
        fresh_device = grid_device(3, 3)
        spec, shm = build_sweep_spec(
            workload, fresh_device, None, 3, "paper_default", distance,
            True, use_shared_memory=False,
        )
        try:
            _install_sweep(spec)
            # Same structural fingerprint -> the seeded entry answers.
            before = GLOBAL_CACHE.stats()["misses"]
            resolved = get_flat_distance_matrix(fresh_device)
            assert GLOBAL_CACHE.stats()["misses"] == before
            assert resolved.buf == distance.buf
        finally:
            _WORKER_SWEEPS.pop(spec.fingerprint, None)

    def test_seed_flat_distance_first_store_wins(self, device):
        flat = get_flat_distance_matrix(device)
        # Already cached by the fetch above -> seeding is a no-op.
        assert GLOBAL_CACHE.seed_flat_distance(device, flat) is False


class TestHybridExecutor:
    def test_shard_boundary_sweep(self, device, workload):
        """K not divisible by P, K < P, and P = 1 all reduce to the
        serial executor's per-seed results."""
        serial = run_trials(workload, device, [0, 1, 2, 3, 4])
        for jobs, expected_plan in (
            (2, [[0, 1, 2], [3, 4]]),   # K % P != 0
            (8, [[0], [1], [2], [3], [4]]),  # K < P
            (1, [[0, 1, 2, 3, 4]]),     # P = 1
        ):
            hyb = run_trials(
                workload, device, [0, 1, 2, 3, 4],
                executor="hybrid", jobs=jobs,
            )
            assert hyb.shard_plan == expected_plan
            assert hyb.trial_swaps == serial.trial_swaps
            assert hyb.winner_index == serial.winner_index
            for a, b in zip(hyb.trials, serial.trials):
                assert a.result.routing.circuit == b.result.routing.circuit

    def test_outcome_records_executor(self, device, workload):
        hyb = run_trials(
            workload, device, [0, 1], executor="hybrid", jobs=2
        )
        assert hyb.requested_executor == "hybrid"
        assert hyb.executor == "hybrid"
        assert hyb.downgrade_reason is None
        serial = run_trials(workload, device, [0, 1])
        assert serial.requested_executor == "serial"
        assert serial.executor == "serial"
        assert serial.shard_plan is None

    def test_single_seed_downgrades_with_warning(self, device, workload):
        _DOWNGRADES_WARNED.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = run_trials(
                workload, device, [3], executor="hybrid", jobs=2
            )
            # Warned once per downgrade kind, not once per sweep.
            again = run_trials(
                workload, device, [3], executor="hybrid", jobs=2
            )
        assert outcome.executor == "serial"
        assert outcome.requested_executor == "hybrid"
        assert "single seed" in outcome.downgrade_reason
        assert again.downgrade_reason == outcome.downgrade_reason
        downgrades = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(downgrades) == 1

    def test_ensemble_downgrade_recorded(self, device, workload):
        _DOWNGRADES_WARNED.clear()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            outcome = run_trials(
                workload, device, [0, 1],
                config=HeuristicConfig(scorer="fast"),
                executor="ensemble",
            )
        assert outcome.executor == "serial"
        assert outcome.requested_executor == "ensemble"
        assert "ineligible" in outcome.downgrade_reason
        assert any(
            issubclass(w.category, RuntimeWarning) for w in caught
        )

    def test_jobs_validation(self, device, workload):
        with pytest.raises(ValueError, match="jobs"):
            run_trials(workload, device, [0, 1], jobs=0)
        with pytest.raises(ValueError, match="jobs"):
            run_trials(
                workload, device, [0, 1], executor="hybrid", jobs=-2
            )

    def test_auto_resolves_on_this_host(self, device, workload):
        outcome = run_trials(workload, device, [0, 1, 2], executor="auto")
        assert outcome.requested_executor == "auto"
        # Whatever the host's core count picked, per-seed results match
        # serial and no downgrade is recorded (a choice is not one).
        assert outcome.executor in ("serial", "ensemble", "hybrid", "process")
        assert outcome.downgrade_reason is None
        serial = run_trials(workload, device, [0, 1, 2])
        assert outcome.trial_swaps == serial.trial_swaps


class TestServiceTrialJobs:
    def test_execute_request_engine_paths_agree(self, workload):
        from repro.qasm import emit_qasm
        from repro.service.request import (
            CompileRequest,
            execute_request,
            trial_executor_decision,
        )

        request = CompileRequest(
            qasm=emit_qasm(workload), device="ibm_q20_tokyo", num_trials=4
        )
        decision = trial_executor_decision(request, 2)
        assert isinstance(decision, ExecutorDecision)
        assert decision.executor == "hybrid"
        hybrid = execute_request(request, trial_jobs=2)
        ensemble = execute_request(request, trial_jobs=1)
        assert hybrid.routed_qasm == ensemble.routed_qasm
        drop_walltime = lambda m: {k: v for k, v in m.items() if k != "t_sec"}
        assert drop_walltime(hybrid.metrics) == drop_walltime(ensemble.metrics)
        assert hybrid.properties.get("engine.executor") == "hybrid"
        assert ensemble.properties.get("engine.executor") == "ensemble"

    def test_single_trial_requests_stay_on_default_path(self, workload):
        from repro.qasm import emit_qasm
        from repro.service.request import (
            CompileRequest,
            execute_request,
            trial_executor_decision,
        )

        request = CompileRequest(
            qasm=emit_qasm(workload), device="ibm_q20_tokyo", num_trials=1
        )
        assert trial_executor_decision(request, 4) is None
        plain = execute_request(request)
        granted = execute_request(request, trial_jobs=4)
        assert plain.routed_qasm == granted.routed_qasm

    def test_scheduler_thread_tier_forwards_trial_jobs(self, workload):
        from repro.qasm import emit_qasm
        from repro.service.request import CompileRequest
        from repro.service.scheduler import CoalescingScheduler
        from repro.service.store import ResultStore

        request = CompileRequest(
            qasm=emit_qasm(workload), device="ibm_q20_tokyo", num_trials=3
        )
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, trial_jobs=2
        )
        try:
            job = scheduler.wait(scheduler.submit(request), timeout=120.0)
        finally:
            scheduler.shutdown()
        assert job.result is not None
        assert job.result.properties.get("engine.executor") == "hybrid"

    def test_scheduler_rejects_bad_trial_jobs(self):
        from repro.service.scheduler import CoalescingScheduler
        from repro.service.store import ResultStore

        with pytest.raises(ValueError, match="trial_jobs"):
            CoalescingScheduler(store=ResultStore(), workers=1, trial_jobs=0)
