"""Correctness tests for the device cache (repro.engine.cache)."""

import threading

from repro.engine.cache import (
    DeviceCache,
    coupling_fingerprint,
)
from repro.hardware import grid_device, ibm_q20_tokyo, line_device
from repro.hardware.distance import (
    bfs_distance_matrix,
    floyd_warshall,
    weighted_floyd_warshall,
)


class TestDistanceMatrixCaching:
    def test_hit_equals_fresh_floyd_warshall(self):
        cache = DeviceCache()
        device = ibm_q20_tokyo()
        first = cache.distance_matrix(device)
        second = cache.distance_matrix(device)
        assert first == floyd_warshall(device)
        assert second == floyd_warshall(device)
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == 1

    def test_computed_once_per_fingerprint(self):
        cache = DeviceCache()
        device = grid_device(3, 3)
        for _ in range(5):
            cache.distance_matrix(device)
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == 4

    def test_equal_devices_share_one_entry(self):
        """Two independently built instances of the same topology hit
        one cache slot — the key is structural, not object identity."""
        cache = DeviceCache()
        cache.distance_matrix(grid_device(3, 3))
        cache.distance_matrix(grid_device(3, 3))
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == 1

    def test_mutation_cannot_poison_cache(self):
        cache = DeviceCache()
        device = grid_device(3, 3)
        stolen = cache.distance_matrix(device)
        stolen[0][1] = 999.0
        stolen[2].append(123.0)
        clean = cache.distance_matrix(device)
        assert clean == floyd_warshall(device)
        assert clean[0][1] == 1.0

    def test_returned_copies_are_independent(self):
        cache = DeviceCache()
        device = line_device(5)
        a = cache.distance_matrix(device)
        b = cache.distance_matrix(device)
        assert a == b
        assert a is not b
        assert all(ra is not rb for ra, rb in zip(a, b))

    def test_weighted_and_unit_keys_differ(self):
        cache = DeviceCache()
        device = line_device(4)
        weights = {(0, 1): 2.0, (1, 2): 1.0, (2, 3): 3.0}
        unit = cache.distance_matrix(device)
        weighted = cache.distance_matrix(device, edge_weights=weights)
        assert unit == floyd_warshall(device)
        assert weighted == weighted_floyd_warshall(device, weights)
        assert unit != weighted
        assert cache.cache_info().misses == 2
        # Re-reads of both flavours hit their own entries.
        assert cache.distance_matrix(device) == unit
        assert cache.distance_matrix(device, edge_weights=weights) == weighted
        assert cache.cache_info().misses == 2

    def test_different_weight_tables_key_separately(self):
        cache = DeviceCache()
        device = line_device(4)
        a = cache.distance_matrix(device, edge_weights={(0, 1): 2.0})
        b = cache.distance_matrix(device, edge_weights={(0, 1): 4.0})
        assert a != b
        assert cache.cache_info().misses == 2

    def test_reversed_weight_key_never_aliases(self):
        """weighted_floyd_warshall only honours (low, high) keys, so a
        reversed key computes a different matrix — the cache must key
        them apart and always return exactly the fresh computation."""
        cache = DeviceCache()
        device = line_device(2)
        proper = {(0, 1): 5.0}
        reversed_key = {(1, 0): 5.0}
        assert cache.distance_matrix(
            device, edge_weights=proper
        ) == weighted_floyd_warshall(device, proper)
        assert cache.distance_matrix(
            device, edge_weights=reversed_key
        ) == weighted_floyd_warshall(device, reversed_key)
        assert cache.cache_info().misses == 2

    def test_method_is_part_of_key(self):
        cache = DeviceCache()
        device = grid_device(2, 3)
        fw = cache.distance_matrix(device, method="floyd-warshall")
        bfs = cache.distance_matrix(device, method="bfs")
        # Unit-weight APSP agrees across algorithms, but the entries are
        # distinct cache slots (methods could diverge on weighted input).
        assert fw == bfs == bfs_distance_matrix(device)
        assert cache.cache_info().misses == 2

    def test_clear_resets(self):
        cache = DeviceCache()
        cache.distance_matrix(line_device(3))
        cache.clear()
        info = cache.cache_info()
        assert info == type(info)(hits=0, misses=0, entries=0)


class TestFlatMatrixCaching:
    def test_flat_equals_nested(self):
        cache = DeviceCache()
        device = ibm_q20_tokyo()
        flat = cache.flat_distance_matrix(device)
        assert flat.to_matrix() == floyd_warshall(device)
        assert flat.symmetric

    def test_computed_once_per_fingerprint(self):
        cache = DeviceCache()
        device = grid_device(3, 3)
        for _ in range(4):
            cache.flat_distance_matrix(device)
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == 3

    def test_flat_and_nested_share_one_store(self):
        """Both access forms are backed by one flattened store: fetching
        nested then flat computes the APSP exactly once."""
        cache = DeviceCache()
        device = grid_device(3, 3)
        nested = cache.distance_matrix(device)
        flat = cache.flat_distance_matrix(device)
        assert flat.to_matrix() == nested
        info = cache.cache_info()
        assert info.misses == 1
        assert info.hits == 1

    def test_mutation_cannot_poison_flat_cache(self):
        cache = DeviceCache()
        device = grid_device(3, 3)
        stolen = cache.flat_distance_matrix(device)
        stolen.buf[0] = 999.0
        clean = cache.flat_distance_matrix(device)
        assert clean.to_matrix() == floyd_warshall(device)

    def test_weighted_flat_matrix(self):
        cache = DeviceCache()
        device = line_device(4)
        weights = {(0, 1): 2.0, (1, 2): 0.5}
        flat = cache.flat_distance_matrix(device, edge_weights=weights)
        assert flat.to_matrix() == weighted_floyd_warshall(device, weights)

    def test_clear_resets_flat_store(self):
        cache = DeviceCache()
        device = grid_device(3, 3)
        cache.flat_distance_matrix(device)
        cache.clear()
        assert cache.cache_info().entries == 0
        cache.flat_distance_matrix(device)
        assert cache.cache_info().misses == 1


class TestFingerprint:
    def test_name_does_not_matter(self):
        a = grid_device(3, 3)
        b = grid_device(3, 3)
        b.name = "renamed"
        assert coupling_fingerprint(a) == coupling_fingerprint(b)

    def test_topology_matters(self):
        assert coupling_fingerprint(grid_device(3, 3)) != coupling_fingerprint(
            line_device(9)
        )

    def test_weights_order_invariant(self):
        device = line_device(4)
        w1 = {(0, 1): 2.0, (1, 2): 3.0}
        w2 = {(1, 2): 3.0, (0, 1): 2.0}
        assert coupling_fingerprint(device, w1) == coupling_fingerprint(device, w2)


class TestDeviceObjects:
    def test_named_device_shared(self):
        cache = DeviceCache()
        a = cache.device("ibm_q20_tokyo")
        b = cache.device("ibm_q20_tokyo")
        assert a is b
        info = cache.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_builder_override(self):
        cache = DeviceCache()
        built = cache.device("custom", builder=lambda: grid_device(2, 2))
        assert built.num_qubits == 4
        assert cache.device("custom") is built


class TestThreadSafety:
    def test_concurrent_reads_one_computation(self):
        cache = DeviceCache()
        device = ibm_q20_tokyo()
        results = []
        barrier = threading.Barrier(4)

        def read():
            barrier.wait()
            results.append(cache.distance_matrix(device))

        threads = [threading.Thread(target=read) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        reference = floyd_warshall(device)
        assert all(r == reference for r in results)
        info = cache.cache_info()
        # Racing threads may each compute, but exactly one result is
        # stored and the ledger stays consistent.
        assert info.entries == 1
        assert info.hits + info.misses == 4


class TestFlatDagPair:
    """Bidirectional IR fetches share the per-direction cache slots."""

    def test_pair_returns_both_directions_from_shared_cache(self):
        from repro.circuits import random_circuit
        from repro.engine.cache import (
            cache_info,
            clear_cache,
            get_flat_dag,
            get_flat_dag_pair,
        )

        clear_cache()
        circuit = random_circuit(4, 12, seed=7)
        forward, reverse = get_flat_dag_pair(circuit)
        assert forward.num_qubits == reverse.num_qubits == 4
        # One lowering per direction; the pair helper and the
        # per-direction fetches resolve to the same shared instances.
        assert get_flat_dag(circuit) is forward
        assert get_flat_dag(circuit, direction="reverse") is reverse
        info = cache_info()
        assert info.misses == 2
        assert info.hits == 2
        again = get_flat_dag_pair(circuit)
        assert again == (forward, reverse)
        clear_cache()


class TestStats:
    """The per-store breakdown the serving layer surfaces on /stats."""

    def test_breakdown_tracks_each_store(self):
        from repro.circuits import random_circuit

        cache = DeviceCache()
        stats = cache.stats()
        assert stats == {
            "hits": 0,
            "misses": 0,
            "matrix_entries": 0,
            "device_entries": 0,
            "dag_entries": 0,
            "entries": 0,
        }
        cache.distance_matrix(line_device(4))
        cache.device("ibm_q20_tokyo")
        cache.flat_dag(random_circuit(3, 5, seed=1))
        stats = cache.stats()
        assert stats["matrix_entries"] == 1
        assert stats["device_entries"] == 1
        assert stats["dag_entries"] == 1
        assert stats["entries"] == 3
        assert stats["misses"] == 3
        cache.distance_matrix(line_device(4))
        assert cache.stats()["hits"] == 1

    def test_matches_cache_info_totals(self):
        cache = DeviceCache()
        cache.distance_matrix(grid_device(2, 3))
        cache.distance_matrix(grid_device(2, 3))
        info = cache.cache_info()
        stats = cache.stats()
        assert (info.hits, info.misses, info.entries) == (
            stats["hits"],
            stats["misses"],
            stats["entries"],
        )

    def test_module_level_wrapper(self):
        from repro.engine.cache import cache_stats

        assert set(cache_stats()) == {
            "hits",
            "misses",
            "matrix_entries",
            "device_entries",
            "dag_entries",
            "entries",
        }
