"""Regression tests for the trial seed-handling bug class.

Historically every random restart shared the router's base tie-break
seed: trials differed only in their initial mapping and replayed the
same tie-break sequence, and concurrent trials routed through one
router would have contended for one RNG stream.  These tests pin the
fixed contract: per-run seeding, no shared or global RNG state.
"""

import random

from repro.circuits import QuantumCircuit, random_circuit
from repro.core import Layout, SabreLayout, SabreRouter
from repro.engine import run_trials
from repro.hardware import grid_device, ring_device
import pytest


@pytest.fixture
def ring8():
    return ring_device(8)


def _tie_heavy_circuit(num_qubits=8):
    """Antipodal CNOTs on a ring: routing either way round costs the
    same, so equal-score SWAPs abound and the tie-break RNG decides the
    swap sequence.  Pair with ``ring_device(num_qubits)``."""
    circ = QuantumCircuit(num_qubits, name="tie_heavy")
    for k in range(num_qubits // 2):
        circ.cx(k, (k + num_qubits // 2) % num_qubits)
    return circ


def _swap_sequence(result):
    return [result.circuit[i].qubits for i in result.swap_positions]


class TestRouterRunSeed:
    def test_run_seed_overrides_constructor_seed(self, ring8):
        circ = _tie_heavy_circuit()
        router = SabreRouter(ring8, seed=0)
        fixed = Layout.trivial(8)
        default = router.run(circ, initial_layout=fixed)
        explicit = router.run(circ, initial_layout=fixed, seed=0)
        assert _swap_sequence(default) == _swap_sequence(explicit)

    def test_different_run_seeds_differ_in_tie_breaks(self, ring8):
        """Two trials with different seeds from the SAME initial layout
        must produce different tie-break sequences (the initial-mapping
        randomness is deliberately held fixed here)."""
        circ = _tie_heavy_circuit()
        router = SabreRouter(ring8, seed=0)
        fixed = Layout.trivial(8)
        sequences = {
            tuple(_swap_sequence(router.run(circ, initial_layout=fixed, seed=s)))
            for s in range(6)
        }
        assert len(sequences) > 1, (
            "six differently seeded runs produced identical swap "
            "sequences; tie-break seeding is not being applied"
        )

    def test_same_run_seed_reproduces(self, ring4):
        circ = QuantumCircuit(4)
        for _ in range(6):
            circ.cx(0, 2)
            circ.cx(1, 3)
        router = SabreRouter(ring4, seed=99)
        fixed = Layout.trivial(4)
        a = router.run(circ, initial_layout=fixed, seed=5)
        b = router.run(circ, initial_layout=fixed, seed=5)
        assert a.circuit == b.circuit

    def test_runs_share_no_state_through_router(self, ring8):
        """Interleaving other runs between two identically seeded runs
        must not perturb them — each run owns a private RNG."""
        circ = _tie_heavy_circuit()
        router = SabreRouter(ring8, seed=0)
        fixed = Layout.trivial(8)
        first = router.run(circ, initial_layout=fixed, seed=3)
        router.run(circ, initial_layout=fixed, seed=8)
        router.run(circ, initial_layout=fixed)
        again = router.run(circ, initial_layout=fixed, seed=3)
        assert _swap_sequence(first) == _swap_sequence(again)

    def test_global_random_state_untouched(self, ring8):
        """Routing must never touch the module-level ``random`` stream
        (a global ``random.seed`` call is exactly the bug class that
        breaks concurrent trials)."""
        circ = _tie_heavy_circuit()
        random.seed(1234)
        before = random.getstate()
        SabreRouter(ring8, seed=0).run(circ)
        assert random.getstate() == before


class TestLayoutTrialSeeding:
    def test_restarts_use_distinct_tie_break_streams(self, grid3x3):
        """SabreLayout restarts must not replay one tie-break sequence:
        with per-trial seeding, trials recorded from the same circuit
        generally diverge in their final swap counts, and the recorded
        seeds are distinct."""
        circ = random_circuit(9, 60, seed=2, two_qubit_fraction=0.7)
        result = SabreLayout(grid3x3, num_trials=5, seed=0).run(circ)
        seeds = [t.seed for t in result.trials]
        assert len(set(seeds)) == len(seeds)

    def test_parallel_trials_differ_and_match_serial(self, ring8):
        """ISSUE regression: two parallel trials with different seeds
        produce different tie-break sequences — and exactly the ones
        the serial executor produces."""
        circ = _tie_heavy_circuit()
        serial = run_trials(circ, ring8, seeds=[0, 1], executor="serial")
        pooled = run_trials(
            circ, ring8, seeds=[0, 1], executor="process", jobs=2
        )
        serial_seqs = [
            _swap_sequence(t.result.routing) for t in serial.trials
        ]
        pooled_seqs = [
            _swap_sequence(t.result.routing) for t in pooled.trials
        ]
        assert serial_seqs == pooled_seqs
        assert (
            serial.trials[0].result.routing.circuit
            != serial.trials[1].result.routing.circuit
        ), "differently seeded trials collapsed to one output"
