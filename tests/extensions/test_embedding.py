"""Unit tests for perfect-layout subgraph embedding (§V-A1)."""

import pytest

from repro.bench_circuits import ising_model, qft, suite
from repro.circuits import QuantumCircuit
from repro.core import compile_circuit
from repro.exceptions import MappingError
from repro.extensions import (
    find_perfect_layout,
    has_perfect_layout,
    interaction_graph,
    verify_perfect_layout,
)
from repro.hardware import grid_device, line_device, ring_device


class TestInteractionGraph:
    def test_edges_collected(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        circ.cx(0, 1)
        graph = interaction_graph(circ)
        assert graph[0] == {1}
        assert graph[1] == {0, 2}

    def test_one_qubit_gates_ignored(self):
        circ = QuantumCircuit(2)
        circ.h(0)
        assert interaction_graph(circ) == {0: set(), 1: set()}


class TestFindPerfectLayout:
    def test_chain_embeds_in_line(self):
        circ = QuantumCircuit(4)
        for q in range(3):
            circ.cx(q, q + 1)
        layout = find_perfect_layout(circ, line_device(4))
        assert layout is not None
        assert verify_perfect_layout(circ, line_device(4), layout)

    def test_chain_embeds_in_tokyo(self, tokyo):
        layout = find_perfect_layout(ising_model(16), tokyo)
        assert layout is not None
        assert verify_perfect_layout(ising_model(16), tokyo, layout)

    def test_triangle_does_not_embed_in_line(self):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        circ.cx(0, 2)
        assert find_perfect_layout(circ, line_device(5)) is None

    def test_triangle_embeds_in_tokyo(self, tokyo):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        circ.cx(1, 2)
        circ.cx(0, 2)
        assert has_perfect_layout(circ, tokyo)

    def test_k4_embeds_in_tokyo(self, tokyo):
        """Tokyo contains K4 ({1,2,6,7}); a fully-connected 4-qubit
        circuit must embed."""
        circ = QuantumCircuit(4)
        for i in range(4):
            for j in range(i + 1, 4):
                circ.cx(i, j)
        layout = find_perfect_layout(circ, tokyo)
        assert layout is not None
        assert verify_perfect_layout(circ, tokyo, layout)

    def test_k5_does_not_embed_in_tokyo(self, tokyo):
        circ = QuantumCircuit(5)
        for i in range(5):
            for j in range(i + 1, 5):
                circ.cx(i, j)
        assert find_perfect_layout(circ, tokyo) is None

    def test_qft10_does_not_embed(self, tokyo):
        """K10 interaction graph cannot embed in a degree-<=6 device."""
        assert not has_perfect_layout(qft(10), tokyo)

    def test_empty_circuit_trivially_embeds(self, tokyo):
        assert has_perfect_layout(QuantumCircuit(5), tokyo)

    def test_too_large_circuit_rejected(self):
        with pytest.raises(MappingError):
            find_perfect_layout(QuantumCircuit(10), line_device(4))

    def test_ring_embeds_in_ring(self):
        circ = QuantumCircuit(6)
        for q in range(6):
            circ.cx(q, (q + 1) % 6)
        assert has_perfect_layout(circ, ring_device(6))

    def test_ring5_does_not_embed_in_grid4(self):
        """An odd cycle can't embed in a bipartite 2x2 grid."""
        circ = QuantumCircuit(4)
        circ.cx(0, 1)
        circ.cx(1, 2)
        circ.cx(2, 3)
        circ.cx(3, 0)
        # C4 fits the 2x2 grid...
        assert has_perfect_layout(circ, grid_device(2, 2))
        circ.cx(0, 2)  # ...but adding a chord makes it K4-minus-edge
        assert not has_perfect_layout(circ, grid_device(2, 2))


class TestAgreementWithSabre:
    """§V-A1: where a perfect layout exists, SABRE's reverse traversal
    also finds a (near-)zero-SWAP mapping."""

    @pytest.mark.parametrize(
        "spec", suite("small"), ids=lambda s: s.name
    )
    def test_small_suite_embeddability_vs_sabre(self, tokyo, spec):
        circ = spec.build()
        embeddable = has_perfect_layout(circ, tokyo)
        sabre = compile_circuit(circ, tokyo, seed=0)
        if embeddable:
            assert sabre.added_gates <= 3
        if sabre.added_gates == 0:
            assert embeddable

    def test_perfect_layout_gives_zero_swap_route(self, tokyo):
        circ = ising_model(10)
        layout = find_perfect_layout(circ, tokyo)
        assert layout is not None
        result = compile_circuit(circ, tokyo, initial_layout=layout, seed=0)
        assert result.num_swaps == 0

    def test_compile_with_embedding_closes_alu_gap(self, tokyo):
        """alu-v0_27 embeds, so the embedding-seeded compile reaches the
        provable optimum of 0.  Plain SABRE's random restarts may or may
        not find it (the paper reports g_op = 3; per-trial tie-break
        seeding happens to find 0 at this seed) but can never beat the
        embedding and should stay within the paper's result."""
        from repro.bench_circuits import build_benchmark
        from repro.extensions import compile_with_embedding

        circ = build_benchmark("alu-v0_27")
        plain = compile_circuit(circ, tokyo, seed=0)
        seeded = compile_with_embedding(circ, tokyo, seed=0)
        assert 0 <= plain.added_gates <= 3
        assert seeded.added_gates == 0
        assert seeded.added_gates <= plain.added_gates

    def test_compile_with_embedding_falls_back(self, tokyo):
        """Non-embeddable workloads route via the normal pipeline."""
        from repro.extensions import compile_with_embedding

        result = compile_with_embedding(qft(6), tokyo, seed=0, num_trials=2)
        assert result.num_swaps > 0
