"""Unit tests for directed-coupling legalisation."""

import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import HardwareError
from repro.extensions import direction_overhead, legalize_directions
from repro.hardware import ibm_qx2, ibm_qx4, ibm_qx5
from repro.verify import is_hardware_compliant, statevector_equivalent


class TestLegalizeDirections:
    def test_native_direction_untouched(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cx(0, 1)
        out = legalize_directions(circ, dev)
        assert out.gates == circ.gates

    def test_reversed_direction_conjugated(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cx(1, 0)
        out = legalize_directions(circ, dev)
        assert [g.name for g in out] == ["h", "h", "cx", "h", "h"]
        assert out[2].qubits == (0, 1)

    def test_semantics_preserved(self):
        dev = ibm_qx4()
        circ = QuantumCircuit(5)
        circ.h(0)
        circ.cx(0, 1)
        circ.cx(2, 0)
        circ.t(2)
        out = legalize_directions(circ, dev)
        assert statevector_equivalent(circ, out)
        assert is_hardware_compliant(out, dev, check_direction=True)

    def test_swap_expanded_and_legalised(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.swap(0, 1)
        out = legalize_directions(circ, dev)
        assert is_hardware_compliant(out, dev, check_direction=True)
        assert statevector_equivalent(circ, out)

    def test_uncoupled_pair_rejected(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cx(0, 4)
        with pytest.raises(HardwareError, match="uncoupled"):
            legalize_directions(circ, dev)

    def test_qx5_full_pipeline(self):
        """Route with SABRE, then legalise for the directed QX5."""
        from repro.core import compile_circuit
        from repro.circuits import random_circuit

        dev = ibm_qx5()
        circ = random_circuit(8, 40, seed=1, two_qubit_fraction=0.6)
        result = compile_circuit(circ, dev, seed=0, num_trials=2)
        legal = legalize_directions(
            result.physical_circuit(decompose_swaps=False), dev
        )
        assert is_hardware_compliant(legal, dev, check_direction=True)


class TestDirectionOverhead:
    def test_zero_for_native(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cx(0, 1)
        assert direction_overhead(circ, dev) == (0, 0)

    def test_counts_reversed(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.cx(1, 0)
        circ.cx(0, 2)
        assert direction_overhead(circ, dev) == (1, 4)

    def test_swap_counts_reversed_components(self):
        dev = ibm_qx2()
        circ = QuantumCircuit(5)
        circ.swap(0, 1)
        reversed_count, extra = direction_overhead(circ, dev)
        # a SWAP's 3 CNOTs alternate direction: at least one is reversed
        assert reversed_count >= 1
        assert extra == 4 * reversed_count
