"""Unit tests for ablation configurations."""

import pytest

from repro.exceptions import ReproError
from repro.extensions import (
    ABLATION_CONFIGS,
    ablation_config,
    extended_set_sweep_configs,
    weight_sweep_configs,
)


class TestAblationConfigs:
    def test_expected_names(self):
        assert {"basic", "lookahead", "decay"} <= set(ABLATION_CONFIGS)

    def test_lookup(self):
        assert ablation_config("basic").mode == "basic"
        assert ablation_config("decay").uses_decay

    def test_unknown_rejected(self):
        with pytest.raises(ReproError, match="unknown ablation config"):
            ablation_config("turbo")

    def test_aggressive_decay_larger_delta(self):
        assert (
            ablation_config("decay_aggressive").decay_delta
            > ablation_config("decay").decay_delta
        )

    def test_all_configs_routable(self, grid3x3):
        from repro.circuits import random_circuit
        from repro.core import SabreRouter
        from repro.verify import assert_compliant

        circ = random_circuit(9, 30, seed=0, two_qubit_fraction=0.6)
        for name, config in ABLATION_CONFIGS.items():
            result = SabreRouter(grid3x3, config=config, seed=0).run(circ)
            assert_compliant(result.physical_circuit(), grid3x3)


class TestSweepBuilders:
    def test_extended_set_sweep(self):
        configs = extended_set_sweep_configs((0, 10, 20))
        assert [c.extended_set_size for c in configs] == [0, 10, 20]

    def test_weight_sweep(self):
        configs = weight_sweep_configs((0.0, 0.5))
        assert [c.extended_set_weight for c in configs] == [0.0, 0.5]

    def test_sweeps_use_decay_mode(self):
        assert all(c.mode == "decay" for c in extended_set_sweep_configs())
        assert all(c.mode == "decay" for c in weight_sweep_configs())
