"""Unit tests for noise-aware routing."""

import pytest

from repro.circuits import QuantumCircuit, random_circuit
from repro.exceptions import HardwareError
from repro.extensions import NoiseAwareRouter, noise_weighted_distance
from repro.hardware import NoiseModel, distance_matrix, grid_device, line_device
from repro.verify import assert_compliant


class TestNoiseWeightedDistance:
    def test_uniform_noise_matches_hops(self, line5):
        noise = NoiseModel()
        weighted = noise_weighted_distance(line5, noise)
        hops = distance_matrix(line5)
        for i in range(5):
            for j in range(5):
                assert weighted[i][j] == pytest.approx(hops[i][j])

    def test_bad_edge_lengthened(self):
        device = grid_device(2, 2)  # square 0-1 / 0-2 / 1-3 / 2-3
        noise = NoiseModel(edge_errors={(0, 1): 0.3})
        weighted = noise_weighted_distance(device, noise)
        hops = distance_matrix(device)
        assert weighted[0][1] > hops[0][1]
        # the detour 0-2-3-1 becomes competitive
        assert weighted[0][1] <= weighted[0][2] + weighted[2][3] + weighted[3][1]

    def test_error_rate_one_rejected(self, line5):
        noise = NoiseModel(edge_errors={(0, 1): 1.0})
        with pytest.raises(HardwareError):
            noise_weighted_distance(line5, noise)


class TestNoiseAwareRouter:
    def test_output_compliant(self, tokyo):
        noise = NoiseModel(edge_errors={(6, 11): 0.2})
        router = NoiseAwareRouter(tokyo, noise)
        circ = random_circuit(8, 50, seed=0, two_qubit_fraction=0.7)
        result = router.run(circ, num_trials=2)
        assert_compliant(result.physical_circuit(), tokyo)

    def test_avoids_bad_coupler(self, tokyo):
        """With a catastrophic edge, the noise-aware route should touch
        it no more often than the hop-count route does."""
        from repro.core import compile_circuit

        bad_edge = (6, 11)
        noise = NoiseModel(edge_errors={bad_edge: 0.4})

        def uses(result):
            return sum(
                1
                for g in result.physical_circuit()
                if g.is_two_qubit and set(g.qubits) == set(bad_edge)
            )

        total_plain = total_aware = 0
        for seed in range(4):
            circ = random_circuit(10, 60, seed=seed, two_qubit_fraction=0.8)
            total_plain += uses(compile_circuit(circ, tokyo, seed=0, num_trials=2))
            total_aware += uses(
                NoiseAwareRouter(tokyo, noise).run(circ, seed=0, num_trials=2)
            )
        assert total_aware <= total_plain

    def test_deterministic(self, tokyo):
        noise = NoiseModel(edge_errors={(0, 1): 0.1})
        circ = random_circuit(6, 30, seed=3, two_qubit_fraction=0.6)
        a = NoiseAwareRouter(tokyo, noise).run(circ, seed=1, num_trials=2)
        b = NoiseAwareRouter(tokyo, noise).run(circ, seed=1, num_trials=2)
        assert a.num_swaps == b.num_swaps
