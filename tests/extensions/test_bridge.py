"""Unit tests for the Bridge transform."""

import pytest

from repro.circuits import QuantumCircuit
from repro.exceptions import HardwareError
from repro.extensions import bridge_gates, route_with_bridges
from repro.hardware import grid_device, line_device
from repro.verify import is_hardware_compliant, statevector_equivalent


class TestBridgeGates:
    def test_four_cnots(self):
        gates = bridge_gates(0, 1, 2)
        assert [g.name for g in gates] == ["cx"] * 4

    def test_identity_matches_direct_cnot(self):
        direct = QuantumCircuit(3)
        direct.cx(0, 2)
        bridged = QuantumCircuit(3)
        bridged.extend(bridge_gates(0, 1, 2))
        assert statevector_equivalent(direct, bridged)

    def test_mapping_unchanged(self):
        """The bridge's defining property: no qubit moves, so composing
        it with itself equals applying CX(a, b) twice = identity."""
        double = QuantumCircuit(3)
        double.extend(bridge_gates(0, 1, 2))
        double.extend(bridge_gates(0, 1, 2))
        assert statevector_equivalent(double, QuantumCircuit(3))


class TestRouteWithBridges:
    def test_adjacent_gate_passes_through(self, line5):
        circ = QuantumCircuit(3)
        circ.cx(0, 1)
        out = route_with_bridges(circ, line5)
        assert out.gate_counts() == {"cx": 1}

    def test_distance2_bridged(self, line5):
        circ = QuantumCircuit(3)
        circ.cx(0, 2)
        out = route_with_bridges(circ, line5)
        assert out.gate_counts() == {"cx": 4}
        assert is_hardware_compliant(out, line5)
        assert statevector_equivalent(circ, out)

    def test_distance3_rejected(self, line5):
        circ = QuantumCircuit(4)
        circ.cx(0, 3)
        with pytest.raises(HardwareError, match="farther than distance 2"):
            route_with_bridges(circ, line5)

    def test_non_cx_two_qubit_rejected(self, line5):
        circ = QuantumCircuit(3)
        circ.cz(0, 2)
        with pytest.raises(HardwareError, match="only applies to CNOTs"):
            route_with_bridges(circ, line5)

    def test_mixed_circuit_on_grid(self, grid3x3):
        circ = QuantumCircuit(9)
        circ.h(0)
        circ.cx(0, 1)   # adjacent
        circ.cx(0, 2)   # distance 2 (via 1)
        circ.cx(3, 5)   # distance 2 (via 4)
        circ.measure(2)
        out = route_with_bridges(circ, grid3x3)
        assert is_hardware_compliant(out, grid3x3)
        assert statevector_equivalent(
            circ.without_directives(), out.without_directives()
        )

    def test_bridge_vs_swap_gate_counts(self, line5):
        """Bridge = 4 CNOTs; SWAP route = 3 (swap) + 1 = 4 CNOTs too,
        but the SWAP moves the mapping.  Same cost, different state —
        the §III-A trade-off in numbers."""
        from repro.baselines import TrivialRouter

        circ = QuantumCircuit(3)
        circ.cx(0, 2)
        bridged = route_with_bridges(circ, line5)
        swapped = TrivialRouter(line5).run(circ)
        assert bridged.count_gates() == 4
        assert swapped.physical_circuit().count_gates() == 4
