"""ResultStore: two-tier lookup, persistence, LRU, atomicity, counters.

Also covers :class:`ShardedResultStore` — N plain stores behind one
facade, sharded by fingerprint prefix, with the same on-disk layout as
an unsharded store (restart-compatible in both directions and across
shard counts)."""

import json
import os
import threading

import pytest

from repro.exceptions import ReproError
from repro.service.store import (
    STORE_VERSION,
    ResultStore,
    ShardedResultStore,
    StoredResult,
)


def entry(key: str, qasm: str = "OPENQASM 2.0;\n") -> StoredResult:
    return StoredResult(
        key=key,
        routed_qasm=qasm,
        metrics={"g_add": 3},
        properties={"pass_timings": [["SabreRoutePass", 0.001]]},
        request={"device": "ibm_q20_tokyo"},
        compile_seconds=0.5,
        created_at=123.0,
    )


class TestMemoryTier:
    def test_miss_then_hit(self):
        store = ResultStore()
        assert store.get("k" * 64) is None
        store.put(entry("k" * 64))
        got = store.get("k" * 64)
        assert got is not None and got.metrics == {"g_add": 3}
        stats = store.stats()
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert not stats["persistent"]

    def test_lru_eviction(self):
        store = ResultStore(max_memory_entries=2)
        store.put(entry("a"))
        store.put(entry("b"))
        assert store.get("a") is not None  # refresh 'a'; 'b' is now LRU
        store.put(entry("c"))  # evicts 'b'
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.get("c") is not None
        assert store.stats()["evictions"] == 1
        assert store.stats()["memory_entries"] == 2

    def test_rejects_empty_key(self):
        with pytest.raises(ReproError, match="key"):
            ResultStore().put(entry(""))

    def test_rejects_zero_capacity(self):
        with pytest.raises(ReproError, match="max_memory_entries"):
            ResultStore(max_memory_entries=0)

    def test_contains_does_not_count(self):
        store = ResultStore()
        store.put(entry("a"))
        assert store.contains("a")
        assert not store.contains("b")
        stats = store.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestDiskTier:
    def test_survives_process_restart(self, tmp_path):
        root = str(tmp_path / "store")
        first = ResultStore(root=root)
        first.put(entry("deadbeef", qasm="OPENQASM 2.0;\n// routed\n"))
        # A brand-new instance (fresh process in real life) reads it back.
        second = ResultStore(root=root)
        got = second.get("deadbeef")
        assert got is not None
        assert got.routed_qasm == "OPENQASM 2.0;\n// routed\n"
        assert got.metrics == {"g_add": 3}
        assert got.request == {"device": "ibm_q20_tokyo"}
        stats = second.stats()
        assert stats["disk_hits"] == 1 and stats["memory_hits"] == 0

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        root = str(tmp_path / "store")
        ResultStore(root=root).put(entry("cafe"))
        store = ResultStore(root=root)
        store.get("cafe")
        store.get("cafe")
        stats = store.stats()
        assert stats["disk_hits"] == 1
        assert stats["memory_hits"] == 1

    def test_clear_memory_falls_back_to_disk(self, tmp_path):
        store = ResultStore(root=str(tmp_path / "store"))
        store.put(entry("beef"))
        store.clear_memory()
        assert store.get("beef") is not None
        assert store.stats()["disk_hits"] == 1

    def test_sharded_layout_and_artifact_pair(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(root=str(root)).put(entry("abcd1234"))
        shard = root / "ab"
        assert (shard / "abcd1234.json").exists()
        assert (shard / "abcd1234.qasm").exists()
        document = json.loads((shard / "abcd1234.json").read_text())
        assert "routed_qasm" not in document  # artifact lives beside it
        assert document["store_version"] == STORE_VERSION
        # Version 2 documents carry both integrity checksums.
        assert len(document["artifact_sha256"]) == 64
        assert len(document["document_sha256"]) == 64

    def test_no_tmp_droppings(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root=str(root))
        for i in range(5):
            store.put(entry(f"k{i}"))
        leftovers = [
            name
            for _, _, files in os.walk(root)
            for name in files
            if name.endswith(".tmp")
        ]
        assert leftovers == []

    def test_corrupt_json_reads_as_miss(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root=str(root))
        store.put(entry("feed"))
        (root / "fe" / "feed.json").write_text("{ truncated")
        store.clear_memory()
        assert store.get("feed") is None

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root=str(root))
        store.put(entry("f00d"))
        path = root / "f0" / "f00d.json"
        document = json.loads(path.read_text())
        document["store_version"] = 999
        path.write_text(json.dumps(document))
        store.clear_memory()
        assert store.get("f00d") is None

    def test_disk_entry_count(self, tmp_path):
        store = ResultStore(root=str(tmp_path / "store"))
        for i in range(3):
            store.put(entry(f"key{i}"))
        assert store.stats()["disk_entries"] == 3


class TestShardedStore:
    KEYS = [f"{i:08x}{'0' * 56}" for i in range(32)]  # spread over shards

    def test_routing_is_stable_and_total(self):
        store = ShardedResultStore(num_shards=4)
        for key in self.KEYS:
            store.put(entry(key))
            assert store._shard(key) is store._shard(key)
            assert store.get(key) is not None
            assert store.contains(key)
        by_shard = [s.stats()["puts"] for s in store._shards]
        assert sum(by_shard) == len(self.KEYS)
        assert sum(1 for n in by_shard if n > 0) > 1  # actually spread

    def test_non_hex_keys_still_route(self):
        store = ShardedResultStore(num_shards=4)
        store.put(entry("not-hex-at-all"))
        assert store.get("not-hex-at-all") is not None
        empty = ShardedResultStore(num_shards=4)
        assert empty.get("") is None  # crc32 fallback, no crash

    def test_restart_consistency_across_shard_counts(self, tmp_path):
        """The acceptance case: entries written under one shard count
        (or none) read back under any other — the key determines the
        path, the shard map is memory-only."""
        root = str(tmp_path / "store")
        writer = ShardedResultStore(root=root, num_shards=8)
        for key in self.KEYS[:6]:
            writer.put(entry(key, qasm=f"// {key}\n"))
        ResultStore(root=root).put(entry("deadbeef"))  # unsharded writer
        for reader in (
            ShardedResultStore(root=root, num_shards=8),   # same count
            ShardedResultStore(root=root, num_shards=3),   # different
            ShardedResultStore(root=root, num_shards=1),   # degenerate
            ResultStore(root=root),                        # unsharded
        ):
            for key in self.KEYS[:6]:
                got = reader.get(key)
                assert got is not None
                assert got.routed_qasm == f"// {key}\n"
            assert reader.get("deadbeef") is not None

    def test_stats_aggregate_and_count_disk_once(self, tmp_path):
        store = ShardedResultStore(root=str(tmp_path / "s"), num_shards=4)
        for key in self.KEYS[:5]:
            store.put(entry(key))
        store.get(self.KEYS[0])
        store.get("f" * 64)  # miss
        stats = store.stats()
        assert stats["shards"] == 4
        assert stats["puts"] == 5
        assert stats["memory_hits"] == 1
        assert stats["misses"] == 1
        assert stats["persistent"]
        assert stats["disk_entries"] == 5  # shared tree counted once

    def test_total_memory_bound_split_across_shards(self):
        store = ShardedResultStore(max_memory_entries=8, num_shards=4)
        for key in self.KEYS:
            store.put(entry(key))
        # ceil(8/4) = 2 per shard: the facade never holds more than
        # num_shards * per_shard entries in memory.
        assert store.stats()["memory_entries"] <= 8
        assert all(
            len(shard._memory) <= 2 for shard in store._shards
        )

    def test_clear_memory_falls_back_to_disk(self, tmp_path):
        store = ShardedResultStore(root=str(tmp_path / "s"), num_shards=4)
        store.put(entry(self.KEYS[0]))
        store.clear_memory()
        assert store.stats()["memory_entries"] == 0
        assert store.get(self.KEYS[0]) is not None
        assert store.stats()["disk_hits"] == 1

    def test_invalid_construction(self):
        with pytest.raises(ReproError, match="num_shards"):
            ShardedResultStore(num_shards=0)
        with pytest.raises(ReproError, match="max_memory_entries"):
            ShardedResultStore(max_memory_entries=0)


class TestConcurrency:
    def test_parallel_put_get_is_consistent(self, tmp_path):
        store = ResultStore(root=str(tmp_path / "store"), max_memory_entries=8)
        errors = []

        def hammer(worker: int) -> None:
            try:
                for i in range(25):
                    key = f"w{worker % 4}i{i % 6}"
                    store.put(entry(key, qasm=f"// {key}\n"))
                    got = store.get(key)
                    assert got is None or got.routed_qasm == f"// {key}\n"
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
