"""ServiceClient polling discipline: capped exponential backoff and
the server-directed ``Retry-After`` override.

No server here — ``job``/``healthz`` are monkeypatched and
``time.sleep`` is recorded, so the schedule itself is under test (the
end-to-end paths live in ``test_server.py``)."""

import time

import pytest

from repro.service.client import ServiceClient, ServiceClientError


@pytest.fixture()
def sleeps(monkeypatch):
    """Record every sleep the client takes (without actually sleeping)."""
    recorded = []
    monkeypatch.setattr(
        "repro.service.client.time.sleep", lambda s: recorded.append(s)
    )
    return recorded


@pytest.fixture()
def client():
    return ServiceClient("http://127.0.0.1:1")  # never actually dialled


class TestBackoffSchedule:
    def test_poll_intervals_double_up_to_the_cap(
        self, client, monkeypatch, sleeps
    ):
        """The fixed-50ms hammering is gone: polls start fast and decay
        to one request per POLL_MAX_INTERVAL."""
        snapshots = iter(
            [{"state": "running"}] * 9 + [{"state": "done", "id": "job-1"}]
        )
        monkeypatch.setattr(
            client, "job", lambda job_id: next(snapshots)
        )
        reply = client.wait_for_job("job-1", timeout=60)
        assert reply["state"] == "done"
        assert sleeps[:4] == [0.025, 0.05, 0.1, 0.2]  # doubling
        assert max(sleeps) <= client.POLL_MAX_INTERVAL
        assert sleeps[-1] == client.POLL_MAX_INTERVAL  # capped, not growing

    def test_retry_after_overrides_the_local_schedule(
        self, client, monkeypatch, sleeps
    ):
        """A 429'd poll waits exactly what the server asked for, then
        resumes polling (the backoff state machine is not reset)."""
        responses = iter(
            [
                ServiceClientError("throttled", status=429, retry_after=7.0),
                {"state": "running"},
                {"state": "done", "id": "job-2"},
            ]
        )

        def poll(job_id):
            item = next(responses)
            if isinstance(item, Exception):
                raise item
            return item

        monkeypatch.setattr(client, "job", poll)
        reply = client.wait_for_job("job-2", timeout=60)
        assert reply["state"] == "done"
        assert sleeps[0] == 7.0  # the server's number, not 0.025
        assert sleeps[1] == 0.05  # schedule already advanced one doubling

    def test_non_429_errors_propagate_immediately(
        self, client, monkeypatch, sleeps
    ):
        def poll(job_id):
            raise ServiceClientError("gone", status=404)

        monkeypatch.setattr(client, "job", poll)
        with pytest.raises(ServiceClientError) as excinfo:
            client.wait_for_job("job-3", timeout=60)
        assert excinfo.value.status == 404
        assert sleeps == []  # no retry loop on a hard error

    def test_terminal_states_stop_polling(self, client, monkeypatch, sleeps):
        for state in ("done", "failed", "cancelled"):
            monkeypatch.setattr(
                client, "job", lambda job_id, s=state: {"state": s}
            )
            assert client.wait_for_job("job-4")["state"] == state
        assert sleeps == []

    def test_sleep_never_overshoots_the_deadline(self, client, monkeypatch):
        """Backoff clamps to the remaining budget instead of sleeping
        past the caller's timeout."""
        recorded = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: recorded.append(s)
        )
        deadline = time.monotonic() + 0.5
        nxt = client._backoff_sleep(2.0, deadline, retry_after=99.0)
        assert recorded[0] <= 0.5
        assert nxt == client.POLL_MAX_INTERVAL

    def test_wait_until_healthy_backs_off_then_succeeds(
        self, client, monkeypatch, sleeps
    ):
        attempts = iter(
            [
                ServiceClientError("refused"),
                ServiceClientError("refused"),
                {"status": "ok"},
            ]
        )

        def healthz():
            item = next(attempts)
            if isinstance(item, Exception):
                raise item
            return item

        monkeypatch.setattr(client, "healthz", healthz)
        assert client.wait_until_healthy(timeout=30)["status"] == "ok"
        assert sleeps == [0.025, 0.05]

    def test_timeout_raises_with_context(self, client, monkeypatch, sleeps):
        monkeypatch.setattr(client, "job", lambda job_id: {"state": "queued"})
        fake_now = [0.0]
        monkeypatch.setattr(
            "repro.service.client.time.monotonic",
            lambda: fake_now.__setitem__(0, fake_now[0] + 0.3) or fake_now[0],
        )
        with pytest.raises(ServiceClientError, match="did not finish"):
            client.wait_for_job("job-5", timeout=1.0)
