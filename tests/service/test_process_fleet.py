"""Process-worker fleet: parallelism tier, crash isolation, timeouts,
cancellation of running jobs, and lane recovery.

The helpers jobs run are module-level functions so they pickle under
every multiprocessing start method — CI runs this module under both
``fork`` and ``spawn`` via ``REPRO_MP_START_METHOD``.
"""

import os
import time

import pytest

from repro.service.request import CompileRequest
from repro.service.scheduler import CoalescingScheduler
from repro.service.store import ResultStore, StoredResult
from repro.service.workers import WorkerLane, resolve_mp_context

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[3];
cx q[1], q[2];
measure q -> c;
"""

#: Seed values the helper compile functions interpret as directives.
CRASH_SEED = 666
#: Seeds >= this sleep (seed - SLEEP_BASE) / 100 seconds before returning.
SLEEP_BASE = 1000


def request(seed: int = 0) -> CompileRequest:
    return CompileRequest.from_payload(
        {"qasm": QASM, "seed": seed, "trials": 1}
    )


def scripted_compile(req, circuit=None, key=None) -> StoredResult:
    """Picklable compile stand-in: the seed scripts the behaviour
    (hard process death for CRASH_SEED, a sleep for SLEEP_BASE+n)."""
    if req.seed == CRASH_SEED:
        os._exit(13)  # simulates OOM-kill/segfault: no exception, no cleanup
    if req.seed >= SLEEP_BASE:
        time.sleep((req.seed - SLEEP_BASE) / 100.0)
    return StoredResult(
        key=key or req.fingerprint(),
        routed_qasm=f"OPENQASM 2.0;\n// seed {req.seed} pid {os.getpid()}\n",
        request=req.summary(),
    )


@pytest.fixture()
def fleet():
    scheduler = CoalescingScheduler(
        store=ResultStore(),
        workers=2,
        compile_fn=scripted_compile,
        execution="process",
    )
    yield scheduler
    scheduler.shutdown()


def wait_for_state(job, state: str, timeout: float = 10.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state == state:
            return
        time.sleep(0.005)
    raise AssertionError(f"{job.id} never reached {state!r} (is {job.state})")


class TestProcessExecution:
    def test_real_compile_end_to_end(self):
        """The production path: execute_request in a worker process,
        result shipped back as a StoredResult."""
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, execution="process"
        )
        try:
            job = scheduler.wait(scheduler.submit(request()), timeout=120)
            assert job.state == "done"
            assert job.result.routed_qasm.startswith("OPENQASM")
            assert job.result.metrics["g_ori"] > 0
            assert scheduler.stats()["execution"] == "process"
        finally:
            scheduler.shutdown()

    def test_jobs_run_outside_the_server_process(self, fleet):
        job = fleet.wait(fleet.submit(request(1)), timeout=60)
        pid = int(job.result.routed_qasm.rsplit("pid", 1)[1])
        assert pid != os.getpid()

    def test_coalescing_and_store_contracts_survive_process_dispatch(
        self, fleet
    ):
        first = fleet.wait(fleet.submit(request(2)), timeout=60)
        assert not first.cached
        second = fleet.submit(request(2))
        assert second.cached  # store-first answering, byte-identical path
        assert second.result.key == first.result.key
        assert fleet.stats()["executions"] == 1


class TestCrashIsolation:
    def test_crashed_worker_fails_job_and_pool_recovers(self, fleet):
        """A fingerprint that kills every worker it touches walks the
        whole self-healing ladder: crash -> retry -> retry -> poison
        quarantine (crash_retries=2 dispatches land exactly on the
        poison_threshold=3 crash count)."""
        crash = fleet.submit(request(CRASH_SEED))
        fleet.wait(crash, timeout=60)
        assert crash.state == "failed"
        assert crash.error_kind == "poison"
        assert "quarantined" in crash.error
        # The fleet recovered: the same scheduler still executes.
        after = fleet.wait(fleet.submit(request(3)), timeout=60)
        assert after.state == "done"
        stats = fleet.stats()
        assert stats["worker_crashes"] == 3
        assert stats["retries"] == 2
        assert stats["poisoned"] == 1
        assert stats["lane_restarts"] >= 1
        # Resubmitting a quarantined fingerprint fails fast — no worker
        # process is fed to it again.
        again = fleet.submit(request(CRASH_SEED))
        assert again.state == "failed"
        assert again.error_kind == "poison"
        assert fleet.stats()["worker_crashes"] == 3

    def test_sibling_jobs_unaffected_by_crash(self, fleet):
        """One worker process dying must fail exactly its own job —
        lane-per-dispatcher isolation, unlike a shared pool where one
        crash breaks every queued future."""
        jobs = [
            fleet.submit(request(CRASH_SEED)),
            fleet.submit(request(SLEEP_BASE + 20)),  # 0.2s sibling
            fleet.submit(request(4)),
            fleet.submit(request(5)),
        ]
        for job in jobs:
            fleet.wait(job, timeout=60)
        assert jobs[0].state == "failed"
        assert jobs[0].error_kind == "poison"
        assert [job.state for job in jobs[1:]] == ["done"] * 3
        assert fleet.stats()["worker_crashes"] == 3


class TestTimeoutsAndCancellation:
    def test_execution_timeout_recycles_the_worker(self, fleet):
        slow = fleet.submit(request(SLEEP_BASE + 1000), timeout=0.3)  # 10s job
        fleet.wait(slow, timeout=30)
        assert slow.state == "failed"
        assert slow.error_kind == "timeout"
        assert fleet.stats()["timeouts"] == 1
        # The lane rebuilt: new jobs still execute.
        after = fleet.wait(fleet.submit(request(6)), timeout=60)
        assert after.state == "done"
        assert fleet.stats()["lane_restarts"] >= 1

    def test_cancel_running_job_terminates_the_process(self, fleet):
        slow = fleet.submit(request(SLEEP_BASE + 1500))  # 15s job
        wait_for_state(slow, "running")
        cancelled = fleet.cancel(slow.id)
        assert cancelled is slow
        fleet.wait(slow, timeout=30)
        assert slow.state == "cancelled"
        assert slow.event.is_set()
        # Cancellation must not poison the lane for the next job.
        after = fleet.wait(fleet.submit(request(7)), timeout=60)
        assert after.state == "done"
        assert fleet.stats()["cancelled"] == 1


class TestWorkerLane:
    def test_lane_runs_and_restarts_after_kill(self):
        lane = WorkerLane(scripted_compile, resolve_mp_context())
        try:
            result = lane.run(request(8), None, "lane-key")
            assert result.key == "lane-key"
            lane.kill()
            assert lane.restarts == 1
            again = lane.run(request(9), None, "lane-key-2")
            assert again.key == "lane-key-2"
        finally:
            lane.shutdown()

    def test_compile_exceptions_propagate_unchanged(self):
        """A Python exception inside the compile is a job failure, not
        a crash: it pickles back and the pool stays healthy."""
        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=_raising_compile,
            execution="process",
        )
        try:
            job = scheduler.submit(request(10))
            scheduler.wait(job, timeout=60)
            assert job.state == "failed"
            assert job.error_kind == "error"
            assert "scripted failure" in job.error
            assert scheduler.stats()["worker_crashes"] == 0
            assert scheduler.stats()["lane_restarts"] == 0
        finally:
            scheduler.shutdown()


def _raising_compile(req, circuit=None, key=None):
    raise ValueError("scripted failure inside the worker")
