"""CompileRequest validation and content-address fingerprinting."""

import pytest

from repro.exceptions import QasmError, ReproError
from repro.service.request import (
    CompileRequest,
    RequestError,
    execute_request,
)

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[3];
cx q[1], q[2];
measure q -> c;
"""

# Gate-identical program: different whitespace, comments, register
# names, and an explicit 2-arg measure list instead of the broadcast.
QASM_RESTYLED = """OPENQASM 2.0;
include "qelib1.inc";
// restyled but identical
qreg wires[4];
creg bits[4];
h    wires[0];
cx wires[0] , wires[3];
cx wires[1], wires[2];
measure wires[0] -> bits[0];
measure wires[1] -> bits[1];
measure wires[2] -> bits[2];
measure wires[3] -> bits[3];
"""


class TestValidation:
    def test_minimal_payload(self):
        request = CompileRequest.from_payload({"qasm": QASM})
        assert request.device == "ibm_q20_tokyo"
        assert request.pipeline == "paper_default"

    def test_rejects_non_dict(self):
        with pytest.raises(RequestError, match="JSON object"):
            CompileRequest.from_payload([1, 2])

    def test_rejects_missing_qasm(self):
        with pytest.raises(RequestError, match="qasm"):
            CompileRequest.from_payload({"device": "ibm_q20_tokyo"})

    def test_rejects_unknown_field(self):
        with pytest.raises(RequestError, match="trialz"):
            CompileRequest.from_payload({"qasm": QASM, "trialz": 3})

    def test_rejects_unknown_preset(self):
        with pytest.raises(ReproError, match="unknown pipeline preset"):
            CompileRequest.from_payload({"qasm": QASM, "pipeline": "nope"})

    def test_rejects_unknown_objective(self):
        with pytest.raises(RequestError, match="objective"):
            CompileRequest.from_payload({"qasm": QASM, "objective": "nope"})

    def test_rejects_bad_trials(self):
        with pytest.raises(RequestError, match="trials"):
            CompileRequest.from_payload({"qasm": QASM, "trials": 0})
        with pytest.raises(RequestError, match="integer"):
            CompileRequest.from_payload({"qasm": QASM, "trials": "five"})

    def test_rejects_unknown_config_field(self):
        with pytest.raises(RequestError, match="config field"):
            CompileRequest.from_payload(
                {"qasm": QASM, "config": {"bogus": 1}}
            )

    def test_rejects_bad_heuristic_mode(self):
        with pytest.raises(RequestError, match="heuristic mode"):
            CompileRequest.from_payload(
                {"qasm": QASM, "config": {"mode": "psychic"}}
            )

    def test_config_round_trips_via_summary(self):
        request = CompileRequest.from_payload(
            {"qasm": QASM, "config": {"mode": "basic", "decay_delta": 0.01}}
        )
        assert request.summary()["config"] == {
            "mode": "basic",
            "decay_delta": 0.01,
        }
        assert request.heuristic_config().mode == "basic"

    def test_bad_qasm_surfaces_at_fingerprint(self):
        request = CompileRequest.from_payload({"qasm": "not a program"})
        with pytest.raises(QasmError):
            request.fingerprint()


class TestFingerprint:
    def test_deterministic(self):
        a = CompileRequest.from_payload({"qasm": QASM})
        assert a.fingerprint() == a.fingerprint()

    def test_textual_restyling_coalesces(self):
        # Same gate list through parsing => same content address, even
        # though the QASM bytes differ wildly.
        a = CompileRequest.from_payload({"qasm": QASM})
        b = CompileRequest.from_payload({"qasm": QASM_RESTYLED})
        assert a.fingerprint() == b.fingerprint()

    @pytest.mark.parametrize(
        "override",
        [
            {"seed": 7},
            {"trials": 2},
            {"traversals": 1},
            {"objective": "depth"},
            {"pipeline": "fast"},
            {"device": "ibm_qx5"},
            {"config": {"mode": "basic"}},
        ],
    )
    def test_any_knob_changes_the_key(self, override):
        base = CompileRequest.from_payload({"qasm": QASM})
        other = CompileRequest.from_payload({"qasm": QASM, **override})
        assert base.fingerprint() != other.fingerprint()

    def test_gate_change_changes_the_key(self):
        base = CompileRequest.from_payload({"qasm": QASM})
        changed = CompileRequest.from_payload(
            {"qasm": QASM.replace("h q[0];", "x q[0];")}
        )
        assert base.fingerprint() != changed.fingerprint()


class TestExecuteRequest:
    def test_produces_compliant_stored_result(self):
        from repro.hardware import ibm_q20_tokyo
        from repro.qasm import parse_qasm
        from repro.verify import is_hardware_compliant

        request = CompileRequest.from_payload({"qasm": QASM, "trials": 2})
        entry = execute_request(request)
        assert entry.key == request.fingerprint()
        routed = parse_qasm(entry.routed_qasm)
        assert is_hardware_compliant(routed, ibm_q20_tokyo())
        assert entry.metrics["g_tot"] == entry.metrics["g_ori"] + entry.metrics["g_add"]
        assert entry.properties["pass_timings"]
        assert entry.request["trials"] == 2

    def test_deterministic_output(self):
        request = CompileRequest.from_payload({"qasm": QASM, "trials": 2})
        assert (
            execute_request(request).routed_qasm
            == execute_request(request).routed_qasm
        )
