"""HTTP API end-to-end: a real ThreadingHTTPServer on an ephemeral port.

Covers the acceptance path: a repeated identical ``POST /compile`` is
answered from the persistent store (hit counters prove it) without a
second pipeline execution, and the output is hardware-compliant.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.hardware import get_device
from repro.qasm import parse_qasm
from repro.service import (
    ResultStore,
    ServiceClient,
    ServiceClientError,
    build_server,
    serve_url,
    shutdown_service,
    start_in_thread,
)
from repro.verify import is_hardware_compliant

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0], q[4];
cx q[1], q[3];
ccx q[0], q[2], q[4];
measure q -> c;
"""


@pytest.fixture()
def service(tmp_path):
    """A running server + client over a persistent store in tmp_path."""
    store = ResultStore(root=str(tmp_path / "store"))
    server = build_server(port=0, store=store, workers=2)
    start_in_thread(server)
    client = ServiceClient(serve_url(server), timeout=60)
    client.wait_until_healthy()
    try:
        yield client, store
    finally:
        shutdown_service(server)


class TestCompileEndpoint:
    def test_compile_returns_compliant_qasm(self, service):
        client, _ = service
        reply = client.compile(QASM, trials=2)
        assert reply["state"] == "done"
        assert not reply["cached"]
        routed = parse_qasm(reply["result"]["routed_qasm"])
        assert is_hardware_compliant(routed, get_device("ibm_q20_tokyo"))
        metrics = reply["result"]["metrics"]
        assert metrics["g_tot"] == metrics["g_ori"] + metrics["g_add"]
        assert reply["result"]["properties"]["pass_timings"]

    def test_repeat_post_is_a_store_hit(self, service):
        client, store = service
        first = client.compile(QASM, trials=2)
        before = store.stats()
        second = client.compile(QASM, trials=2)
        after = store.stats()
        assert second["cached"]
        assert after["hits"] == before["hits"] + 1
        assert after["puts"] == before["puts"]  # nothing recompiled
        assert (
            second["result"]["routed_qasm"] == first["result"]["routed_qasm"]
        )
        stats = client.stats()
        assert stats["scheduler"]["executions"] == 1
        assert stats["scheduler"]["store_answered"] == 1

    def test_survives_memory_tier_flush(self, service):
        """The second hit can come from disk, not just the LRU."""
        client, store = service
        client.compile(QASM, trials=1)
        store.clear_memory()
        reply = client.compile(QASM, trials=1)
        assert reply["cached"]
        assert store.stats()["disk_hits"] == 1

    def test_async_compile_and_job_poll(self, service):
        client, _ = service
        ack = client.compile(QASM, trials=1, seed=5, wait=False)
        assert "job_id" in ack
        snapshot = client.wait_for_job(ack["job_id"])
        assert snapshot["state"] == "done"
        assert snapshot["result"]["routed_qasm"].startswith("OPENQASM")

    def test_directed_device_pipeline(self, service):
        client, _ = service
        reply = client.compile(
            QASM, device="ibm_qx5", pipeline="directed_device", trials=1
        )
        routed = parse_qasm(reply["result"]["routed_qasm"])
        assert is_hardware_compliant(
            routed, get_device("ibm_qx5"), check_direction=True
        )


class TestBatchEndpoint:
    def test_batch_with_duplicates_and_pipeline_mix(self, service):
        client, _ = service
        reply = client.batch(
            [
                {"qasm": QASM, "trials": 1},
                {"qasm": QASM, "trials": 1},  # duplicate -> coalesces
                {"qasm": QASM, "trials": 1, "pipeline": "fast"},
            ]
        )
        assert reply["failed"] == 0
        assert len(reply["results"]) == 3
        assert reply["results"][0]["id"] == reply["results"][1]["id"]
        stats = client.stats()
        assert stats["scheduler"]["executions"] == 2
        assert stats["scheduler"]["coalesced"] == 1

    def test_batch_per_request_priority_overrides_batch_default(
        self, service
    ):
        client, _ = service
        reply = client.batch(
            [
                {"qasm": QASM, "trials": 1, "seed": 31, "priority": 7},
                {"qasm": QASM, "trials": 1, "seed": 32},
            ],
            priority=2,
        )
        assert reply["results"][0]["priority"] == 7
        assert reply["results"][1]["priority"] == 2

    def test_batch_validation(self, service):
        client, _ = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.batch([])
        assert excinfo.value.status == 400


class TestReadEndpoints:
    def test_devices_matches_catalog(self, service):
        from repro.hardware.devices import device_catalog

        client, _ = service
        assert client.devices() == device_catalog()

    def test_healthz(self, service):
        client, _ = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0

    def test_stats_shape(self, service):
        client, _ = service
        client.compile(QASM, trials=1)
        stats = client.stats()
        assert stats["store"]["persistent"]
        assert stats["scheduler"]["workers"] == 2
        assert "paper_default" in stats["scheduler"]["pass_timings"]
        # Engine-cache counters surfaced end-to-end (satellite task).
        assert stats["engine_cache"]["entries"] > 0
        assert stats["requests_served"] > 0


class TestErrorPaths:
    def test_bad_qasm_is_400(self, service):
        client, _ = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.compile("this is not qasm")
        assert excinfo.value.status == 400

    def test_unknown_device_is_400(self, service):
        client, _ = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.compile(QASM, device="ibm_q9000")
        assert excinfo.value.status == 400
        assert "unknown device" in str(excinfo.value)

    def test_unknown_preset_is_400(self, service):
        client, _ = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.compile(QASM, pipeline="warp_speed")
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.job("job-424242")
        assert excinfo.value.status == 404

    def test_unknown_path_is_404(self, service):
        client, _ = service
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("GET", "/teapot")
        assert excinfo.value.status == 404

    def test_non_json_body_is_400(self, service):
        client, _ = service
        request = urllib.request.Request(
            f"{client.base_url}/compile",
            data=b"not json at all",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_bad_config_value_is_400(self, service):
        """Un-coercible config values must 400, not drop the socket."""
        client, _ = service
        with pytest.raises(ServiceClientError) as excinfo:
            client.compile(QASM, config={"extended_set_size": "abc"})
        assert excinfo.value.status == 400
        assert "extended_set_size" in str(excinfo.value)

    def test_bad_priority_is_400(self, service):
        client, _ = service
        request = urllib.request.Request(
            f"{client.base_url}/compile",
            data=json.dumps({"qasm": QASM, "priority": "high"}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert "priority" in json.loads(excinfo.value.read())["error"]

    def test_oversized_body_gets_a_400_response(self, service):
        """The 400 must reach a keep-alive client still sending."""
        import http.client

        from repro.service.server import MAX_BODY_BYTES

        client, _ = service
        host, port = client.base_url[len("http://"):].split(":")
        body = b'{"qasm": "' + b"x" * (MAX_BODY_BYTES + 1) + b'"}'
        conn = http.client.HTTPConnection(host, int(port), timeout=30)
        try:
            conn.request(
                "POST",
                "/compile",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            assert response.status == 400
            assert b"exceeds" in response.read()
        finally:
            conn.close()

    def test_circuit_too_big_for_device_fails_cleanly(self, service):
        client, _ = service
        big = QASM.replace("q[5]", "q[9]").replace("c[5]", "c[9]")
        with pytest.raises(ServiceClientError) as excinfo:
            client.compile(big, device="ibm_qx2")  # 9q circuit, 5q device
        assert excinfo.value.status == 500  # surfaces as a failed job
        assert "needs" in str(excinfo.value) or "qubits" in str(excinfo.value)


class TestKeepAliveHygiene:
    def test_post_to_unknown_path_keeps_connection_usable(self, service):
        """The unread body of a 404'd POST must not corrupt the next
        request on the same keep-alive connection."""
        import http.client

        client, _ = service
        host, port = client.base_url[len("http://"):].split(":")
        conn = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            conn.request(
                "POST",
                "/nope",
                body=b'{"qasm": "junk"}',
                headers={"Content-Type": "application/json"},
            )
            first = conn.getresponse()
            assert first.status == 404
            first.read()
            # Same connection: must parse cleanly as a fresh request.
            conn.request("GET", "/healthz")
            second = conn.getresponse()
            assert second.status == 200
            assert b"ok" in second.read()
        finally:
            conn.close()

    def test_concurrent_first_device_catalog_calls(self, service):
        """GET /devices under concurrent first use returns one clean
        catalog per call (module-level lazy build must not corrupt)."""
        import repro.hardware.devices as devices_mod

        client, _ = service
        devices_mod._CATALOG = None  # force a fresh lazy build
        results = []
        threads = [
            threading.Thread(target=lambda: results.append(client.devices()))
            for _ in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 6
        expected = devices_mod.device_catalog()
        assert all(r == expected for r in results)
        assert len(expected) == len(devices_mod.DEVICE_BUILDERS)


class TestBackpressureHTTP:
    """429 + Retry-After, DELETE /jobs/<id>, and 504 timeout mapping,
    exercised against a deliberately congested one-worker scheduler."""

    @pytest.fixture()
    def congested(self):
        from repro.service import CoalescingScheduler

        release = threading.Event()

        def gated_compile(request, circuit=None, key=None):
            from repro.service.request import execute_request

            release.wait(timeout=30)
            return execute_request(request, circuit=circuit, key=key)

        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=gated_compile,
            max_queue_depth=1,
        )
        server = build_server(port=0, scheduler=scheduler)
        start_in_thread(server)
        client = ServiceClient(serve_url(server), timeout=60)
        client.wait_until_healthy()
        try:
            yield client, scheduler, release
        finally:
            release.set()
            shutdown_service(server)

    def _occupy_worker(self, client):
        """Start one running job (seed 100) so the queue is the only
        remaining capacity, and return its id."""
        ack = client.compile(QASM, trials=1, seed=100, wait=False)
        for _ in range(500):
            if client.job(ack["job_id"])["state"] == "running":
                return ack["job_id"]
            time.sleep(0.01)
        raise AssertionError("blocker never started running")

    def test_full_queue_is_429_with_retry_after(self, congested):
        client, scheduler, release = congested
        running = self._occupy_worker(client)
        queued = client.compile(QASM, trials=1, seed=101, wait=False)
        with pytest.raises(ServiceClientError) as excinfo:
            client.compile(QASM, trials=1, seed=102, wait=False)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after >= 1  # header made the round trip
        assert "queue is full" in str(excinfo.value)
        assert client.stats()["scheduler"]["rejected"] == 1
        # A duplicate of in-flight work coalesces instead of bouncing.
        dup = client.compile(QASM, trials=1, seed=101, wait=False)
        assert dup["job_id"] == queued["job_id"]
        release.set()
        assert client.wait_for_job(running)["state"] == "done"
        assert client.wait_for_job(queued["job_id"])["state"] == "done"

    def test_delete_cancels_queued_job(self, congested):
        client, scheduler, release = congested
        self._occupy_worker(client)
        queued = client.compile(QASM, trials=1, seed=103, wait=False)
        reply = client.cancel_job(queued["job_id"])
        assert reply["cancelled"] is True
        assert reply["state"] == "cancelled"
        # A status poll (GET) still answers 200 with the state visible.
        snapshot = client.job(queued["job_id"])
        assert snapshot["state"] == "cancelled"
        # DELETE is idempotent: cancelling again reports the same state.
        again = client.cancel_job(queued["job_id"])
        assert again["cancelled"] is True

    def test_delete_running_thread_job_is_409(self, congested):
        client, scheduler, release = congested
        running = self._occupy_worker(client)
        with pytest.raises(ServiceClientError) as excinfo:
            client.cancel_job(running)
        assert excinfo.value.status == 409
        assert "cancel" in str(excinfo.value)
        release.set()
        assert client.wait_for_job(running)["state"] == "done"

    def test_delete_unknown_job_is_404(self, congested):
        client, _, _ = congested
        with pytest.raises(ServiceClientError) as excinfo:
            client.cancel_job("job-424242")
        assert excinfo.value.status == 404

    def test_per_request_timeout_maps_to_504(self, congested):
        """A job whose deadline lapses while queued behind the blocker
        comes back as 504 once the worker reaches (and expires) it."""
        client, scheduler, release = congested
        self._occupy_worker(client)
        outcomes = []

        def post():
            try:
                outcomes.append(
                    client._request(
                        "POST",
                        "/compile",
                        {"qasm": QASM, "trials": 1, "seed": 104,
                         "wait": True, "timeout": 0.05},
                    )
                )
            except ServiceClientError as exc:
                outcomes.append(exc)

        poster = threading.Thread(target=post)
        poster.start()
        time.sleep(0.3)  # let the 0.05s deadline lapse in the queue
        release.set()
        poster.join(timeout=60)
        assert not poster.is_alive()
        assert isinstance(outcomes[0], ServiceClientError)
        assert outcomes[0].status == 504
        assert "timed out" in str(outcomes[0])

    def test_invalid_timeout_is_400(self, congested):
        client, _, _ = congested
        with pytest.raises(ServiceClientError) as excinfo:
            client._request(
                "POST",
                "/compile",
                {"qasm": QASM, "timeout": -3},
            )
        assert excinfo.value.status == 400
        assert "timeout" in str(excinfo.value)


class TestConcurrentClients:
    def test_parallel_identical_posts_coalesce(self, service):
        """Acceptance: N concurrent identical HTTP requests -> one
        pipeline execution (everyone gets the same artifact)."""
        client, _ = service
        replies = []
        errors = []

        def post():
            try:
                replies.append(client.compile(QASM, trials=2, seed=17))
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=post) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(replies) == 6
        outputs = {r["result"]["routed_qasm"] for r in replies}
        assert len(outputs) == 1
        assert client.stats()["scheduler"]["executions"] == 1
