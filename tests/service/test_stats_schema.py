"""GET /stats payload schema: the contract dashboards scrape.

The payload is assembled by ``repro.telemetry.snapshot.
service_snapshot`` and shared verbatim with the ``serve -v`` shutdown
report and the ``/metrics`` collectors, so schema drift here breaks
three surfaces at once.  Covers both execution tiers and the
fault-injection section (present only while a plan is active).
"""

import pytest

from repro.service import (
    ResultStore,
    ServiceClient,
    build_server,
    faults,
    serve_url,
    shutdown_service,
    start_in_thread,
)
from repro.service.faults import (
    FAULT_PLAN_ENV,
    SITE_WORKER,
    FaultPlan,
    FaultRule,
)
from repro.telemetry.snapshot import service_snapshot

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[3];
cx q[1], q[2];
measure q -> c;
"""

#: Keys every store section must carry (both memory-only and
#: persistent stores report these).
STORE_KEYS = {"hits", "misses", "puts", "evictions", "memory_entries"}

#: Keys every scheduler section must carry, regardless of tier.
SCHEDULER_KEYS = {
    "submitted", "executions", "completed", "failed", "queue_depth",
    "workers", "health", "execution",
}

ENGINE_CACHE_KEYS = {"hits", "misses"}


@pytest.fixture(autouse=True)
def clean_activation(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(params=["thread", "process"])
def service(request, tmp_path):
    store = ResultStore(root=str(tmp_path / "store"))
    server = build_server(
        port=0, store=store, workers=2, execution=request.param
    )
    start_in_thread(server)
    client = ServiceClient(serve_url(server), timeout=60)
    client.wait_until_healthy()
    try:
        yield client, request.param
    finally:
        shutdown_service(server)


class TestStatsSchema:
    def test_sections_and_keys_by_tier(self, service):
        client, tier = service
        client.compile(QASM, trials=1)
        stats = client.stats()
        assert set(stats) >= {
            "uptime_seconds", "requests_served", "store", "scheduler",
            "engine_cache",
        }
        assert "faults" not in stats  # no plan active
        assert stats["uptime_seconds"] >= 0.0
        assert stats["requests_served"] >= 1
        assert STORE_KEYS <= set(stats["store"])
        assert SCHEDULER_KEYS <= set(stats["scheduler"])
        assert ENGINE_CACHE_KEYS <= set(stats["engine_cache"])
        assert stats["scheduler"]["execution"] == tier
        assert stats["scheduler"]["executions"] == 1
        if tier == "process":
            # The process tier additionally reports per-lane health.
            assert stats["scheduler"]["lanes"]
            assert stats["scheduler"]["lane_restarts"] == 0

    def test_faults_section_present_only_when_active(self, service):
        client, _ = service
        plan = FaultPlan(
            seed=7,
            rules=[FaultRule(SITE_WORKER, "crash", probability=0.0)],
        )
        faults.activate(plan)
        try:
            stats = client.stats()
        finally:
            faults.deactivate()
        assert set(stats["faults"]) == {
            "seed", "rules", "fired_total", "fired",
        }
        assert stats["faults"]["seed"] == 7
        assert stats["faults"]["rules"] == 1
        assert client.stats().get("faults") is None  # deactivated again

    def test_snapshot_function_matches_endpoint(self, service):
        """/stats is service_snapshot() verbatim — same sections, and
        the monotonic counters agree (gauges like uptime may tick)."""
        client, _ = service
        client.compile(QASM, trials=1)
        stats = client.stats()
        direct = service_snapshot(None, None)
        assert ENGINE_CACHE_KEYS <= set(direct["engine_cache"])
        assert "store" not in direct  # None sections omitted
        assert "scheduler" not in direct
        assert stats["store"]["puts"] == 1
        assert stats["scheduler"]["store_answered"] == 0


class TestShutdownReportSharing:
    def test_server_state_snapshot_is_the_stats_payload(self, tmp_path):
        """ServiceState.snapshot() (the serve -v shutdown report body)
        and GET /stats return the same structure."""
        store = ResultStore(root=str(tmp_path / "store"))
        server = build_server(port=0, store=store, workers=1)
        start_in_thread(server)
        client = ServiceClient(serve_url(server), timeout=60)
        client.wait_until_healthy()
        try:
            client.compile(QASM, trials=1)
            endpoint = client.stats()
            local = server.state.snapshot()
        finally:
            shutdown_service(server)
        assert set(local) == set(endpoint)
        for section in ("store", "scheduler", "engine_cache"):
            assert set(local[section]) == set(endpoint[section])
        assert (
            local["scheduler"]["executions"]
            == endpoint["scheduler"]["executions"]
        )
