"""CoalescingScheduler: dedup, priorities, batching, failure handling.

The acceptance-critical property lives here: N concurrent identical
submissions trigger exactly ONE pipeline execution, and a repeat of an
already-stored request runs zero.
"""

import threading
import time

import pytest

from repro.exceptions import ReproError
from repro.service.request import CompileRequest
from repro.service.scheduler import CoalescingScheduler
from repro.service.store import ResultStore, StoredResult
from repro.service.workers import QueueFullError

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[3];
cx q[1], q[2];
measure q -> c;
"""


def request(seed: int = 0) -> CompileRequest:
    return CompileRequest.from_payload({"qasm": QASM, "seed": seed, "trials": 1})


class CountingCompiler:
    """Injectable compile_fn: counts executions, optionally stalls."""

    def __init__(self, delay: float = 0.0, fail: bool = False):
        self.delay = delay
        self.fail = fail
        self.executions = 0
        self._lock = threading.Lock()
        self.release = threading.Event()
        self.release.set()

    def __call__(
        self, req: CompileRequest, circuit=None, key=None
    ) -> StoredResult:
        with self._lock:
            self.executions += 1
        self.release.wait(5)
        if self.delay:
            time.sleep(self.delay)
        if self.fail:
            raise ReproError("injected compile failure")
        return StoredResult(
            key=key or req.fingerprint(),
            routed_qasm="OPENQASM 2.0;\n",
            properties={"pass_timings": [["FakePass", 0.001]]},
            request=req.summary(),
        )


class TestCoalescing:
    def test_concurrent_identical_requests_run_once(self):
        """N racing identical submissions -> exactly one execution."""
        compiler = CountingCompiler()
        compiler.release.clear()  # hold the worker so submissions race
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=2, compile_fn=compiler
        )
        try:
            jobs = []
            submit_errors = []

            def submit():
                try:
                    jobs.append(scheduler.submit(request()))
                except BaseException as exc:  # pragma: no cover
                    submit_errors.append(exc)

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert submit_errors == []
            compiler.release.set()
            for job in jobs:
                scheduler.wait(job, timeout=10)
            assert compiler.executions == 1
            assert len({job.id for job in jobs}) == 1  # one shared job
            stats = scheduler.stats()
            assert stats["executions"] == 1
            assert stats["coalesced"] == 7
            assert stats["submitted"] == 8
        finally:
            scheduler.shutdown()

    def test_repeat_after_completion_is_store_answered(self):
        compiler = CountingCompiler()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            first = scheduler.wait(scheduler.submit(request()), timeout=10)
            assert not first.cached
            second = scheduler.submit(request())
            assert second.cached
            assert second.state == "done"
            assert second.result.key == first.result.key
            assert compiler.executions == 1
            assert scheduler.stats()["store_answered"] == 1
        finally:
            scheduler.shutdown()

    def test_different_seeds_do_not_coalesce(self):
        compiler = CountingCompiler()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=2, compile_fn=compiler
        )
        try:
            jobs = [scheduler.submit(request(seed)) for seed in range(3)]
            for job in jobs:
                scheduler.wait(job, timeout=10)
            assert compiler.executions == 3
        finally:
            scheduler.shutdown()


class TestPrioritiesAndBatch:
    def test_higher_priority_runs_first(self):
        order = []
        order_lock = threading.Lock()
        started = threading.Event()  # the blocker reached the worker
        gate = threading.Event()  # release the blocker

        def recording_compiler(
            req: CompileRequest, circuit=None, key=None
        ) -> StoredResult:
            if req.seed == 99:
                started.set()
                gate.wait(5)  # hold the worker until the rest is queued
            with order_lock:
                order.append(req.seed)
            return StoredResult(
                key=key or req.fingerprint(),
                routed_qasm="OPENQASM 2.0;\n",
                request=req.summary(),
            )

        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=recording_compiler
        )
        try:
            # Occupy the single worker so queued priorities are honoured.
            blocker = scheduler.submit(request(99))
            assert started.wait(5)
            low = scheduler.submit(request(1), priority=0)
            high = scheduler.submit(request(2), priority=10)
            mid = scheduler.submit(request(3), priority=5)
            gate.set()
            for job in (blocker, low, high, mid):
                scheduler.wait(job, timeout=10)
            assert order[0] == 99  # the blocker was already running
            assert order[1:] == [2, 3, 1]  # then strictly by priority
        finally:
            scheduler.shutdown()

    def test_coalesced_submission_escalates_queued_priority(self):
        """The priority-inversion bugfix: a priority-10 request that
        coalesces onto a queued priority-0 job must raise the queued
        entry to priority 10 — not wait at priority 0 behind every
        mid-priority job in the queue."""
        order = []
        started = threading.Event()
        gate = threading.Event()

        def recording_compiler(
            req: CompileRequest, circuit=None, key=None
        ) -> StoredResult:
            if req.seed == 99:
                started.set()
                gate.wait(5)
            order.append(req.seed)
            return StoredResult(
                key=key or req.fingerprint(),
                routed_qasm="OPENQASM 2.0;\n",
                request=req.summary(),
            )

        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=recording_compiler
        )
        try:
            blocker = scheduler.submit(request(99))
            assert started.wait(5)
            low = scheduler.submit(request(1), priority=0)
            mid = scheduler.submit(request(2), priority=5)
            # Coalesces onto `low` and must escalate it above `mid`.
            dup = scheduler.submit(request(1), priority=10)
            assert dup.id == low.id
            assert low.priority == 10
            gate.set()
            for job in (blocker, low, mid):
                scheduler.wait(job, timeout=10)
            assert order == [99, 1, 2]
            # One execution despite the escalation re-push: the stale
            # heap entry was skipped, not run twice.
            assert scheduler.stats()["executions"] == 3
        finally:
            scheduler.shutdown()

    def test_escalation_never_lowers_priority(self):
        compiler = CountingCompiler()
        compiler.release.clear()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            blocker = scheduler.submit(request(99))
            high = scheduler.submit(request(1), priority=10)
            dup = scheduler.submit(request(1), priority=2)
            assert dup.id == high.id
            assert high.priority == 10
            compiler.release.set()
            for job in (blocker, high):
                scheduler.wait(job, timeout=10)
        finally:
            scheduler.shutdown()

    def test_batch_coalesces_internal_duplicates(self):
        compiler = CountingCompiler()
        compiler.release.clear()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            jobs = scheduler.submit_batch(
                [request(0), request(0), request(1)]
            )
            compiler.release.set()
            for job in jobs:
                scheduler.wait(job, timeout=10)
            assert jobs[0].id == jobs[1].id
            assert jobs[2].id != jobs[0].id
            assert compiler.executions == 2
        finally:
            scheduler.shutdown()


class TestFailureAndLifecycle:
    def test_failed_compile_marks_job_failed(self):
        compiler = CountingCompiler(fail=True)
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            job = scheduler.submit(request())
            job.wait(10)
            assert job.state == "failed"
            assert "injected compile failure" in job.error
            assert scheduler.stats()["failed"] == 1
            # The key is no longer in-flight: a retry schedules fresh.
            retry = scheduler.submit(request())
            assert retry.id != job.id
        finally:
            scheduler.shutdown()

    def test_job_lookup(self):
        compiler = CountingCompiler()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            job = scheduler.submit(request())
            assert scheduler.job(job.id) is job
            assert scheduler.job("job-999999") is None
        finally:
            scheduler.shutdown()

    def test_submit_after_shutdown_raises(self):
        scheduler = CoalescingScheduler(store=ResultStore(), workers=1)
        scheduler.shutdown()
        with pytest.raises(ReproError, match="shut down"):
            scheduler.submit(request())

    def test_pass_timing_aggregation(self):
        compiler = CountingCompiler()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            scheduler.wait(scheduler.submit(request(0)), timeout=10)
            scheduler.wait(scheduler.submit(request(1)), timeout=10)
            timings = scheduler.stats()["pass_timings"]
            assert timings["paper_default"]["FakePass"]["calls"] == 2
            assert timings["paper_default"]["FakePass"]["seconds"] > 0
        finally:
            scheduler.shutdown()

    def test_rejects_zero_workers(self):
        with pytest.raises(ReproError, match="workers"):
            CoalescingScheduler(store=ResultStore(), workers=0)

    def test_store_put_failure_still_serves_the_result(self):
        """A broken persistent tier degrades to uncached serving — a
        successfully compiled job must not be failed by an OSError in
        store.put (e.g. disk full)."""

        class BrokenStore(ResultStore):
            def put(self, entry):
                raise OSError("disk full")

        compiler = CountingCompiler()
        scheduler = CoalescingScheduler(
            store=BrokenStore(), workers=1, compile_fn=compiler
        )
        try:
            job = scheduler.wait(scheduler.submit(request()), timeout=10)
            assert job.state == "done"
            assert job.result is not None
            assert scheduler.stats()["store_put_failures"] == 1
            assert scheduler.stats()["failed"] == 0
        finally:
            scheduler.shutdown()

    def test_worker_reuses_submission_parse_and_key(self):
        """The worker receives the circuit and fingerprint resolved at
        submission instead of recomputing them."""
        seen = {}

        def capturing_compiler(req, circuit=None, key=None):
            seen["circuit"] = circuit
            seen["key"] = key
            return StoredResult(
                key=key, routed_qasm="OPENQASM 2.0;\n", request=req.summary()
            )

        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=capturing_compiler
        )
        try:
            job = scheduler.wait(scheduler.submit(request()), timeout=10)
            assert seen["key"] == job.key
            assert seen["circuit"] is job.circuit
            assert seen["circuit"].num_qubits == 4
        finally:
            scheduler.shutdown()

    def test_batch_per_item_priorities_validated(self):
        scheduler = CoalescingScheduler(store=ResultStore(), workers=1)
        try:
            with pytest.raises(ReproError, match="one priority per"):
                scheduler.submit_batch(
                    [request(0), request(1)], priorities=[1]
                )
        finally:
            scheduler.shutdown()


def wait_for_state(job, state: str, timeout: float = 5.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if job.state == state:
            return
        time.sleep(0.005)
    raise AssertionError(f"{job.id} never reached {state!r} (is {job.state})")


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self):
        compiler = CountingCompiler()
        compiler.release.clear()
        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=compiler,
            max_queue_depth=2,
        )
        try:
            blocker = scheduler.submit(request(99))
            wait_for_state(blocker, "running")
            first = scheduler.submit(request(1))
            scheduler.submit(request(2))
            with pytest.raises(QueueFullError) as excinfo:
                scheduler.submit(request(3))
            assert excinfo.value.retry_after >= 1.0
            # Coalescing and store answers don't occupy queue slots, so
            # a full queue still admits them.
            dup = scheduler.submit(request(1), priority=4)
            assert dup.id == first.id
            stats = scheduler.stats()
            assert stats["rejected"] == 1
            assert stats["queue_depth"] == 2
            compiler.release.set()
        finally:
            scheduler.shutdown()

    def test_rejects_invalid_queue_depth(self):
        with pytest.raises(ReproError, match="max_queue_depth"):
            CoalescingScheduler(store=ResultStore(), max_queue_depth=0)


class TestCancellation:
    def test_cancel_queued_job_wakes_all_waiters(self):
        compiler = CountingCompiler()
        compiler.release.clear()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            blocker = scheduler.submit(request(99))
            wait_for_state(blocker, "running")
            job = scheduler.submit(request(1))
            dup = scheduler.submit(request(1))
            assert dup.id == job.id
            cancelled = scheduler.cancel(job.id)
            assert cancelled is job
            assert job.state == "cancelled"
            assert job.event.is_set()  # every coalesced waiter wakes
            assert "cancelled" in job.error
            # The key left the in-flight table: a retry is a fresh job,
            # and the cancelled job was never executed.
            retry = scheduler.submit(request(1))
            assert retry.id != job.id
            compiler.release.set()
            scheduler.wait(retry, timeout=10)
            assert scheduler.stats()["cancelled"] == 1
            assert compiler.executions == 2  # blocker + retry only
        finally:
            scheduler.shutdown()

    def test_cancel_unknown_and_finished_jobs(self):
        compiler = CountingCompiler()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            assert scheduler.cancel("job-424242") is None
            job = scheduler.wait(scheduler.submit(request()), timeout=10)
            after = scheduler.cancel(job.id)
            assert after is job
            assert job.state == "done"  # unchanged: too late to cancel
        finally:
            scheduler.shutdown()

    def test_cancel_running_thread_job_is_refused(self):
        """The thread tier cannot interrupt a running compile; cancel
        returns the job still running instead of lying."""
        compiler = CountingCompiler()
        compiler.release.clear()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            job = scheduler.submit(request())
            wait_for_state(job, "running")
            result = scheduler.cancel(job.id)
            assert result is job
            assert job.state == "running"
            compiler.release.set()
            scheduler.wait(job, timeout=10)
            assert job.state == "done"
        finally:
            scheduler.shutdown()


class TestTimeouts:
    def test_queue_wait_deadline_fails_before_execution(self):
        compiler = CountingCompiler()
        compiler.release.clear()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            blocker = scheduler.submit(request(99))
            wait_for_state(blocker, "running")
            doomed = scheduler.submit(request(1), timeout=0.05)
            time.sleep(0.1)  # let the deadline lapse while queued
            compiler.release.set()
            scheduler.wait(doomed, timeout=10)
            assert doomed.state == "failed"
            assert doomed.error_kind == "timeout"
            assert "queue" in doomed.error
            assert compiler.executions == 1  # never dispatched
            assert scheduler.stats()["timeouts"] == 1
        finally:
            scheduler.shutdown()

    def test_coalescing_keeps_the_most_generous_deadline(self):
        compiler = CountingCompiler()
        compiler.release.clear()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compiler
        )
        try:
            blocker = scheduler.submit(request(99))
            wait_for_state(blocker, "running")
            job = scheduler.submit(request(1), timeout=0.05)
            dup = scheduler.submit(request(1))  # no timeout: most patient
            assert dup.id == job.id
            assert job.deadline is None
            time.sleep(0.1)
            compiler.release.set()
            scheduler.wait(job, timeout=10)
            assert job.state == "done"  # deadline was lifted
        finally:
            scheduler.shutdown()


class TestShutdownHygiene:
    def test_shutdown_fails_pending_jobs_when_worker_hangs(self):
        """The shutdown bugfix: a hung worker must not leave queued
        jobs' waiters blocked forever — shutdown fails them with a
        shutdown error and reports the un-joined thread."""
        hang = threading.Event()

        def hanging_compiler(req, circuit=None, key=None):
            hang.wait(20)
            return StoredResult(
                key=key or req.fingerprint(),
                routed_qasm="OPENQASM 2.0;\n",
                request=req.summary(),
            )

        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=hanging_compiler,
            join_timeout=0.3,
        )
        try:
            running = scheduler.submit(request(0))
            wait_for_state(running, "running")
            queued = scheduler.submit(request(1))
            unjoined = scheduler.shutdown(wait=True)
            assert unjoined == ["repro-compile-0"]
            assert queued.state == "failed"
            assert queued.error_kind == "shutdown"
            assert "shut down" in queued.error
            assert queued.event.is_set()  # waiters actually woke
            assert running.state == "failed"
            assert "unresponsive" in running.error
            assert scheduler.stats()["shutdown_unjoined"] == [
                "repro-compile-0"
            ]
        finally:
            hang.set()  # let the daemon thread drain

    def test_clean_shutdown_reports_no_unjoined_threads(self):
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=2, compile_fn=CountingCompiler()
        )
        job = scheduler.submit(request())
        assert scheduler.shutdown(wait=True) == []
        assert job.state == "done"  # drained, not failed
        assert scheduler.stats()["shutdown_unjoined"] == []
