"""Fault-injection switchboard: determinism, activation, spec wire
format, and the store/scheduler/client robustness behaviours it powers.

Chaos is only useful if it is *reproducible*: most tests here assert
that the same seed yields the same fault schedule, then that each seam
reacts to its injected failure the way the robustness tier promises.
"""

import json
import os
import threading

import pytest

from repro.service import faults
from repro.service.faults import (
    FAULT_PLAN_ENV,
    SITE_DISPATCH,
    SITE_HTTP,
    SITE_STORE_READ,
    SITE_STORE_WRITE,
    SITE_WORKER,
    FaultPlan,
    FaultPlanError,
    FaultRule,
)


@pytest.fixture(autouse=True)
def clean_activation(monkeypatch):
    """Every test starts with no active plan and no env plan, and
    leaves the process the same way."""
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


class TestDeterminism:
    def test_keyed_decisions_are_a_pure_function_of_seed_and_token(self):
        rules = [FaultRule(SITE_WORKER, "crash", probability=0.5)]
        first = FaultPlan(seed=42, rules=rules)
        second = FaultPlan(seed=42, rules=rules)
        tokens = [f"k{i:03d}#a0" for i in range(200)]
        schedule_a = [first.decide(SITE_WORKER, t) is not None for t in tokens]
        schedule_b = [
            second.decide(SITE_WORKER, t) is not None for t in tokens
        ]
        assert schedule_a == schedule_b
        assert any(schedule_a) and not all(schedule_a)  # p=0.5 actually draws

    def test_call_order_does_not_change_keyed_decisions(self):
        rules = [FaultRule(SITE_WORKER, "crash", probability=0.3)]
        forward = FaultPlan(seed=7, rules=rules)
        backward = FaultPlan(seed=7, rules=rules)
        tokens = [f"tok{i}" for i in range(64)]
        by_token_fwd = {
            t: forward.decide(SITE_WORKER, t) is not None for t in tokens
        }
        by_token_bwd = {
            t: backward.decide(SITE_WORKER, t) is not None
            for t in reversed(tokens)
        }
        assert by_token_fwd == by_token_bwd

    def test_different_seeds_differ(self):
        rules = [FaultRule(SITE_WORKER, "crash", probability=0.5)]
        tokens = [f"k{i}" for i in range(100)]
        a = [
            FaultPlan(seed=1, rules=rules).decide(SITE_WORKER, t) is not None
            for t in tokens
        ]
        b = [
            FaultPlan(seed=2, rules=rules).decide(SITE_WORKER, t) is not None
            for t in tokens
        ]
        assert a != b

    def test_unkeyed_site_replays_the_same_sequence(self):
        rules = [FaultRule(SITE_HTTP, "drop", probability=0.4)]
        a = FaultPlan(seed=9, rules=rules)
        b = FaultPlan(seed=9, rules=rules)
        seq_a = [a.decide(SITE_HTTP) is not None for _ in range(50)]
        seq_b = [b.decide(SITE_HTTP) is not None for _ in range(50)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_attempt_number_makes_crashes_transient(self):
        """The scheduler tokens are ``<key>#a<attempt>``: a fingerprint
        whose first attempt draws a crash gets an independent draw on
        retry, so p<1 crashes cannot all be permanent."""
        plan = FaultPlan(
            seed=3, rules=[FaultRule(SITE_WORKER, "crash", probability=0.5)]
        )
        outcomes = {
            key: [
                plan.decide(SITE_WORKER, f"{key}#a{attempt}") is not None
                for attempt in range(3)
            ]
            for key in (f"f{i:02d}" for i in range(40))
        }
        recovered = [
            o for o in outcomes.values() if o[0] and not all(o)
        ]
        assert recovered  # some first-attempt crashes pass on retry


class TestRulesAndCaps:
    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            seed=0,
            rules=[
                FaultRule(SITE_WORKER, "slow", probability=1.0, param=0.5),
                FaultRule(SITE_WORKER, "crash", probability=1.0),
            ],
        )
        rule = plan.decide(SITE_WORKER, "any")
        assert rule is not None and rule.kind == "slow"

    def test_match_targets_one_fingerprint(self):
        plan = FaultPlan(
            seed=0,
            rules=[
                FaultRule(
                    SITE_WORKER, "crash", probability=1.0, match="poisonous"
                )
            ],
        )
        assert plan.decide(SITE_WORKER, "poisonous-key#a0") is not None
        assert plan.decide(SITE_WORKER, "healthy-key#a0") is None
        assert plan.decide(SITE_WORKER, None) is None  # no token, no match

    def test_max_fires_caps_lifetime_firings(self):
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule(SITE_HTTP, "drop", probability=1.0, max_fires=3)],
        )
        fired = sum(plan.decide(SITE_HTTP) is not None for _ in range(10))
        assert fired == 3
        assert plan.stats()["fired_total"] == 3

    def test_max_fires_is_thread_safe(self):
        plan = FaultPlan(
            seed=0,
            rules=[
                FaultRule(SITE_WORKER, "crash", probability=1.0, max_fires=10)
            ],
        )
        hits = []

        def hammer(base: int) -> None:
            for i in range(50):
                if plan.decide(SITE_WORKER, f"t{base}-{i}") is not None:
                    hits.append(1)

        threads = [
            threading.Thread(target=hammer, args=(b,)) for b in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(hits) == 10

    def test_stats_shape(self):
        plan = FaultPlan(
            seed=5, rules=[FaultRule(SITE_WORKER, "crash", probability=1.0)]
        )
        plan.decide(SITE_WORKER, "x")
        stats = plan.stats()
        assert stats["seed"] == 5
        assert stats["rules"] == 1
        assert stats["fired"] == {f"{SITE_WORKER}:crash": 1}


class TestSpecAndValidation:
    def test_spec_round_trip(self):
        plan = FaultPlan(
            seed=11,
            rules=[
                FaultRule(SITE_WORKER, "crash", probability=0.25),
                FaultRule(
                    SITE_STORE_READ, "bit_rot", probability=0.1, max_fires=5
                ),
                FaultRule(SITE_DISPATCH, "slow", probability=1.0, param=0.2),
                FaultRule(
                    SITE_STORE_WRITE,
                    "torn_artifact",
                    probability=1.0,
                    match="abcd",
                ),
            ],
        )
        clone = FaultPlan.from_spec(plan.to_spec())
        assert clone.seed == plan.seed
        assert clone.rules == plan.rules
        # And survives a real JSON round trip (the env-var wire form).
        again = FaultPlan.from_spec(json.loads(json.dumps(plan.to_spec())))
        assert again.rules == plan.rules

    @pytest.mark.parametrize(
        "spec, message",
        [
            ([], "JSON object"),
            ({"rules": {}}, "must be a list"),
            ({"rules": ["x"]}, "JSON object"),
            ({"seed": "nope"}, "seed"),
            ({"rules": [{"site": "bogus.site", "kind": "crash"}]}, "site"),
            ({"rules": [{"site": SITE_WORKER, "kind": "bit_rot"}]}, "kind"),
            (
                {
                    "rules": [
                        {
                            "site": SITE_WORKER,
                            "kind": "crash",
                            "probability": 1.5,
                        }
                    ]
                },
                "probability",
            ),
            (
                {"rules": [{"site": SITE_WORKER, "kind": "crash", "oops": 1}]},
                "unknown fault rule field",
            ),
        ],
    )
    def test_malformed_specs_raise(self, spec, message):
        with pytest.raises(FaultPlanError, match=message):
            FaultPlan.from_spec(spec)


class TestActivation:
    def test_disabled_is_the_default(self):
        assert faults.maybe_inject(SITE_WORKER, token="x") is None
        assert faults.active_plan() is None

    def test_explicit_activation(self):
        plan = FaultPlan(
            seed=0, rules=[FaultRule(SITE_WORKER, "crash", probability=1.0)]
        )
        faults.activate(plan)
        rule = faults.maybe_inject(SITE_WORKER, token="x")
        assert rule is not None and rule.kind == "crash"
        faults.deactivate()
        assert faults.maybe_inject(SITE_WORKER, token="x") is None

    def test_env_activation_is_lazy(self, monkeypatch):
        spec = {
            "seed": 77,
            "rules": [
                {"site": SITE_WORKER, "kind": "crash", "probability": 1.0}
            ],
        }
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(spec))
        faults.reset()  # forget the fixture's resolution
        rule = faults.maybe_inject(SITE_WORKER, token="x")
        assert rule is not None
        assert faults.active_plan().seed == 77

    def test_env_plan_malformed_raises(self, monkeypatch):
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        faults.reset()
        with pytest.raises(FaultPlanError, match="not valid JSON"):
            faults.maybe_inject(SITE_WORKER, token="x")

    def test_deactivate_beats_env(self, monkeypatch):
        monkeypatch.setenv(
            FAULT_PLAN_ENV,
            json.dumps(
                {
                    "rules": [
                        {
                            "site": SITE_WORKER,
                            "kind": "crash",
                            "probability": 1.0,
                        }
                    ]
                }
            ),
        )
        faults.reset()
        faults.deactivate()
        assert faults.maybe_inject(SITE_WORKER, token="x") is None
