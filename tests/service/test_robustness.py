"""Robustness tier: store integrity + quarantine, self-healing
scheduler (crash retry, poison quarantine, supervision, degradation),
hardened client transport, Retry-After clamping, the ``repro store
scrub`` CLI verb, and shutdown hygiene under chaos.
"""

import io
import json
import os
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import faults
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.faults import (
    FAULT_PLAN_ENV,
    SITE_DISPATCH,
    SITE_STORE_WRITE,
    SITE_WORKER,
    FaultPlan,
    FaultRule,
)
from repro.service.request import CompileRequest
from repro.service.scheduler import (
    COLD_START_EXEC_ESTIMATE,
    MAX_RETRY_AFTER,
    MIN_RETRY_AFTER,
    CoalescingScheduler,
    LaneSupervisor,
)
from repro.service.store import (
    QUARANTINE_DIR,
    ResultStore,
    ShardedResultStore,
    StoredResult,
)

QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
cx q[0], q[3];
cx q[1], q[2];
measure q -> c;
"""


def request(seed: int = 0, pipeline: str = "paper_default") -> CompileRequest:
    return CompileRequest.from_payload(
        {"qasm": QASM, "seed": seed, "trials": 1, "pipeline": pipeline}
    )


def entry(key: str, qasm: str = "OPENQASM 2.0;\n// artifact\n") -> StoredResult:
    return StoredResult(
        key=key,
        routed_qasm=qasm,
        metrics={"g_add": 3},
        request={"device": "ibm_q20_tokyo"},
        compile_seconds=0.1,
        created_at=100.0,
    )


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    faults.reset()
    yield
    faults.reset()


# ----------------------------------------------------------------------
# Store integrity
# ----------------------------------------------------------------------


class TestStoreIntegrity:
    def test_bit_rot_is_quarantined_not_served(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root=str(root))
        store.put(entry("abcd" * 16))
        key = "abcd" * 16
        qasm_path = root / "ab" / f"{key}.qasm"
        data = bytearray(qasm_path.read_bytes())
        # One flipped bit, ASCII-preserving so the file still decodes
        # and the failure is the checksum, not a codec error.
        data[len(data) // 2] ^= 0x01
        qasm_path.write_bytes(bytes(data))
        store.clear_memory()
        assert store.get(key) is None  # never served corrupt
        assert store.stats()["quarantined"] == 1
        qdir = root / QUARANTINE_DIR / "ab"
        assert (qdir / f"{key}.qasm").exists()
        assert (qdir / f"{key}.json").exists()
        assert "artifact checksum" in (
            (qdir / f"{key}.reason.txt").read_text()
        )
        # The shard no longer holds the corpse; a re-put repopulates.
        assert not qasm_path.exists()
        store.put(entry(key))
        store.clear_memory()
        assert store.get(key) is not None

    def test_tampered_document_is_quarantined(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root=str(root))
        store.put(entry("beef" * 16))
        path = root / "be" / ("beef" * 16 + ".json")
        document = json.loads(path.read_text())
        document["metrics"]["g_add"] = 0  # falsified metric
        path.write_text(json.dumps(document))
        store.clear_memory()
        assert store.get("beef" * 16) is None
        assert store.stats()["quarantined"] == 1

    def test_injected_torn_write_is_caught_on_read(self, tmp_path):
        faults.activate(
            FaultPlan(
                seed=0,
                rules=[
                    FaultRule(
                        SITE_STORE_WRITE, "torn_artifact", probability=1.0
                    )
                ],
            )
        )
        store = ResultStore(root=str(tmp_path / "store"))
        store.put(entry("feed" * 16))
        faults.deactivate()
        store.clear_memory()
        assert store.get("feed" * 16) is None
        assert store.stats()["quarantined"] == 1

    def test_injected_write_error_raises_oserror(self, tmp_path):
        faults.activate(
            FaultPlan(
                seed=0,
                rules=[
                    FaultRule(SITE_STORE_WRITE, "write_error", probability=1.0)
                ],
            )
        )
        store = ResultStore(root=str(tmp_path / "store"))
        with pytest.raises(OSError, match="injected store write"):
            store.put(entry("dead" * 16))

    def test_injected_bit_rot_on_read_path(self, tmp_path):
        store = ResultStore(root=str(tmp_path / "store"))
        store.put(entry("cafe" * 16))
        store.clear_memory()
        faults.activate(
            FaultPlan(
                seed=0,
                rules=[
                    FaultRule(
                        faults.SITE_STORE_READ, "bit_rot", probability=1.0
                    )
                ],
            )
        )
        assert store.get("cafe" * 16) is None
        assert store.stats()["quarantined"] == 1

    def test_recover_cleans_tmp_and_orphaned_metadata(self, tmp_path):
        root = tmp_path / "store"
        seed = ResultStore(root=str(root))
        seed.put(entry("aaaa" * 16))
        # Simulate an interrupted writer: a tmp dropping and a metadata
        # document whose artifact never made it.
        (root / "aa" / "leftover.tmp").write_text("partial")
        (root / "bb").mkdir()
        (root / "bb" / ("bbbb" * 16 + ".json")).write_text("{}")
        store = ResultStore(root=str(root))
        assert store.last_recovery == {
            "tmp_removed": 1,
            "orphaned_metadata": 1,
        }
        assert not (root / "aa" / "leftover.tmp").exists()
        assert not (root / "bb" / ("bbbb" * 16 + ".json")).exists()
        assert (
            root / QUARANTINE_DIR / "bb" / ("bbbb" * 16 + ".json")
        ).exists()
        # The healthy entry survived recovery untouched.
        assert store.get("aaaa" * 16) is not None

    def test_scrub_reports_then_repairs(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root=str(root))
        for i in range(3):
            store.put(entry(f"{i}{i}{i}{i}" * 16))
        victim = root / "11" / ("1111" * 16 + ".qasm")
        victim.write_text("OPENQASM 2.0;\n// tampered\n")
        # Report-only: counts the damage, touches nothing.
        report = store.scrub(repair=False)
        assert report["scanned"] == 3
        assert report["ok"] == 2
        assert report["corrupt"] == 1
        assert report["quarantined"] == 0
        assert report["problems"] == [
            {"key": "1111" * 16, "problem": "artifact checksum mismatch"}
        ]
        assert victim.exists()
        # Repair: the corrupt entry moves to quarantine.
        repaired = store.scrub(repair=True)
        assert repaired["corrupt"] == 1
        assert repaired["quarantined"] == 1
        assert not victim.exists()
        clean = store.scrub(repair=False)
        assert clean["scanned"] == 2 and clean["corrupt"] == 0

    def test_scrub_counts_orphans_tmp_and_version_mismatch(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(root=str(root))
        store.put(entry("2222" * 16))
        (root / "22" / "junk.tmp").write_text("x")
        (root / "33").mkdir()
        (root / "33" / ("3333" * 16 + ".qasm")).write_text("orphan")
        path = root / "22" / ("2222" * 16 + ".json")
        document = json.loads(path.read_text())
        document["store_version"] = 999
        path.write_text(json.dumps(document))
        report = store.scrub(repair=False)
        assert report["tmp_files"] == 1
        assert report["orphaned_artifacts"] == 1
        assert report["version_mismatch"] == 1
        assert report["corrupt"] == 0  # a foreign version is not rot

    def test_sharded_store_delegates_scrub_and_recover(self, tmp_path):
        root = str(tmp_path / "store")
        sharded = ShardedResultStore(root=root, num_shards=4)
        for i in range(4):
            sharded.put(entry(f"{i:064x}"))
        report = sharded.scrub()
        assert report["scanned"] == 4 and report["corrupt"] == 0
        assert sharded.recover() == {"tmp_removed": 0, "orphaned_metadata": 0}
        assert sharded.last_recovery["tmp_removed"] == 0
        assert sharded.stats()["quarantined"] == 0


# ----------------------------------------------------------------------
# Self-healing scheduler
# ----------------------------------------------------------------------


def counting_compile_factory():
    calls = []

    def compile_fn(req, circuit=None, key=None):
        calls.append(req.pipeline)
        return StoredResult(
            key=key,
            routed_qasm=f"OPENQASM 2.0;\n// {req.pipeline}\n",
            properties={"pass_timings": []},
            request=req.summary(),
        )

    return compile_fn, calls


class TestSelfHealing:
    def test_transient_crash_recovers_via_retry(self):
        req = request(1)
        key = req.fingerprint()
        # Crash attempt 0 only: the retry's token (#a1) never matches.
        faults.activate(
            FaultPlan(
                seed=0,
                rules=[
                    FaultRule(
                        SITE_DISPATCH,
                        "crash",
                        probability=1.0,
                        match=f"{key}#a0",
                    )
                ],
            )
        )
        compile_fn, calls = counting_compile_factory()
        scheduler = CoalescingScheduler(
            store=ResultStore(), workers=1, compile_fn=compile_fn
        )
        try:
            job = scheduler.wait(scheduler.submit(req), timeout=30)
            assert job.state == "done"
            assert job.snapshot()["attempts"] == 2
            assert len(calls) == 1  # crashed before reaching the compile
            stats = scheduler.stats()
            assert stats["retries"] == 1
            assert stats["worker_crashes"] == 1
            assert stats["poisoned"] == 0
            assert stats["consecutive_crashes"] == 0  # reset on success
        finally:
            scheduler.shutdown()

    def test_poison_quarantine_and_fail_fast(self):
        req = request(2)
        key = req.fingerprint()
        faults.activate(
            FaultPlan(
                seed=0,
                rules=[
                    FaultRule(
                        SITE_DISPATCH, "crash", probability=1.0, match=key
                    )
                ],
            )
        )
        compile_fn, calls = counting_compile_factory()
        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=compile_fn,
            crash_retries=2,
            poison_threshold=3,
        )
        try:
            job = scheduler.wait(scheduler.submit(req), timeout=30)
            assert job.state == "failed"
            assert job.error_kind == "poison"
            assert calls == []  # never survived to the compile
            # Fail-fast on resubmission: no further crash is risked.
            again = scheduler.submit(req)
            assert again.state == "failed"
            assert again.error_kind == "poison"
            assert "refusing" in again.error
            stats = scheduler.stats()
            assert stats["worker_crashes"] == 3
            assert stats["poisoned"] == 1
            assert stats["poisoned_failures"] == 1
            # A healthy sibling fingerprint is unaffected.
            ok = scheduler.wait(scheduler.submit(request(3)), timeout=30)
            assert ok.state == "done"
        finally:
            scheduler.shutdown()

    def test_supervisor_backoff_ladder_and_breaker(self):
        supervisor = LaneSupervisor(
            backoff_base=0.1,
            backoff_max=1.0,
            breaker_threshold=3,
            breaker_cooldown=7.5,
        )
        assert supervisor.record_failure() == pytest.approx(0.1)
        assert supervisor.record_failure() == pytest.approx(0.2)
        # Third consecutive failure trips the breaker.
        assert supervisor.record_failure() == pytest.approx(7.5)
        assert supervisor.breaker_open
        assert supervisor.breaker_trips == 1
        snap = supervisor.snapshot()
        assert snap["breaker"] == "open"
        assert snap["consecutive_failures"] == 3
        supervisor.record_success()
        assert not supervisor.breaker_open
        assert supervisor.consecutive_failures == 0
        # The ladder caps at backoff_max before the breaker re-trips.
        supervisor.breaker_threshold = 10
        for _ in range(8):
            delay = supervisor.record_failure()
        assert delay == pytest.approx(1.0)

    def test_crash_retries_zero_fails_on_first_crash(self):
        req = request(4)
        faults.activate(
            FaultPlan(
                seed=0,
                rules=[
                    FaultRule(
                        SITE_DISPATCH,
                        "crash",
                        probability=1.0,
                        match=req.fingerprint(),
                    )
                ],
            )
        )
        compile_fn, _ = counting_compile_factory()
        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=compile_fn,
            crash_retries=0,
            poison_threshold=5,
        )
        try:
            job = scheduler.wait(scheduler.submit(req), timeout=30)
            assert job.state == "failed"
            assert job.error_kind == "crash"
            assert scheduler.stats()["retries"] == 0
        finally:
            scheduler.shutdown()


# ----------------------------------------------------------------------
# Graceful degradation + health
# ----------------------------------------------------------------------


class GatedCompiler:
    """Compile stand-in whose first job blocks until released, so the
    test can pile up a queue behind it (deterministic pressure)."""

    def __init__(self):
        self.gate = threading.Event()
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, req, circuit=None, key=None):
        with self._lock:
            first = not self.calls
            self.calls.append(req.pipeline)
        if first:
            self.gate.wait(30)
        return StoredResult(
            key=key,
            routed_qasm=f"OPENQASM 2.0;\n// {req.pipeline}\n",
            properties={"pass_timings": []},
            request=req.summary(),
        )


class TestDegradation:
    def test_queue_pressure_degrades_and_recovers(self):
        compiler = GatedCompiler()
        store = ResultStore()
        scheduler = CoalescingScheduler(
            store=store,
            workers=1,
            compile_fn=compiler,
            degrade=True,
            degrade_queue_threshold=1,
        )
        try:
            blocker = scheduler.submit(request(100))
            queued = [scheduler.submit(request(seed)) for seed in (101, 102)]
            # Pressure is visible while the queue is backed up.
            deadline = time.monotonic() + 5
            while scheduler.health() != "degraded":
                assert time.monotonic() < deadline, "never became degraded"
                time.sleep(0.01)
            compiler.gate.set()
            for job in (blocker, *queued):
                scheduler.wait(job, timeout=30)
            degraded = [job for job in queued if job.degraded]
            assert degraded, "queue pressure never degraded a dispatch"
            for job in degraded:
                assert job.state == "done"
                assert job.snapshot()["degraded"] is True
                assert job.result.properties["degraded"] is True
                assert (
                    job.result.properties["degraded_from"] == "paper_default"
                )
                # Degraded artifacts are never persisted: the key
                # promises the requested pipeline, not the fallback.
                assert store.get(job.key) is None
            assert "fast" in compiler.calls
            # The blocker itself may also have been degraded (it can be
            # dispatched after the queue already backed up) — count all.
            all_degraded = [
                job for job in (blocker, *queued) if job.degraded
            ]
            assert scheduler.stats()["degraded_executions"] == len(
                all_degraded
            )
            # Pressure gone -> healthy again.
            assert scheduler.health() == "ok"
        finally:
            compiler.gate.set()
            scheduler.shutdown()

    def test_degrade_off_by_default(self):
        compiler = GatedCompiler()
        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=compiler,
            degrade_queue_threshold=1,  # pressure defined, degrade off
        )
        try:
            blocker = scheduler.submit(request(200))
            queued = scheduler.submit(request(201))
            assert scheduler.health() == "ok"  # pressured but not degraded
            compiler.gate.set()
            for job in (blocker, queued):
                scheduler.wait(job, timeout=30)
            assert not queued.degraded
            assert compiler.calls == ["paper_default", "paper_default"]
        finally:
            compiler.gate.set()
            scheduler.shutdown()

    def test_non_degradable_preset_is_never_downgraded(self):
        compiler = GatedCompiler()
        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=compiler,
            degrade=True,
            degrade_queue_threshold=1,
        )
        try:
            # Every job is 'fast' — the preset with no cheaper
            # fallback — so nothing may ever be downgraded, no matter
            # when pressure is sampled.
            blocker = scheduler.submit(request(300, pipeline="fast"))
            queued = [
                scheduler.submit(request(seed, pipeline="fast"))
                for seed in (301, 302)
            ]
            compiler.gate.set()
            for job in (blocker, *queued):
                scheduler.wait(job, timeout=30)
            assert all(not job.degraded for job in (blocker, *queued))
            assert scheduler.stats()["degraded_executions"] == 0
        finally:
            compiler.gate.set()
            scheduler.shutdown()

    def test_draining_health_after_shutdown(self):
        scheduler = CoalescingScheduler(store=ResultStore(), workers=1)
        assert scheduler.health() == "ok"
        scheduler.shutdown()
        assert scheduler.health() == "draining"


# ----------------------------------------------------------------------
# Retry-After estimates
# ----------------------------------------------------------------------


class TestRetryAfterEstimate:
    @pytest.fixture()
    def scheduler(self):
        scheduler = CoalescingScheduler(store=ResultStore(), workers=2)
        yield scheduler
        scheduler.shutdown()

    def test_cold_start_uses_flat_estimate(self, scheduler):
        """Before any job completes the EWMA is empty; the estimate
        must not collapse to 0 (a thundering-herd retry storm)."""
        scheduler._queued = 4
        estimate = scheduler._retry_after_estimate()
        assert estimate == pytest.approx(
            (4 / 2) * COLD_START_EXEC_ESTIMATE
        )

    def test_clamped_to_floor(self, scheduler):
        scheduler._queued = 1
        scheduler._avg_exec_seconds = 1e-6
        assert scheduler._retry_after_estimate() == MIN_RETRY_AFTER

    def test_clamped_to_ceiling(self, scheduler):
        scheduler._queued = 10_000
        scheduler._avg_exec_seconds = 30.0
        assert scheduler._retry_after_estimate() == MAX_RETRY_AFTER


# ----------------------------------------------------------------------
# Client transport retries
# ----------------------------------------------------------------------


class FakeResponse:
    def __init__(self, payload):
        self._payload = json.dumps(payload).encode("utf-8")

    def read(self):
        return self._payload

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


class TestClientRetries:
    @pytest.fixture()
    def fast_client(self, monkeypatch):
        monkeypatch.setattr(ServiceClient, "CONNECT_BACKOFF_BASE", 0.001)
        monkeypatch.setattr(ServiceClient, "CONNECT_BACKOFF_MAX", 0.002)
        return ServiceClient("http://127.0.0.1:1")

    def test_connection_errors_retry_until_success(
        self, monkeypatch, fast_client
    ):
        attempts = []

        def flaky(request, timeout=None):
            attempts.append(request.full_url)
            if len(attempts) < 3:
                raise urllib.error.URLError(OSError(111, "refused"))
            return FakeResponse({"status": "ok"})

        monkeypatch.setattr(urllib.request, "urlopen", flaky)
        assert fast_client.healthz() == {"status": "ok"}
        assert len(attempts) == 3

    def test_exhausted_retries_surface_attempt_count(
        self, monkeypatch, fast_client
    ):
        calls = []

        def refused(request, timeout=None):
            calls.append(1)
            raise urllib.error.URLError(OSError(111, "refused"))

        monkeypatch.setattr(urllib.request, "urlopen", refused)
        with pytest.raises(ServiceClientError, match="4 attempt"):
            fast_client.healthz()
        assert len(calls) == ServiceClient.CONNECT_ATTEMPTS
        try:
            fast_client.healthz()
        except ServiceClientError as exc:
            assert exc.attempts == ServiceClient.CONNECT_ATTEMPTS

    def test_http_errors_are_never_retried(self, monkeypatch, fast_client):
        """A 4xx/5xx is the server's verdict, not a transport flake —
        retrying it would double-submit on a 500."""
        calls = []

        def rejecting(request, timeout=None):
            calls.append(1)
            raise urllib.error.HTTPError(
                request.full_url,
                400,
                "bad request",
                {},
                io.BytesIO(b'{"error": "scripted rejection"}'),
            )

        monkeypatch.setattr(urllib.request, "urlopen", rejecting)
        with pytest.raises(ServiceClientError, match="scripted rejection"):
            fast_client.healthz()
        assert len(calls) == 1
        try:
            fast_client.healthz()
        except ServiceClientError as exc:
            assert exc.status == 400
            assert exc.attempts == 1

    def test_retry_budget_caps_total_wait(self, monkeypatch):
        monkeypatch.setattr(ServiceClient, "CONNECT_ATTEMPTS", 1000)
        monkeypatch.setattr(ServiceClient, "CONNECT_RETRY_BUDGET", 0.05)
        monkeypatch.setattr(ServiceClient, "CONNECT_BACKOFF_BASE", 0.02)
        client = ServiceClient("http://127.0.0.1:1")

        def refused(request, timeout=None):
            raise urllib.error.URLError(OSError(111, "refused"))

        monkeypatch.setattr(urllib.request, "urlopen", refused)
        started = time.monotonic()
        with pytest.raises(ServiceClientError) as excinfo:
            client.healthz()
        assert time.monotonic() - started < 2.0
        assert excinfo.value.attempts < 1000


# ----------------------------------------------------------------------
# CLI: repro store scrub
# ----------------------------------------------------------------------


class TestStoreScrubCLI:
    def build_store(self, tmp_path, corrupt: bool):
        root = tmp_path / "cli-store"
        store = ResultStore(root=str(root))
        for i in range(3):
            store.put(entry(f"{i}{i}{i}{i}" * 16))
        if corrupt:
            (root / "11" / ("1111" * 16 + ".qasm")).write_text("// rotted\n")
        return root

    def test_report_only_exits_nonzero_on_corruption(self, tmp_path, capsys):
        from repro.cli import main

        root = self.build_store(tmp_path, corrupt=True)
        assert main(["store", "scrub", str(root)]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out
        assert "artifact checksum mismatch" in out
        # Report-only never mutates the tree.
        assert not (root / QUARANTINE_DIR).exists()

    def test_repair_quarantines_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        root = self.build_store(tmp_path, corrupt=True)
        assert main(["store", "scrub", str(root), "--repair"]) == 0
        assert (root / QUARANTINE_DIR).exists()
        # The tree is clean now: report-only agrees.
        assert main(["store", "scrub", str(root)]) == 0
        out = capsys.readouterr().out
        assert "0 corrupt" in out.splitlines()[-1]

    def test_json_report(self, tmp_path, capsys):
        from repro.cli import main

        root = self.build_store(tmp_path, corrupt=False)
        assert main(["store", "scrub", str(root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["scanned"] == 3
        assert report["corrupt"] == 0

    def test_missing_store_dir(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["store", "scrub", str(tmp_path / "absent")]) == 2
        assert "no store" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Lane startup watchdog
# ----------------------------------------------------------------------


def _wedged_initializer(event) -> None:
    """Stand-in for a worker stuck in fork bootstrap: never signals."""
    time.sleep(60.0)


class TestLaneStartupWatchdog:
    @pytest.mark.skipif(
        "fork" not in __import__("multiprocessing").get_all_start_methods(),
        reason="needs the fork start method",
    )
    def test_silent_worker_is_recycled_not_waited_on(self, monkeypatch):
        """A worker that never finishes bootstrap (the fork-with-
        threads deadlock) must surface as LaneStartupError within
        ready_timeout, with the wedged process terminated."""
        import multiprocessing

        from repro.service import workers as workers_module
        from repro.service.workers import LaneStartupError, WorkerLane

        # Patch the initializer to one that never signals readiness.
        # Fork children inherit the patched module by memory copy, so
        # this simulates a wedged bootstrap without relying on a race.
        monkeypatch.setattr(
            workers_module, "_signal_ready", _wedged_initializer
        )
        lane = WorkerLane(
            compile_fn=quick_compile,
            mp_context=multiprocessing.get_context("fork"),
            ready_timeout=0.5,
        )
        try:
            started = time.monotonic()
            with pytest.raises(LaneStartupError, match="failed to start"):
                lane.run(request(800), None, "k" * 64)
            assert time.monotonic() - started < 10.0
            assert lane.restarts == 1
            deadline = time.monotonic() + 5
            while lane.pids():
                assert time.monotonic() < deadline, "wedged worker survived"
                time.sleep(0.05)
        finally:
            lane.shutdown()

    def test_healthy_worker_confirms_once_and_runs(self):
        from repro.service.workers import WorkerLane

        lane = WorkerLane(compile_fn=quick_compile, ready_timeout=20.0)
        try:
            first = lane.run(request(801), None, "a" * 64)
            assert lane._ready_confirmed
            second = lane.run(request(802), None, "b" * 64)
            assert first.routed_qasm != second.routed_qasm
            assert lane.restarts == 0
        finally:
            lane.shutdown()


# ----------------------------------------------------------------------
# Shutdown hygiene under chaos (process tier)
# ----------------------------------------------------------------------


def quick_compile(req, circuit=None, key=None):
    """Picklable trivial compile for the shutdown-chaos test."""
    return StoredResult(
        key=key or req.fingerprint(),
        routed_qasm=f"OPENQASM 2.0;\n// seed {req.seed} pid {os.getpid()}\n",
        request=req.summary(),
    )


class TestShutdownDuringChaos:
    def test_shutdown_fails_pending_jobs_and_leaves_no_orphans(
        self, monkeypatch
    ):
        """``shutdown(wait=True)`` while every worker hangs on an
        injected fault: pending jobs resolve with ``error_kind:
        "shutdown"``, nothing waits forever, and no worker process
        outlives the scheduler."""
        plan = {
            "seed": 1,
            "rules": [
                {
                    "site": SITE_WORKER,
                    "kind": "hang",
                    "param": 30.0,
                    "probability": 1.0,
                }
            ],
        }
        # Via the environment so spawn-started workers inherit it too.
        monkeypatch.setenv(FAULT_PLAN_ENV, json.dumps(plan))
        faults.reset()
        scheduler = CoalescingScheduler(
            store=ResultStore(),
            workers=1,
            compile_fn=quick_compile,
            execution="process",
            join_timeout=1.5,
        )
        jobs = [scheduler.submit(request(seed)) for seed in (900, 901, 902)]
        deadline = time.monotonic() + 10
        while jobs[0].state != "running":
            assert time.monotonic() < deadline
            time.sleep(0.01)
        scheduler.shutdown(wait=True)
        for job in jobs:
            assert job.finished, f"{job.id} still {job.state} after shutdown"
            assert job.event.is_set()
        # Whatever was never dispatched must carry the shutdown marker.
        shutdown_failed = [j for j in jobs if j.error_kind == "shutdown"]
        assert shutdown_failed, "no job failed with error_kind 'shutdown'"
        for job in jobs:
            assert job.error_kind in ("shutdown", "crash")
        # No orphaned worker processes: every lane PID is gone.
        deadline = time.monotonic() + 10
        while scheduler.lane_pids():
            assert (
                time.monotonic() < deadline
            ), f"orphaned workers: {scheduler.lane_pids()}"
            time.sleep(0.05)
