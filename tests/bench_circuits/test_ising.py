"""Unit tests for the Ising-model benchmark generator."""

import pytest

from repro.bench_circuits import ising_model
from repro.exceptions import CircuitError


class TestIsingStructure:
    def test_paper_gate_counts(self):
        """The Table II g_ori column: 480 / 633 / 786."""
        assert ising_model(10).num_gates == 480
        assert ising_model(13).num_gates == 633
        assert ising_model(16).num_gates == 786

    def test_name(self):
        assert ising_model(10).name == "ising_model_10"

    def test_interactions_nearest_neighbour_only(self):
        circ = ising_model(12)
        for (a, b), _ in circ.interaction_pairs().items():
            assert b - a == 1

    def test_cnot_count(self):
        # 2 CNOTs per ZZ edge per step
        circ = ising_model(8, steps=4)
        assert circ.gate_counts()["cx"] == 2 * 7 * 4

    def test_initial_hadamard_layer(self):
        circ = ising_model(6)
        assert all(circ[q].name == "h" for q in range(6))

    def test_custom_steps(self):
        n = 9
        circ = ising_model(n, steps=3)
        assert circ.num_gates == n + 3 * (3 * (n - 1) + 2 * n)

    def test_minimum_size(self):
        with pytest.raises(CircuitError):
            ising_model(1)

    def test_minimum_steps(self):
        with pytest.raises(CircuitError):
            ising_model(5, steps=0)

    def test_deterministic(self):
        assert ising_model(10) == ising_model(10)


class TestIsingMapping:
    def test_perfect_mapping_exists_on_tokyo(self, tokyo):
        """§V-A1: 'the optimal solution is trivial since the ising model
        ... only considers nearby coupling energy' — SABRE must find a
        0-SWAP mapping for the 10-qubit chain."""
        from repro.core import compile_circuit

        result = compile_circuit(ising_model(10), tokyo, seed=0)
        assert result.added_gates == 0
