"""Unit tests for reversible block circuit generators."""

import pytest

from repro.bench_circuits import mct_ladder, reversible_block_circuit
from repro.bench_circuits.toffoli_blocks import cnot_fraction_of
from repro.exceptions import CircuitError


class TestMctLadder:
    def test_round_gate_count(self):
        circ = mct_ladder(5, num_rounds=2)
        assert circ.num_gates == 2 * 3 * 15  # (n-2) toffolis x 15 gates

    def test_basis_only(self):
        circ = mct_ladder(4)
        assert all(g.num_qubits <= 2 for g in circ)

    def test_min_size(self):
        with pytest.raises(CircuitError):
            mct_ladder(2)


class TestReversibleBlockCircuit:
    def test_exact_gate_count(self):
        for target in (21, 100, 343, 1000):
            circ = reversible_block_circuit(8, target, seed=1)
            assert circ.num_gates == target

    def test_deterministic(self):
        a = reversible_block_circuit(6, 200, seed=7)
        b = reversible_block_circuit(6, 200, seed=7)
        assert a == b

    def test_seed_changes_circuit(self):
        a = reversible_block_circuit(6, 200, seed=7)
        b = reversible_block_circuit(6, 200, seed=8)
        assert a != b

    def test_cnot_fraction_in_revlib_band(self):
        """Lowered reversible logic sits around 40-55% CNOTs."""
        circ = reversible_block_circuit(10, 5000, seed=0)
        assert 0.35 <= cnot_fraction_of(circ) <= 0.60

    def test_window_bounds_interactions(self):
        circ = reversible_block_circuit(12, 2000, seed=3, window=3)
        for (a, b), _ in circ.interaction_pairs().items():
            assert abs(a - b) <= 2

    def test_basis_only(self):
        circ = reversible_block_circuit(8, 500, seed=2)
        assert all(g.num_qubits <= 2 for g in circ)

    def test_invalid_args(self):
        with pytest.raises(CircuitError):
            reversible_block_circuit(1, 10)
        with pytest.raises(CircuitError):
            reversible_block_circuit(4, 0)
        with pytest.raises(CircuitError):
            reversible_block_circuit(4, 10, window=1)

    def test_small_targets_pad_with_1q(self):
        circ = reversible_block_circuit(4, 5, seed=0)
        assert circ.num_gates == 5
