"""Unit tests for the QFT benchmark generator."""

import numpy as np
import pytest

from repro.bench_circuits import approximate_qft, qft
from repro.exceptions import CircuitError
from repro.verify import simulate


class TestQftStructure:
    def test_paper_gate_counts(self):
        """Full QFT matches the paper's qft_13 and qft_20 rows exactly."""
        assert qft(13).num_gates == 403
        assert qft(20).num_gates == 970

    def test_gate_count_formula(self):
        for n in (2, 5, 8):
            assert qft(n).num_gates == n + 5 * n * (n - 1) // 2

    def test_complete_interaction_graph(self):
        n = 6
        pairs = qft(n).interaction_pairs()
        assert len(pairs) == n * (n - 1) // 2

    def test_cnot_fraction(self):
        counts = qft(10).gate_counts()
        assert counts["cx"] == 2 * 45

    def test_single_qubit_qft(self):
        circ = qft(1)
        assert circ.gate_counts() == {"h": 1}

    def test_zero_qubits_rejected(self):
        with pytest.raises(CircuitError):
            qft(0)


class TestQftSemantics:
    def test_qft_matrix_small(self):
        """QFT on |x> produces the Fourier kernel amplitudes."""
        n = 3
        dim = 2**n
        circ = qft(n)
        state = simulate(circ)
        amps = state.amplitudes()
        # |0...0> input: uniform superposition with zero phase
        assert np.allclose(amps, np.full(dim, 1 / np.sqrt(dim)), atol=1e-9)

    def test_qft_nontrivial_input_phases(self):
        """Without the final bit-reversal swaps (as in the benchmark
        files), QFT|x> lands in bit-reversed output order."""
        n = 3
        from repro.circuits import QuantumCircuit

        prep = QuantumCircuit(n)
        prep.x(n - 1)  # |001> = integer 1 (qubit 0 most significant)
        full = prep.compose(qft(n))
        amps = simulate(full).amplitudes()
        dim = 2**n

        def bit_reverse(value: int) -> int:
            return int(format(value, f"0{n}b")[::-1], 2)

        expected = np.array(
            [np.exp(2j * np.pi * bit_reverse(k) / dim) for k in range(dim)]
        ) / np.sqrt(dim)
        assert np.allclose(amps, expected, atol=1e-9)


class TestApproximateQft:
    def test_fewer_gates_than_full(self):
        assert approximate_qft(10, 4).num_gates < qft(10).num_gates

    def test_degree_caps_interaction_range(self):
        circ = approximate_qft(8, 2)
        for (a, b), _ in circ.interaction_pairs().items():
            assert abs(a - b) <= 2

    def test_full_degree_equals_qft(self):
        n = 6
        assert approximate_qft(n, n - 1).num_gates == qft(n).num_gates

    def test_invalid_degree_rejected(self):
        with pytest.raises(CircuitError):
            approximate_qft(5, 0)
