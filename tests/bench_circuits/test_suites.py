"""Unit tests for the Table II benchmark registry."""

import pytest

from repro.bench_circuits import (
    FIGURE_8_NAMES,
    TABLE_II,
    build_benchmark,
    categories,
    get_benchmark,
    suite,
)
from repro.bench_circuits.revlib_like import revlib_like
from repro.exceptions import ReproError


class TestRegistry:
    def test_twenty_six_rows(self):
        assert len(TABLE_II) == 26

    def test_categories(self):
        assert categories() == ["small", "sim", "qft", "large"]

    def test_category_sizes(self):
        assert len(suite("small")) == 5
        assert len(suite("sim")) == 3
        assert len(suite("qft")) == 4
        assert len(suite("large")) == 14

    def test_unknown_category(self):
        with pytest.raises(ReproError):
            suite("medium")

    def test_get_benchmark(self):
        spec = get_benchmark("qft_13")
        assert spec.num_qubits == 13
        assert spec.paper_gates == 403

    def test_unknown_benchmark(self):
        with pytest.raises(ReproError, match="unknown benchmark"):
            get_benchmark("qft_99")

    def test_oom_rows_flagged(self):
        assert get_benchmark("ising_model_16").paper_bka_oom
        assert get_benchmark("qft_20").paper_bka_oom
        assert not get_benchmark("qft_16").paper_bka_oom

    def test_figure8_names_resolve(self):
        assert len(FIGURE_8_NAMES) == 9
        for name in FIGURE_8_NAMES:
            assert get_benchmark(name) is not None

    def test_paper_numbers_sane(self):
        for spec in TABLE_II:
            assert spec.paper_sabre_added >= 0
            assert spec.paper_sabre_added % 3 == 0  # multiples of one SWAP
            assert spec.paper_sabre_lookahead % 3 == 0
            if spec.paper_bka_added is not None:
                assert spec.paper_bka_added % 3 == 0


class TestBuilders:
    @pytest.mark.parametrize(
        "spec", TABLE_II, ids=[s.name for s in TABLE_II]
    )
    def test_profile_matches_paper(self, spec):
        """Every generated circuit matches the paper's qubit count, and
        all but the two approximate-QFT rows match g_ori exactly."""
        circ = spec.build()
        assert circ.num_qubits == spec.num_qubits
        if spec.name in ("qft_10", "qft_16"):
            # The paper's files were truncated QFT variants; we generate
            # the canonical full QFT (documented substitution).
            assert circ.num_gates == spec.num_qubits + 5 * (
                spec.num_qubits * (spec.num_qubits - 1) // 2
            )
        else:
            assert circ.num_gates == spec.paper_gates

    def test_build_by_name(self):
        circ = build_benchmark("rd84_142")
        assert circ.name == "rd84_142"
        assert circ.num_gates == 343

    def test_builders_deterministic(self):
        assert build_benchmark("adr4_197") == build_benchmark("adr4_197")


class TestRevlibLike:
    def test_default_window_small(self):
        circ = revlib_like("tiny", 5, 100)
        for (a, b), _ in circ.interaction_pairs().items():
            assert abs(a - b) <= 2  # window 3

    def test_default_window_large(self):
        circ = revlib_like("big", 15, 500)
        assert circ.num_gates == 500

    def test_name_seeds_rng(self):
        a = revlib_like("alpha", 8, 300)
        b = revlib_like("beta", 8, 300)
        assert a != b

    def test_explicit_seed_override(self):
        a = revlib_like("x", 8, 300, seed=1)
        b = revlib_like("x", 8, 300, seed=2)
        assert a != b
