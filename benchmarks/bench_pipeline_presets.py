#!/usr/bin/env python
"""Pipeline-preset smoke: run every named preset on a small circuit.

The CI quick tier runs this with ``--smoke`` as the pipeline layer's
liveness check: each preset must compile end-to-end, produce a
hardware-compliant output, and report a per-pass timing breakdown.
Without ``--smoke`` it additionally times each preset on a
routing-heavy Table II circuit, giving a feel for what each extra pass
costs.

Run:  PYTHONPATH=src python benchmarks/bench_pipeline_presets.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.bench_circuits import build_benchmark
from repro.circuits import random_circuit
from repro.hardware import NoiseModel, ibm_q20_tokyo, line_device
from repro.hardware.devices import ibm_qx5
from repro.pipeline import Pipeline, compose_pipeline, preset_names
from repro.verify import is_hardware_compliant

#: Heterogeneous noise so the noise-aware preset exercises real
#: re-weighting (uniform errors normalise back to hop counts).
SMOKE_NOISE = NoiseModel(edge_errors={(0, 1): 0.12, (5, 6): 0.08})


def run_preset(name: str, circuit, device, noise) -> float:
    kwargs = {"noise": noise} if name == "noise_aware" else {}
    result = Pipeline(name).run(circuit, device, seed=0, **kwargs)
    assert is_hardware_compliant(
        result.physical_circuit(), device
    ), f"preset {name} emitted a non-compliant circuit"
    timings = result.properties.pass_timings
    assert timings, f"preset {name} recorded no pass timings"
    return sum(seconds for _, seconds in timings)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small circuit only (seconds-long CI liveness check)",
    )
    args = parser.parse_args(argv)

    tokyo = ibm_q20_tokyo()
    # A* explodes combinatorially on wide devices; give the baseline
    # presets a narrow line so the sweep stays bounded.
    line6 = line_device(6)
    small = random_circuit(6, 30, seed=7, two_qubit_fraction=0.6)
    circuits = [("rand6x30", small)]
    if not args.smoke:
        circuits.append(("rd84_142", build_benchmark("rd84_142")))

    for label, circuit in circuits:
        print(f"pipeline presets on {label}:")
        for name in preset_names():
            if name.startswith("baseline_"):
                # Baselines always sweep the small circuit on the line
                # (A* on wide devices explodes; greedy/trivial follow
                # for comparability).
                total = run_preset(name, small, line6, SMOKE_NOISE)
            else:
                total = run_preset(name, circuit, tokyo, SMOKE_NOISE)
            print(f"  {name:20s} {total * 1e3:9.2f} ms  ok")

    # The three-extension composition on a directed device — the
    # scenario the pipeline architecture exists for.
    composed = compose_pipeline(
        "paper_default", noise_aware=True, bridge=True, legalize_directions=True
    )
    result = composed.run(
        random_circuit(8, 40, seed=3, two_qubit_fraction=0.6),
        ibm_qx5(),
        seed=0,
        noise=SMOKE_NOISE,
    )
    assert is_hardware_compliant(
        result.physical_circuit(), ibm_qx5(), check_direction=True
    )
    print(f"composed {composed.name}: ok "
          f"(swaps={result.num_swaps}, "
          f"bridges={result.properties.get('bridge.bridged_cx', 0)}, "
          f"reversed_cx={result.properties.get('directed.reversed_cx', 0)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
