"""Table II benchmarks: SABRE and the BKA on the paper's suite.

Each bench compiles one Table II row with the paper's configuration and
records the quality metrics (added gates, depth) in
``benchmark.extra_info`` next to the paper's published numbers, so the
pytest-benchmark report doubles as the reproduction table.  Run::

    pytest benchmarks/bench_table2.py --benchmark-only

The full 26-row table (including multi-minute BKA runs) is regenerated
by ``python -m repro.analysis.table2 --full``.

The SABRE rows honour the trial engine's environment knobs so the same
harness measures other configurations without edits::

    REPRO_BENCH_TRIALS=8 REPRO_BENCH_JOBS=4 \
        pytest benchmarks/bench_table2.py --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import AStarMapper
from repro.bench_circuits import get_benchmark, suite
from repro.core import compile_circuit
from repro.exceptions import SearchExhausted
from repro.verify import assert_compliant

SMALL = [s.name for s in suite("small")]
SIM = [s.name for s in suite("sim")]
QFT = [s.name for s in suite("qft")]
# Large rows that keep bench wall-time reasonable; the biggest rows are
# exercised by the analysis harness instead.
LARGE_SUBSET = ["rd84_142", "adr4_197", "z4_268", "sym6_145"]

#: Engine knobs (paper defaults when unset): trial count, process-pool
#: width (>1 switches to the engine's process executor), and objective.
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "0")) or None
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
BENCH_OBJECTIVE = os.environ.get("REPRO_BENCH_OBJECTIVE", "g_add")


#: Quality assertions below are calibrated for the paper's trial
#: counts; an env override measures a different configuration, so only
#: the configuration-independent invariants are asserted then.
CALIBRATED = BENCH_TRIALS is None and BENCH_OBJECTIVE == "g_add"


def _sabre_kwargs(num_trials):
    """compile_circuit kwargs for one SABRE bench row, env overrides in."""
    kwargs = {
        "seed": 0,
        "num_trials": BENCH_TRIALS or num_trials,
        "objective": BENCH_OBJECTIVE,
    }
    if BENCH_JOBS > 1:
        kwargs["executor"] = "process"
        kwargs["jobs"] = BENCH_JOBS
    return kwargs


def _record(benchmark, spec, result):
    benchmark.extra_info.update(
        {
            "benchmark": spec.name,
            "g_ori": result.original_gates,
            "g_add": result.added_gates,
            "g_la": 3 * (result.first_pass_swaps or 0),
            "d_out": result.routed_depth,
            "paper_g_add_sabre": spec.paper_sabre_added,
            "paper_g_la": spec.paper_sabre_lookahead,
            "paper_g_add_bka": spec.paper_bka_added,
        }
    )


@pytest.mark.parametrize("name", SMALL)
def test_sabre_small(benchmark, tokyo, tokyo_distance, name):
    """Small arithmetic: SABRE finds (near-)perfect initial mappings."""
    spec = get_benchmark(name)
    circuit = spec.build()
    result = benchmark.pedantic(
        compile_circuit,
        args=(circuit, tokyo),
        kwargs={**_sabre_kwargs(5), "distance": tokyo_distance},
        rounds=3,
        iterations=1,
    )
    _record(benchmark, spec, result)
    assert_compliant(result.physical_circuit(), tokyo)
    # Paper §V-A1: no or very few additional gates on the small suite.
    if CALIBRATED:
        assert result.added_gates <= max(spec.paper_sabre_added, 3)


@pytest.mark.parametrize("name", SIM)
def test_sabre_ising(benchmark, tokyo, tokyo_distance, name):
    """Ising chains: the optimal (0-SWAP) mapping exists; SABRE should
    find it or come very close (paper finds 0 for all three)."""
    spec = get_benchmark(name)
    circuit = spec.build()
    result = benchmark.pedantic(
        compile_circuit,
        args=(circuit, tokyo),
        kwargs={**_sabre_kwargs(5), "distance": tokyo_distance},
        rounds=2,
        iterations=1,
    )
    _record(benchmark, spec, result)
    if CALIBRATED:
        assert result.added_gates <= 9


@pytest.mark.parametrize("name", QFT)
def test_sabre_qft(benchmark, tokyo, tokyo_distance, name):
    """QFT: the dense-interaction stress case."""
    spec = get_benchmark(name)
    circuit = spec.build()
    result = benchmark.pedantic(
        compile_circuit,
        args=(circuit, tokyo),
        kwargs={**_sabre_kwargs(5), "distance": tokyo_distance},
        rounds=2,
        iterations=1,
    )
    _record(benchmark, spec, result)
    assert_compliant(result.physical_circuit(), tokyo)
    # Reverse traversal must not lose to the first pass (Table II shape).
    assert result.num_swaps <= result.first_pass_swaps


@pytest.mark.parametrize("name", LARGE_SUBSET)
def test_sabre_large(benchmark, tokyo, tokyo_distance, name):
    """Large arithmetic subset (full set: analysis harness)."""
    spec = get_benchmark(name)
    circuit = spec.build()
    result = benchmark.pedantic(
        compile_circuit,
        args=(circuit, tokyo),
        kwargs={**_sabre_kwargs(3), "distance": tokyo_distance},
        rounds=1,
        iterations=1,
    )
    _record(benchmark, spec, result)
    assert result.num_swaps <= result.first_pass_swaps


@pytest.mark.parametrize("name", ["4mod5-v1_22", "qft_10", "rd84_142"])
def test_bka_comparable_rows(benchmark, tokyo, tokyo_distance, name):
    """BKA runtime on rows it can finish; extra_info carries the
    SABRE-vs-BKA gate comparison for the report."""
    spec = get_benchmark(name)
    circuit = spec.build()
    mapper = AStarMapper(
        tokyo, max_nodes=600_000, max_seconds=90.0, distance=tokyo_distance
    )
    result = benchmark.pedantic(mapper.run, args=(circuit,), rounds=1, iterations=1)
    sabre = compile_circuit(
        circuit, tokyo, seed=0, num_trials=5, distance=tokyo_distance
    )
    benchmark.extra_info.update(
        {
            "benchmark": spec.name,
            "bka_g_add": result.added_gates,
            "sabre_g_add": sabre.added_gates,
            "paper_bka_g_add": spec.paper_bka_added,
            "bka_nodes": mapper.last_run_nodes,
        }
    )
    # Table II shape: SABRE <= BKA on additional gates.
    assert sabre.added_gates <= result.added_gates


def test_bka_oom_row(benchmark, tokyo, tokyo_distance):
    """Table II 'Out of Memory' row: ising_model_16 exhausts the BKA
    budget; the bench times how fast the wall is hit."""
    circuit = get_benchmark("ising_model_16").build()

    def run_until_exhausted():
        mapper = AStarMapper(
            tokyo, max_nodes=300_000, max_seconds=60.0, distance=tokyo_distance
        )
        with pytest.raises(SearchExhausted):
            mapper.run(circuit)
        return mapper.last_run_nodes

    nodes = benchmark.pedantic(run_until_exhausted, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"benchmark": "ising_model_16", "nodes_at_exhaustion": nodes}
    )
    assert nodes >= 300_000
