"""Trial-engine benchmarks: quality-vs-trials and wall-clock-vs-jobs.

Two ways to run it:

- pytest-benchmark harness (opt-in, like every ``bench_*.py`` here)::

      pytest benchmarks/bench_trials.py --benchmark-only

- standalone sweep, printing the quality-vs-trials curve and the
  process-pool speedup table (``--smoke`` shrinks it to a seconds-long
  CI check; ``--hybrid-workers N`` adds a hybrid-executor identity
  leg that shards a best-of-K sweep across N ship-once workers and
  asserts the results match the serial executor byte-for-byte)::

      PYTHONPATH=src python benchmarks/bench_trials.py [--smoke] \
          [--hybrid-workers 2]

The curve this prints is the measurement quoted in the README: best-of-K
``g_add`` is monotonically non-increasing in K (same seed pool), while
wall-clock scales down with ``--jobs``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional, Sequence

import pytest

from repro.bench_circuits import get_benchmark, qft, suite
from repro.core import compile_circuit
from repro.engine import cache_info, clear_cache, compile_many, run_trials
from repro.hardware import ibm_q20_tokyo

TRIAL_COUNTS = [1, 2, 4, 8]
JOB_COUNTS = [1, 2, 4]
#: Medium circuits where restarts actually move the needle.
QUALITY_CIRCUITS = ["rd84_142", "4gt13_92"]
#: Heavy enough that pool dispatch overhead is amortised (the small
#: suite compiles in microseconds and would only measure fork cost).
JOBS_SWEEP_CIRCUITS = ["rd84_142", "adr4_197", "z4_268", "sym6_145"]


@pytest.mark.parametrize("k", TRIAL_COUNTS)
def test_quality_vs_trials(benchmark, tokyo, tokyo_distance, k):
    """Best-of-K g_add on a routing-heavy circuit, serial engine."""
    circuit = get_benchmark("rd84_142").build()
    result = benchmark.pedantic(
        compile_circuit,
        args=(circuit, tokyo),
        kwargs={
            "seed": 0,
            "num_trials": k,
            "executor": "serial",
            "distance": tokyo_distance,
        },
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update({"trials": k, "g_add": result.added_gates})


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_wallclock_vs_jobs(benchmark, tokyo, jobs):
    """compile_many wall-clock on routing-heavy circuits, 8 trials each."""
    circuits = [get_benchmark(n).build() for n in JOBS_SWEEP_CIRCUITS]
    report = benchmark.pedantic(
        compile_many,
        args=(circuits, tokyo),
        kwargs={"num_trials": 8, "seed": 0, "jobs": jobs},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update(
        {
            "jobs": jobs,
            "total_g_add": report.total_added_gates,
            "wall_seconds": report.wall_seconds,
        }
    )


# ----------------------------------------------------------------------
# Standalone sweep (no pytest-benchmark needed)
# ----------------------------------------------------------------------


def _quality_sweep(names: Sequence[str], trial_counts: Sequence[int]) -> List[str]:
    device = ibm_q20_tokyo()
    lines = ["quality vs trials (g_add, seed pool 0..K-1):"]
    header = f"  {'circuit':14s}" + "".join(f"  K={k:<4d}" for k in trial_counts)
    lines.append(header)
    for name in names:
        circuit = get_benchmark(name).build()
        outcome = run_trials(
            circuit, device, seeds=list(range(max(trial_counts)))
        )
        values = [t.value for t in outcome.trials]
        cells = "".join(
            f"  {int(min(values[:k])):<6d}" for k in trial_counts
        )
        lines.append(f"  {name:14s}{cells}")
    return lines


def _jobs_sweep(
    trials: int, job_counts: Sequence[int], circuits
) -> List[str]:
    import os

    lines = [
        f"wall-clock vs jobs ({len(circuits)} circuits, {trials} trials "
        f"each; {os.cpu_count()} CPU core(s) visible — speedup needs >1):"
    ]
    baseline: Optional[float] = None
    for jobs in job_counts:
        start = time.perf_counter()
        report = compile_many(
            circuits, ibm_q20_tokyo(), num_trials=trials, seed=0, jobs=jobs
        )
        wall = time.perf_counter() - start
        if baseline is None:
            baseline = wall
        lines.append(
            f"  jobs={jobs}: {wall:6.2f}s  (speedup x{baseline / wall:4.2f})  "
            f"total g_add={report.total_added_gates}"
        )
    return lines


def _hybrid_smoke(workers: int) -> None:
    """Hybrid-executor identity + liveness check for CI.

    Shards a best-of-K sweep on a routing-heavy circuit across
    ``workers`` ship-once workers and asserts the merged results are
    byte-identical to the serial executor — including on 1-core
    runners, where the pool is oversubscribed and the check proves
    the sharded path still terminates and merges correctly.
    """
    device = ibm_q20_tokyo()
    circuit = get_benchmark("rd84_142").build()
    seeds = list(range(4))
    serial = run_trials(circuit, device, seeds=seeds, executor="serial")
    start = time.perf_counter()
    hybrid = run_trials(
        circuit, device, seeds=seeds, executor="hybrid", jobs=workers
    )
    wall = time.perf_counter() - start
    assert hybrid.executor == "hybrid", hybrid.downgrade_reason
    assert hybrid.shard_plan is not None and len(hybrid.shard_plan) == min(
        workers, len(seeds)
    )
    assert hybrid.trial_swaps == serial.trial_swaps
    assert hybrid.winner_index == serial.winner_index
    for a, b in zip(hybrid.trials, serial.trials):
        assert a.result.routing.circuit == b.result.routing.circuit
    print(
        f"hybrid smoke: {len(seeds)} trials across {workers} workers in "
        f"{wall:5.2f}s, shards {'+'.join(str(len(s)) for s in hybrid.shard_plan)}, "
        f"identical to serial"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI check: tiny sweep + engine sanity asserts",
    )
    parser.add_argument(
        "--hybrid-workers",
        type=int,
        default=0,
        metavar="N",
        help="also run a hybrid-executor identity leg sharded across N "
        "ship-once workers (0 = skip)",
    )
    args = parser.parse_args(argv)

    clear_cache()
    if args.smoke:
        device = ibm_q20_tokyo()
        circuits = [spec.build() for spec in suite("small")[:3]] + [qft(6)]
        report = compile_many(circuits, device, num_trials=2, seed=0, jobs=2)
        print("\n".join(report.summary_lines()))
        info = cache_info()
        assert info.misses == 1, f"expected one distance computation, got {info}"
        for row in report.reports:
            baseline = compile_circuit(
                row.result.original_circuit, device, seed=0, num_trials=1
            )
            assert row.added_gates <= baseline.added_gates, row.name
        print(f"cache: {info}")
        if args.hybrid_workers:
            _hybrid_smoke(args.hybrid_workers)
        print("smoke ok")
        return 0

    if args.hybrid_workers:
        _hybrid_smoke(args.hybrid_workers)

    print("\n".join(_quality_sweep(QUALITY_CIRCUITS, TRIAL_COUNTS)))
    circuits = [get_benchmark(n).build() for n in JOBS_SWEEP_CIRCUITS]
    print("\n".join(_jobs_sweep(8, JOB_COUNTS, circuits)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
