"""Router perf benchmark: per-step scorer AND end-to-end layout sweeps.

Three benchmark families, one report (``BENCH_router.json``):

- **Scorer cases** — one routing traversal (``SabreRouter.run``) per
  case under the batched numpy ``vector`` scorer and the scalar
  ``fast`` delta scorer, each against the paper-literal ``reference``
  scorer (the PR-2 win, still gated).
- **Layout cases** — a full ``SabreLayout`` trial sweep (bidirectional
  traversals x random restarts, the way users actually compile) under
  the compile-once shared-IR path vs the frozen pre-IR baseline
  (:class:`repro.core.legacy.LegacySabreLayout`), which re-lowers a
  fresh object DAG on every traversal.  The case mix follows the
  paper's benchmark families (QFT, Ising, reversible/Toffoli blocks)
  plus one adversarial dense-random stress case where the shared
  scoring loop dominates and the IR win is smallest.
- **Trials cases** — a best-of-K seeded trial sweep
  (:func:`repro.engine.run_trials`) under the trial-major lockstep
  ensemble executor (``executor="ensemble"``, vector scorer) and the
  two-worker hybrid executor (sharded ensembles over the ship-once
  pool) vs the serial executor with the ``fast`` scorer — K full
  routing sweeps every way, same seeds, same winner.  This is the
  regime the batched kernel exists for: one kernel dispatch scores
  every stuck trial, so the dispatch cost amortises across the
  ensemble and the advantage grows with device size.  The hybrid
  column is identity-checked but *not* regression-gated: its ratio
  depends on the runner's core count (a 1-core runner pays pure
  process overhead), so a speedup floor would be meaningless across
  hardware.

Every case asserts the compared paths' routed circuits are
*byte-identical* (the differential guarantee) before timing means
anything.

Three ways to run it:

- standalone full sweep (the numbers quoted in the README)::

      PYTHONPATH=src python benchmarks/bench_router_perf.py

- seconds-long CI smoke check with the regression gate::

      PYTHONPATH=src python benchmarks/bench_router_perf.py --smoke \
          --check-regression benchmarks/BENCH_router_baseline.json

- pytest-benchmark harness (opt-in, like every ``bench_*.py`` here)::

      pytest benchmarks/bench_router_perf.py --benchmark-only

The regression gate compares *speedup ratios* (two code paths on the
same machine, same process), not absolute wall-clock, so it is stable
across runner hardware: a >25% drop in any case's speedup (scorer or
layout) against the checked-in baseline fails the run.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import platform
import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np
import pytest

from repro.bench_circuits import approximate_qft, ising_model, mct_ladder, qft
from repro.circuits import QuantumCircuit, random_circuit
from repro.core import (
    HeuristicConfig,
    Layout,
    LegacySabreLayout,
    SabreLayout,
    SabreRouter,
)
from repro.engine import run_trials
from repro.engine.cache import clear_cache
from repro.hardware import CouplingGraph, grid_device, ibm_q20_tokyo

#: Allowed relative drop in a case's speedup before the gate fails.
REGRESSION_TOLERANCE = 0.25

#: The vector column gates with extra headroom: its smoke-sized cases
#: sit near the numpy dispatch floor, where run-to-run noise on shared
#: runners swings the ratio harder than the scalar comparisons.
VECTOR_REGRESSION_TOLERANCE = 0.35

#: Layout seed shared by every case (fixed => deterministic swaps).
LAYOUT_SEED = 9

#: Router tie-break seed.
ROUTER_SEED = 0


@dataclass(frozen=True)
class Case:
    """One benchmark case: a circuit routed on a device, N times."""

    name: str
    device_builder: Callable[[], CouplingGraph]
    circuit_builder: Callable[[], QuantumCircuit]
    repeats: int
    #: Cases tagged deep form the "deep-circuit scaling bench" — the
    #: regime the delta scorer exists for (large device, long circuit).
    deep: bool = False


def _rand(n: int, gates: int) -> Callable[[], QuantumCircuit]:
    return lambda: random_circuit(n, gates, seed=6, two_qubit_fraction=0.8)


#: Full sweep: small-device cases (where per-step overhead dominates and
#: the win is modest) up the scaling curve to the deep cases (where the
#: O(|F|+|E|) -> O(deg) reduction shows its asymptotics).
FULL_CASES = [
    Case("qft20_tokyo", ibm_q20_tokyo, lambda: qft(20), repeats=3),
    Case("rand2000_tokyo", ibm_q20_tokyo, _rand(20, 2000), repeats=3),
    Case("rand3000_grid7x7", lambda: grid_device(7, 7), _rand(49, 3000), repeats=2),
    Case(
        "rand5000_grid10x10",
        lambda: grid_device(10, 10),
        _rand(100, 5000),
        repeats=2,
    ),
    Case(
        "rand8000_grid12x12",
        lambda: grid_device(12, 12),
        _rand(144, 8000),
        repeats=1,
        deep=True,
    ),
    Case(
        "rand12000_grid14x14",
        lambda: grid_device(14, 14),
        _rand(196, 12000),
        repeats=1,
        deep=True,
    ),
]

#: Smoke sweep: seconds-long, still deep enough that the speedup ratio
#: is stable on shared CI runners.
SMOKE_CASES = [
    Case("rand1200_grid6x6", lambda: grid_device(6, 6), _rand(36, 1200), repeats=4),
    Case(
        "rand2500_grid9x9",
        lambda: grid_device(9, 9),
        _rand(81, 2500),
        repeats=3,
        deep=True,
    ),
]


@dataclass(frozen=True)
class LayoutCase:
    """One end-to-end case: a full ``SabreLayout`` trial sweep.

    ``num_trials x num_traversals`` routing passes over one circuit —
    the repetition the compile-once IR amortises.
    """

    name: str
    device_builder: Callable[[], CouplingGraph]
    circuit_builder: Callable[[], QuantumCircuit]
    num_trials: int = 5
    num_traversals: int = 3
    repeats: int = 2


#: End-to-end sweep, paper benchmark families + one dense-random
#: stress case (where the shared scoring loop dominates and the
#: shared-IR win is smallest — kept honest on purpose).
FULL_LAYOUT_CASES = [
    LayoutCase("layout_qft20_tokyo", ibm_q20_tokyo, lambda: qft(20)),
    LayoutCase(
        "layout_aqft20_tokyo", ibm_q20_tokyo, lambda: approximate_qft(20, 4)
    ),
    LayoutCase(
        "layout_ising20x12_tokyo", ibm_q20_tokyo, lambda: ising_model(20, 12)
    ),
    LayoutCase(
        "layout_ising49x6_grid7x7",
        lambda: grid_device(7, 7),
        lambda: ising_model(49, 6),
    ),
    LayoutCase("layout_mct16_tokyo", ibm_q20_tokyo, lambda: mct_ladder(16, 3)),
    LayoutCase(
        "layout_qft30_grid7x7", lambda: grid_device(7, 7), lambda: qft(30)
    ),
    LayoutCase("layout_rand600_tokyo", ibm_q20_tokyo, _rand(20, 600)),
]

#: Layout smoke cases: one structured, one stress, both sub-second.
SMOKE_LAYOUT_CASES = [
    LayoutCase("layout_qft16_tokyo", ibm_q20_tokyo, lambda: qft(16)),
    LayoutCase(
        "layout_ising20x8_tokyo", ibm_q20_tokyo, lambda: ising_model(20, 8)
    ),
]


@dataclass(frozen=True)
class TrialsCase:
    """One best-of-K case: ``run_trials`` ensemble vs serial executor.

    The ensemble runs all K seeded trials in lockstep through one
    K-row vector kernel; the serial side routes them one at a time
    with the scalar ``fast`` scorer.  Same seeds, byte-identical
    per-trial circuits, same winner.
    """

    name: str
    device_builder: Callable[[], CouplingGraph]
    circuit_builder: Callable[[], QuantumCircuit]
    num_trials: int
    num_traversals: int
    repeats: int = 1
    #: Worker-pool width for the hybrid column (seeds shard across
    #: this many ship-once ensemble workers).
    hybrid_jobs: int = 2


#: Ensemble sweep: sized where the trial-major batching pays — the
#: kernel's dispatch cost is near-constant in K and in device size,
#: while the scalar loop's per-step cost grows with the candidate
#: count, so the ratio climbs with the device.
FULL_TRIALS_CASES = [
    TrialsCase(
        "trials_rand8000_grid12x12_k8",
        lambda: grid_device(12, 12),
        _rand(144, 8000),
        num_trials=8,
        num_traversals=1,
    ),
    TrialsCase(
        "trials_rand12000_grid14x14_k6",
        lambda: grid_device(14, 14),
        _rand(196, 12000),
        num_trials=6,
        num_traversals=3,
    ),
]

#: Trials smoke case: seconds-long, but big enough (device + K) that
#: the lockstep advantage clears run-to-run noise — on sub-10x10
#: grids the ensemble is roughly at parity and the ratio is too
#: jittery to gate on.
SMOKE_TRIALS_CASES = [
    TrialsCase(
        "trials_rand3500_grid10x10_k6",
        lambda: grid_device(10, 10),
        _rand(100, 3500),
        num_trials=6,
        num_traversals=1,
    ),
]


def _time_router(
    device: CouplingGraph,
    circuit: QuantumCircuit,
    scorer: str,
    layout: Layout,
    repeats: int,
):
    """Best-of-``repeats`` wall-clock for one traversal; returns
    ``(seconds, result)``."""
    router = SabreRouter(
        device, config=HeuristicConfig(scorer=scorer), seed=ROUTER_SEED
    )
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = router.run(circuit, initial_layout=layout)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_case(case: Case) -> dict:
    """Measure one case under all three scorers and check identity."""
    device = case.device_builder()
    circuit = case.circuit_builder()
    layout = Layout.random(device.num_qubits, seed=LAYOUT_SEED)
    ref_seconds, ref = _time_router(
        device, circuit, "reference", layout, case.repeats
    )
    fast_seconds, fast = _time_router(
        device, circuit, "fast", layout, case.repeats
    )
    vector_seconds, vector = _time_router(
        device, circuit, "vector", layout, case.repeats
    )
    assert ref is not None and fast is not None and vector is not None
    identical = (
        fast.circuit == ref.circuit
        and fast.swap_positions == ref.swap_positions
        and fast.final_layout == ref.final_layout
        and vector.circuit == fast.circuit
        and vector.swap_positions == fast.swap_positions
        and vector.final_layout == fast.final_layout
    )
    return {
        "name": case.name,
        "device": device.name,
        "num_qubits": device.num_qubits,
        "num_gates": circuit.num_gates,
        "deep": case.deep,
        "reference_seconds": round(ref_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "vector_seconds": round(vector_seconds, 6),
        "speedup": round(ref_seconds / fast_seconds, 3),
        "vector_speedup": round(ref_seconds / vector_seconds, 3),
        "num_swaps": fast.num_swaps,
        "identical": identical,
    }


def run_trials_case(case: TrialsCase) -> dict:
    """Measure one best-of-K sweep: ensemble and hybrid vs serial-fast.

    The engine cache is cleared and re-warmed (one throwaway trial)
    before each timed run so both sides measure routing, not lowering.
    """
    device = case.device_builder()
    circuit = case.circuit_builder()
    seeds = list(range(101, 101 + case.num_trials))
    timings = {}
    outputs = {}
    for label, scorer, executor, jobs in (
        ("serial_fast", "fast", "serial", None),
        ("ensemble", "vector", "ensemble", None),
        ("hybrid", "vector", "hybrid", case.hybrid_jobs),
    ):
        config = HeuristicConfig(scorer=scorer)
        best = math.inf
        for _ in range(case.repeats):
            clear_cache()
            run_trials(
                circuit,
                device,
                seeds=seeds[:1],
                config=config,
                num_traversals=1,
                executor="serial",
            )
            start = time.perf_counter()
            outputs[label] = run_trials(
                circuit,
                device,
                seeds=seeds,
                config=config,
                num_traversals=case.num_traversals,
                executor=executor,
                jobs=jobs,
            )
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    ens, ser, hyb = outputs["ensemble"], outputs["serial_fast"], outputs["hybrid"]
    identical = (
        ens.trial_swaps == ser.trial_swaps
        and ens.winner_index == ser.winner_index
        and all(
            a.result.routing.circuit == b.result.routing.circuit
            for a, b in zip(ens.trials, ser.trials)
        )
        and hyb.trial_swaps == ser.trial_swaps
        and hyb.winner_index == ser.winner_index
        and all(
            a.result.routing.circuit == b.result.routing.circuit
            for a, b in zip(hyb.trials, ser.trials)
        )
    )
    return {
        "name": case.name,
        "device": device.name,
        "num_qubits": device.num_qubits,
        "num_gates": circuit.num_gates,
        "num_trials": case.num_trials,
        "num_traversals": case.num_traversals,
        "serial_fast_seconds": round(timings["serial_fast"], 6),
        "ensemble_seconds": round(timings["ensemble"], 6),
        "hybrid_seconds": round(timings["hybrid"], 6),
        "hybrid_jobs": case.hybrid_jobs,
        "hybrid_executor": hyb.executor,
        "speedup": round(timings["serial_fast"] / timings["ensemble"], 3),
        # Identity-checked but deliberately NOT named "speedup"/
        # "vector_speedup": check_regression gates only those keys, and
        # the hybrid ratio depends on the runner's core count.
        "hybrid_speedup": round(timings["serial_fast"] / timings["hybrid"], 3),
        "num_swaps": ens.best_result.num_swaps,
        "identical": identical,
    }


def run_layout_case(case: LayoutCase) -> dict:
    """Measure one end-to-end trial sweep under both code paths.

    Best-of-``repeats`` wall clock; the engine cache is cleared before
    every timed run so each measurement includes the (cold) lowering —
    precisely the cost the shared-IR path amortises across its
    ``num_trials x num_traversals`` passes.
    """
    device = case.device_builder()
    circuit = case.circuit_builder()
    timings = {}
    outputs = {}
    for label, cls in (("legacy", LegacySabreLayout), ("shared_ir", SabreLayout)):
        best = math.inf
        for _ in range(case.repeats):
            clear_cache()
            searcher = cls(
                device,
                num_trials=case.num_trials,
                num_traversals=case.num_traversals,
                seed=ROUTER_SEED,
            )
            start = time.perf_counter()
            outputs[label] = searcher.run(circuit)
            best = min(best, time.perf_counter() - start)
        timings[label] = best
    new, old = outputs["shared_ir"], outputs["legacy"]
    identical = (
        new.routing.circuit == old.routing.circuit
        and new.initial_layout == old.initial_layout
        and new.best_trial_index == old.best_trial_index
    )
    return {
        "name": case.name,
        "device": device.name,
        "num_qubits": device.num_qubits,
        "num_gates": circuit.num_gates,
        "num_trials": case.num_trials,
        "num_traversals": case.num_traversals,
        "legacy_seconds": round(timings["legacy"], 6),
        "shared_ir_seconds": round(timings["shared_ir"], 6),
        "speedup": round(timings["legacy"] / timings["shared_ir"], 3),
        "num_swaps": new.num_swaps,
        "identical": identical,
    }


def _geomean(values: Sequence[float]) -> float:
    return round(math.exp(sum(math.log(v) for v in values) / len(values)), 3)


def _host_info() -> dict:
    """Host metadata embedded in the report — speedup ratios transfer
    across machines, but absolute times only make sense next to the
    hardware and library versions that produced them."""
    return {
        "cpu_count": os.cpu_count(),
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
    }


def run_suite(
    cases: Sequence[Case],
    layout_cases: Sequence[LayoutCase],
    trials_cases: Sequence[TrialsCase],
    smoke: bool,
) -> dict:
    """Run every case and assemble the BENCH_router.json payload."""
    results = []
    for case in cases:
        row = run_case(case)
        results.append(row)
        print(
            f"  {row['name']:26s} ref={row['reference_seconds'] * 1000:9.1f}ms"
            f"  fast={row['fast_seconds'] * 1000:8.1f}ms"
            f"  vector={row['vector_seconds'] * 1000:8.1f}ms"
            f"  speedup=x{row['speedup']:<5.2f}"
            f"  vector=x{row['vector_speedup']:<5.2f}"
            f"  identical={row['identical']}"
        )
    print("layout sweeps: shared-IR vs legacy per-run-DAG")
    layout_results = []
    for layout_case in layout_cases:
        row = run_layout_case(layout_case)
        layout_results.append(row)
        print(
            f"  {row['name']:26s} old={row['legacy_seconds'] * 1000:9.1f}ms"
            f"  new={row['shared_ir_seconds'] * 1000:8.1f}ms"
            f"  speedup=x{row['speedup']:<5.2f}"
            f"  identical={row['identical']}"
        )
    print("trials sweeps: ensemble + hybrid (vector) vs serial (fast)")
    trials_results = []
    for trials_case in trials_cases:
        row = run_trials_case(trials_case)
        trials_results.append(row)
        print(
            f"  {row['name']:26s} serial={row['serial_fast_seconds'] * 1000:7.1f}ms"
            f"  ensemble={row['ensemble_seconds'] * 1000:8.1f}ms"
            f"  hybrid={row['hybrid_seconds'] * 1000:8.1f}ms"
            f" (j{row['hybrid_jobs']})"
            f"  speedup=x{row['speedup']:<5.2f}"
            f"  hybrid=x{row['hybrid_speedup']:<5.2f}"
            f"  identical={row['identical']}"
        )
    speedups = [row["speedup"] for row in results]
    vector_speedups = [row["vector_speedup"] for row in results]
    layout_speedups = [row["speedup"] for row in layout_results]
    trials_speedups = [row["speedup"] for row in trials_results]
    deep = [row for row in results if row["deep"]]
    summary = {
        "geomean_speedup": _geomean(speedups),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "deep_min_speedup": min(row["speedup"] for row in deep) if deep else None,
        "geomean_vector_speedup": _geomean(vector_speedups),
        "deep_vector_geomean": (
            _geomean([row["vector_speedup"] for row in deep]) if deep else None
        ),
        "geomean_layout_speedup": _geomean(layout_speedups),
        "min_layout_speedup": min(layout_speedups),
        "geomean_trials_speedup": (
            _geomean(trials_speedups) if trials_speedups else None
        ),
        # Informational only — core-count dependent, never gated.
        "geomean_hybrid_speedup": (
            _geomean([row["hybrid_speedup"] for row in trials_results])
            if trials_results
            else None
        ),
        "all_identical": all(
            row["identical"]
            for row in results + layout_results + trials_results
        ),
    }
    return {
        "schema": 4,
        "bench": "router_perf",
        "smoke": smoke,
        "layout_seed": LAYOUT_SEED,
        "router_seed": ROUTER_SEED,
        "host": _host_info(),
        "cases": results,
        "layout_cases": layout_results,
        "trials_cases": trials_results,
        "summary": summary,
    }


def check_regression(report: dict, baseline_path: str) -> List[str]:
    """Compare per-case speedups against a checked-in baseline.

    Covers both families: scorer cases (fast vs reference) and layout
    cases (shared-IR vs legacy).  Returns a list of failure messages
    (empty = pass).  Ratios are machine-relative, so the gate transfers
    across hardware; the tolerance absorbs runner noise.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    compared = 0
    for kind, diverged in (
        ("cases", "scorers diverged"),
        ("layout_cases", "shared-IR and legacy layout sweeps diverged"),
        ("trials_cases", "ensemble and serial executors diverged"),
    ):
        base_cases = {row["name"]: row for row in baseline.get(kind, [])}
        for row in report.get(kind, []):
            if not row["identical"]:
                failures.append(f"{row['name']}: {diverged}")
            base = base_cases.get(row["name"])
            if base is None:
                continue
            compared += 1
            for key, label, tolerance in (
                ("speedup", "speedup", REGRESSION_TOLERANCE),
                (
                    "vector_speedup",
                    "vector speedup",
                    VECTOR_REGRESSION_TOLERANCE,
                ),
            ):
                if key not in row or key not in base:
                    continue
                floor = base[key] * (1.0 - tolerance)
                if row[key] < floor:
                    failures.append(
                        f"{row['name']}: {label} x{row[key]:.2f} fell below "
                        f"x{floor:.2f} (baseline x{base[key]:.2f} - "
                        f"{tolerance:.0%})"
                    )
    if compared == 0:
        # A renamed case or a smoke/full baseline mismatch must not turn
        # the gate into a vacuous pass.
        failures.append(
            f"no benchmark case matched the baseline {baseline_path}"
        )
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark harness (opt-in)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scorer", ["vector", "fast", "reference"])
def test_router_scorers_qft20(benchmark, tokyo, scorer):
    circuit = qft(20)
    layout = Layout.random(tokyo.num_qubits, seed=LAYOUT_SEED)
    router = SabreRouter(
        tokyo, config=HeuristicConfig(scorer=scorer), seed=ROUTER_SEED
    )
    result = benchmark.pedantic(
        router.run,
        args=(circuit,),
        kwargs={"initial_layout": layout},
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update({"scorer": scorer, "swaps": result.num_swaps})


@pytest.mark.parametrize("path", ["shared_ir", "legacy"])
def test_layout_sweep_qft16(benchmark, tokyo, path):
    circuit = qft(16)
    cls = SabreLayout if path == "shared_ir" else LegacySabreLayout
    searcher = cls(tokyo, num_trials=5, num_traversals=3, seed=ROUTER_SEED)

    def sweep():
        clear_cache()
        return searcher.run(circuit)

    result = benchmark.pedantic(sweep, rounds=3, iterations=1)
    benchmark.extra_info.update({"path": path, "swaps": result.num_swaps})


@pytest.mark.parametrize("scorer", ["vector", "fast", "reference"])
def test_router_scorers_deep_grid(benchmark, scorer):
    device = grid_device(10, 10)
    circuit = random_circuit(100, 5000, seed=6, two_qubit_fraction=0.8)
    layout = Layout.random(device.num_qubits, seed=LAYOUT_SEED)
    router = SabreRouter(
        device, config=HeuristicConfig(scorer=scorer), seed=ROUTER_SEED
    )
    result = benchmark.pedantic(
        router.run,
        args=(circuit,),
        kwargs={"initial_layout": layout},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update({"scorer": scorer, "swaps": result.num_swaps})


# ----------------------------------------------------------------------
# Standalone harness
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI sweep (two cases) instead of the full curve",
    )
    parser.add_argument(
        "--output",
        default="BENCH_router.json",
        help="where to write the machine-readable report (default: %(default)s)",
    )
    parser.add_argument(
        "--check-regression",
        metavar="BASELINE",
        default=None,
        help="compare speedups against a baseline BENCH_router.json; exit "
        f"non-zero on a >{REGRESSION_TOLERANCE:.0%} drop or a scorer mismatch",
    )
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    layout_cases = SMOKE_LAYOUT_CASES if args.smoke else FULL_LAYOUT_CASES
    trials_cases = SMOKE_TRIALS_CASES if args.smoke else FULL_TRIALS_CASES
    label = "smoke" if args.smoke else "full"
    print(f"router perf ({label}): vector/fast scorers vs reference scorer")
    report = run_suite(cases, layout_cases, trials_cases, smoke=args.smoke)
    summary = report["summary"]
    print(
        f"  scorer geomean x{summary['geomean_speedup']:.2f} "
        f"(deep-case min x{summary['deep_min_speedup']:.2f}), "
        f"vector geomean x{summary['geomean_vector_speedup']:.2f}, "
        f"layout geomean x{summary['geomean_layout_speedup']:.2f}, "
        f"trials geomean x{summary['geomean_trials_speedup']:.2f}, "
        f"all identical: {summary['all_identical']}"
    )
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"  wrote {args.output}")

    if not summary["all_identical"]:
        print("FAIL: benchmark code paths routed differently", file=sys.stderr)
        return 1
    if args.check_regression:
        failures = check_regression(report, args.check_regression)
        if failures:
            for message in failures:
                print(f"REGRESSION: {message}", file=sys.stderr)
            return 1
        print(f"  regression gate ok (vs {args.check_regression})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
