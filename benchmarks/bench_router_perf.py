"""Router-core perf benchmark: fast delta scorer vs reference scorer.

Times one routing traversal (``SabreRouter.run``) per case under both
scorer implementations, asserts the routed circuits are *identical*
(the differential guarantee), and emits a machine-readable
``BENCH_router.json`` so the perf trajectory has data points and CI can
gate on regressions.

Three ways to run it:

- standalone full sweep (the numbers quoted in the README)::

      PYTHONPATH=src python benchmarks/bench_router_perf.py

- seconds-long CI smoke check with the regression gate::

      PYTHONPATH=src python benchmarks/bench_router_perf.py --smoke \
          --check-regression benchmarks/BENCH_router_baseline.json

- pytest-benchmark harness (opt-in, like every ``bench_*.py`` here)::

      pytest benchmarks/bench_router_perf.py --benchmark-only

The regression gate compares *speedup ratios* (fast vs reference on the
same machine, same process), not absolute wall-clock, so it is stable
across runner hardware: a >25% drop in any case's speedup against the
checked-in baseline fails the run.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import pytest

from repro.bench_circuits import qft
from repro.circuits import QuantumCircuit, random_circuit
from repro.core import HeuristicConfig, Layout, SabreRouter
from repro.hardware import CouplingGraph, grid_device, ibm_q20_tokyo

#: Allowed relative drop in a case's speedup before the gate fails.
REGRESSION_TOLERANCE = 0.25

#: Layout seed shared by every case (fixed => deterministic swaps).
LAYOUT_SEED = 9

#: Router tie-break seed.
ROUTER_SEED = 0


@dataclass(frozen=True)
class Case:
    """One benchmark case: a circuit routed on a device, N times."""

    name: str
    device_builder: Callable[[], CouplingGraph]
    circuit_builder: Callable[[], QuantumCircuit]
    repeats: int
    #: Cases tagged deep form the "deep-circuit scaling bench" — the
    #: regime the delta scorer exists for (large device, long circuit).
    deep: bool = False


def _rand(n: int, gates: int) -> Callable[[], QuantumCircuit]:
    return lambda: random_circuit(n, gates, seed=6, two_qubit_fraction=0.8)


#: Full sweep: small-device cases (where per-step overhead dominates and
#: the win is modest) up the scaling curve to the deep cases (where the
#: O(|F|+|E|) -> O(deg) reduction shows its asymptotics).
FULL_CASES = [
    Case("qft20_tokyo", ibm_q20_tokyo, lambda: qft(20), repeats=3),
    Case("rand2000_tokyo", ibm_q20_tokyo, _rand(20, 2000), repeats=3),
    Case("rand3000_grid7x7", lambda: grid_device(7, 7), _rand(49, 3000), repeats=2),
    Case(
        "rand5000_grid10x10",
        lambda: grid_device(10, 10),
        _rand(100, 5000),
        repeats=2,
    ),
    Case(
        "rand8000_grid12x12",
        lambda: grid_device(12, 12),
        _rand(144, 8000),
        repeats=1,
        deep=True,
    ),
    Case(
        "rand12000_grid14x14",
        lambda: grid_device(14, 14),
        _rand(196, 12000),
        repeats=1,
        deep=True,
    ),
]

#: Smoke sweep: seconds-long, still deep enough that the speedup ratio
#: is stable on shared CI runners.
SMOKE_CASES = [
    Case("rand1200_grid6x6", lambda: grid_device(6, 6), _rand(36, 1200), repeats=3),
    Case(
        "rand2500_grid9x9",
        lambda: grid_device(9, 9),
        _rand(81, 2500),
        repeats=2,
        deep=True,
    ),
]


def _time_router(
    device: CouplingGraph,
    circuit: QuantumCircuit,
    scorer: str,
    layout: Layout,
    repeats: int,
):
    """Best-of-``repeats`` wall-clock for one traversal; returns
    ``(seconds, result)``."""
    router = SabreRouter(
        device, config=HeuristicConfig(scorer=scorer), seed=ROUTER_SEED
    )
    best = math.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = router.run(circuit, initial_layout=layout)
        best = min(best, time.perf_counter() - start)
    return best, result


def run_case(case: Case) -> dict:
    """Measure one case under both scorers and check identity."""
    device = case.device_builder()
    circuit = case.circuit_builder()
    layout = Layout.random(device.num_qubits, seed=LAYOUT_SEED)
    ref_seconds, ref = _time_router(
        device, circuit, "reference", layout, case.repeats
    )
    fast_seconds, fast = _time_router(
        device, circuit, "fast", layout, case.repeats
    )
    assert ref is not None and fast is not None
    identical = (
        fast.circuit == ref.circuit
        and fast.swap_positions == ref.swap_positions
        and fast.final_layout == ref.final_layout
    )
    return {
        "name": case.name,
        "device": device.name,
        "num_qubits": device.num_qubits,
        "num_gates": circuit.num_gates,
        "deep": case.deep,
        "reference_seconds": round(ref_seconds, 6),
        "fast_seconds": round(fast_seconds, 6),
        "speedup": round(ref_seconds / fast_seconds, 3),
        "num_swaps": fast.num_swaps,
        "identical": identical,
    }


def run_suite(cases: Sequence[Case], smoke: bool) -> dict:
    """Run every case and assemble the BENCH_router.json payload."""
    results = []
    for case in cases:
        row = run_case(case)
        results.append(row)
        print(
            f"  {row['name']:22s} ref={row['reference_seconds'] * 1000:9.1f}ms"
            f"  fast={row['fast_seconds'] * 1000:8.1f}ms"
            f"  speedup=x{row['speedup']:<5.2f}"
            f"  identical={row['identical']}"
        )
    speedups = [row["speedup"] for row in results]
    deep = [row for row in results if row["deep"]]
    summary = {
        "geomean_speedup": round(
            math.exp(sum(math.log(s) for s in speedups) / len(speedups)), 3
        ),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "deep_min_speedup": min(row["speedup"] for row in deep) if deep else None,
        "all_identical": all(row["identical"] for row in results),
    }
    return {
        "schema": 1,
        "bench": "router_perf",
        "smoke": smoke,
        "layout_seed": LAYOUT_SEED,
        "router_seed": ROUTER_SEED,
        "cases": results,
        "summary": summary,
    }


def check_regression(report: dict, baseline_path: str) -> List[str]:
    """Compare per-case speedups against a checked-in baseline.

    Returns a list of failure messages (empty = pass).  Ratios are
    machine-relative, so the gate transfers across hardware; the
    tolerance absorbs runner noise.
    """
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    base_cases = {row["name"]: row for row in baseline["cases"]}
    failures = []
    compared = 0
    for row in report["cases"]:
        if not row["identical"]:
            failures.append(
                f"{row['name']}: fast and reference scorers diverged"
            )
        base = base_cases.get(row["name"])
        if base is None:
            continue
        compared += 1
        floor = base["speedup"] * (1.0 - REGRESSION_TOLERANCE)
        if row["speedup"] < floor:
            failures.append(
                f"{row['name']}: speedup x{row['speedup']:.2f} fell below "
                f"x{floor:.2f} (baseline x{base['speedup']:.2f} - "
                f"{REGRESSION_TOLERANCE:.0%})"
            )
    if compared == 0:
        # A renamed case or a smoke/full baseline mismatch must not turn
        # the gate into a vacuous pass.
        failures.append(
            f"no benchmark case matched the baseline {baseline_path} "
            f"(baseline names: {sorted(base_cases)})"
        )
    return failures


# ----------------------------------------------------------------------
# pytest-benchmark harness (opt-in)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("scorer", ["fast", "reference"])
def test_router_scorers_qft20(benchmark, tokyo, scorer):
    circuit = qft(20)
    layout = Layout.random(tokyo.num_qubits, seed=LAYOUT_SEED)
    router = SabreRouter(
        tokyo, config=HeuristicConfig(scorer=scorer), seed=ROUTER_SEED
    )
    result = benchmark.pedantic(
        router.run,
        args=(circuit,),
        kwargs={"initial_layout": layout},
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info.update({"scorer": scorer, "swaps": result.num_swaps})


@pytest.mark.parametrize("scorer", ["fast", "reference"])
def test_router_scorers_deep_grid(benchmark, scorer):
    device = grid_device(10, 10)
    circuit = random_circuit(100, 5000, seed=6, two_qubit_fraction=0.8)
    layout = Layout.random(device.num_qubits, seed=LAYOUT_SEED)
    router = SabreRouter(
        device, config=HeuristicConfig(scorer=scorer), seed=ROUTER_SEED
    )
    result = benchmark.pedantic(
        router.run,
        args=(circuit,),
        kwargs={"initial_layout": layout},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update({"scorer": scorer, "swaps": result.num_swaps})


# ----------------------------------------------------------------------
# Standalone harness
# ----------------------------------------------------------------------


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="seconds-long CI sweep (two cases) instead of the full curve",
    )
    parser.add_argument(
        "--output",
        default="BENCH_router.json",
        help="where to write the machine-readable report (default: %(default)s)",
    )
    parser.add_argument(
        "--check-regression",
        metavar="BASELINE",
        default=None,
        help="compare speedups against a baseline BENCH_router.json; exit "
        f"non-zero on a >{REGRESSION_TOLERANCE:.0%} drop or a scorer mismatch",
    )
    args = parser.parse_args(argv)

    cases = SMOKE_CASES if args.smoke else FULL_CASES
    label = "smoke" if args.smoke else "full"
    print(f"router perf ({label}): fast delta scorer vs reference scorer")
    report = run_suite(cases, smoke=args.smoke)
    summary = report["summary"]
    print(
        f"  geomean speedup x{summary['geomean_speedup']:.2f}, "
        f"deep-case min x{summary['deep_min_speedup']:.2f}, "
        f"all identical: {summary['all_identical']}"
    )
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"  wrote {args.output}")

    if not summary["all_identical"]:
        print("FAIL: fast and reference scorers routed differently", file=sys.stderr)
        return 1
    if args.check_regression:
        failures = check_regression(report, args.check_regression)
        if failures:
            for message in failures:
                print(f"REGRESSION: {message}", file=sys.stderr)
            return 1
        print(f"  regression gate ok (vs {args.check_regression})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
