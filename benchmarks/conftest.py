"""Shared fixtures for the benchmark harness."""

from __future__ import annotations

import pytest

from repro.hardware import distance_matrix, ibm_q20_tokyo


@pytest.fixture(scope="session")
def tokyo():
    """The paper's evaluation device (Fig. 2)."""
    return ibm_q20_tokyo()


@pytest.fixture(scope="session")
def tokyo_distance(tokyo):
    """Distance matrix shared across benches (precomputed once)."""
    return distance_matrix(tokyo)
