"""§V-B2 scalability benchmarks: SABRE stays flat, BKA explodes.

Times both mappers across the qft size sweep and records the BKA's
search-node growth.  The paper's claim — exponential speedup of the
SWAP-based search over mapping-based exhaustive search — shows up here
as orders-of-magnitude node-count growth vs SABRE's linear-ish runtime.
Run::

    pytest benchmarks/bench_scaling.py --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.baselines import AStarMapper
from repro.bench_circuits import ising_model, qft
from repro.core import compile_circuit
from repro.exceptions import SearchExhausted

QFT_SIZES = [4, 8, 12, 16, 20]
BKA_SIZES = [4, 6, 8, 10]  # beyond this the budget wall dominates

#: Trial-engine knobs, same contract as bench_table2: unset keeps the
#: paper's single-trial scaling configuration.
BENCH_TRIALS = int(os.environ.get("REPRO_BENCH_TRIALS", "0")) or None
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def _sabre_kwargs(num_trials):
    kwargs = {"seed": 0, "num_trials": BENCH_TRIALS or num_trials}
    if BENCH_JOBS > 1:
        kwargs["executor"] = "process"
        kwargs["jobs"] = BENCH_JOBS
    return kwargs


@pytest.mark.parametrize("n", QFT_SIZES)
def test_sabre_scaling_qft(benchmark, tokyo, tokyo_distance, n):
    circuit = qft(n)
    result = benchmark.pedantic(
        compile_circuit,
        args=(circuit, tokyo),
        kwargs={**_sabre_kwargs(1), "distance": tokyo_distance},
        rounds=2,
        iterations=1,
    )
    benchmark.extra_info.update(
        {"n": n, "g": circuit.num_gates, "g_add": result.added_gates}
    )


@pytest.mark.parametrize("n", BKA_SIZES)
def test_bka_scaling_qft(benchmark, tokyo, tokyo_distance, n):
    circuit = qft(n)
    mapper = AStarMapper(
        tokyo, max_nodes=800_000, max_seconds=90.0, distance=tokyo_distance
    )
    result = benchmark.pedantic(mapper.run, args=(circuit,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"n": n, "nodes": mapper.last_run_nodes, "g_add": result.added_gates}
    )


def test_bka_exhausts_qft20(benchmark, tokyo, tokyo_distance):
    """Table II: qft_20 is an 'Out of Memory' row for the BKA."""
    circuit = qft(20)

    def run():
        mapper = AStarMapper(
            tokyo, max_nodes=400_000, max_seconds=60.0, distance=tokyo_distance
        )
        with pytest.raises(SearchExhausted):
            mapper.run(circuit)
        return mapper.last_run_nodes

    nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["nodes_at_exhaustion"] = nodes


def test_bka_exhausts_ising16(benchmark, tokyo, tokyo_distance):
    """Table II: ising_model_16 is the other 'Out of Memory' row."""
    circuit = ising_model(16)

    def run():
        mapper = AStarMapper(
            tokyo, max_nodes=400_000, max_seconds=60.0, distance=tokyo_distance
        )
        with pytest.raises(SearchExhausted):
            mapper.run(circuit)
        return mapper.last_run_nodes

    nodes = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["nodes_at_exhaustion"] = nodes


def test_sabre_handles_bka_oom_rows_fast(benchmark, tokyo, tokyo_distance):
    """The paper's punchline: where BKA dies, SABRE takes a fraction of
    a second per traversal."""

    def run_both():
        a = compile_circuit(
            ising_model(16), tokyo, distance=tokyo_distance, **_sabre_kwargs(1)
        )
        b = compile_circuit(
            qft(20), tokyo, distance=tokyo_distance, **_sabre_kwargs(1)
        )
        return a, b

    ising_result, qft_result = benchmark.pedantic(run_both, rounds=2, iterations=1)
    benchmark.extra_info.update(
        {
            "ising16_g_add": ising_result.added_gates,
            "qft20_g_add": qft_result.added_gates,
        }
    )
