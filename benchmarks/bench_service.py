#!/usr/bin/env python
"""Service smoke + latency benchmark: cold vs warm request latency.

Launches the real ``python -m repro serve`` CLI as a subprocess on a
free port with a persistent store, then drives it over HTTP with the
stdlib client, asserting the serving tier's contract end-to-end:

- ``GET /healthz`` answers (the server came up);
- a cold ``POST /compile`` returns 200 with hardware-compliant routed
  QASM and runs exactly one pipeline execution;
- an identical warm ``POST /compile`` is answered from the store
  (``cached`` flag + store hit counters, zero new executions) and is
  **an order of magnitude faster**: the regression gate fails the run
  when warm latency exceeds ``MAX_WARM_RATIO`` (10%) of cold latency;
- a second server process over the same store directory answers the
  same request from *disk* without any recompilation (persistence).

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
CI runs ``--smoke``; the default adds a routing-heavy circuit so the
cold/warm gap reflects Table II-scale work.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from typing import Optional, Sequence

from repro.hardware import get_device
from repro.qasm import emit_qasm, parse_qasm
from repro.service.client import ServiceClient, find_free_port
from repro.verify import is_hardware_compliant

#: Warm (store-hit) latency must be below this fraction of cold latency.
MAX_WARM_RATIO = 0.10


def build_qasm(num_qubits: int, num_gates: int, seed: int) -> str:
    from repro.circuits import random_circuit

    circuit = random_circuit(
        num_qubits, num_gates, seed=seed, two_qubit_fraction=0.7
    )
    for q in range(num_qubits):
        circuit.measure(q, q)
    return emit_qasm(circuit)


def launch_server(port: int, store_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(repo, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--store-dir", store_dir,
            "--workers", "2",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def timed_compile(client: ServiceClient, qasm: str, trials: int) -> tuple:
    started = time.perf_counter()
    reply = client.compile(qasm, trials=trials)
    return time.perf_counter() - started, reply


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def run_case(
    label: str, qasm: str, trials: int, report: dict
) -> None:
    port = find_free_port()
    store_root = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
    store_dir = store_root.name
    process = launch_server(port, store_dir)
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=300)
        client.wait_until_healthy(timeout=30)

        cold_seconds, cold = timed_compile(client, qasm, trials)
        check(cold["state"] == "done", f"{label}: cold compile not done")
        check(not cold["cached"], f"{label}: cold compile claimed cached")
        routed = parse_qasm(cold["result"]["routed_qasm"])
        check(
            is_hardware_compliant(routed, get_device("ibm_q20_tokyo")),
            f"{label}: routed output not hardware-compliant",
        )

        warm_seconds, warm = timed_compile(client, qasm, trials)
        check(warm["cached"], f"{label}: warm compile missed the store")
        check(
            warm["result"]["routed_qasm"] == cold["result"]["routed_qasm"],
            f"{label}: warm artifact differs from cold",
        )
        stats = client.stats()
        check(
            stats["store"]["hits"] >= 1,
            f"{label}: store hit counter did not move",
        )
        check(
            stats["scheduler"]["executions"] == 1,
            f"{label}: expected exactly 1 pipeline execution, got "
            f"{stats['scheduler']['executions']}",
        )
        ratio = warm_seconds / cold_seconds if cold_seconds > 0 else 0.0
        check(
            ratio < MAX_WARM_RATIO,
            f"{label}: warm latency {warm_seconds * 1e3:.1f} ms is "
            f"{ratio:.1%} of cold {cold_seconds * 1e3:.1f} ms "
            f"(gate: < {MAX_WARM_RATIO:.0%})",
        )
    finally:
        process.terminate()
        process.wait(timeout=10)

    # Persistence: a brand-new server process over the same store
    # directory must answer from disk without recompiling.
    port2 = find_free_port()
    process = launch_server(port2, store_dir)
    try:
        client = ServiceClient(f"http://127.0.0.1:{port2}", timeout=300)
        client.wait_until_healthy(timeout=30)
        disk_seconds, disk = timed_compile(client, qasm, trials)
        check(
            disk["cached"],
            f"{label}: restarted server recompiled instead of reading disk",
        )
        stats = client.stats()
        check(
            stats["store"]["disk_hits"] >= 1,
            f"{label}: restart served a hit but not from the disk tier",
        )
        check(
            stats["scheduler"]["executions"] == 0,
            f"{label}: restarted server ran the pipeline again",
        )
    finally:
        process.terminate()
        process.wait(timeout=10)
        store_root.cleanup()

    row = {
        "cold_ms": round(cold_seconds * 1e3, 2),
        "warm_ms": round(warm_seconds * 1e3, 2),
        "warm_over_cold": round(ratio, 4),
        "restart_disk_ms": round(disk_seconds * 1e3, 2),
        "g_add": cold["result"]["metrics"]["g_add"],
    }
    report[label] = row
    print(
        f"  {label:14s} cold {row['cold_ms']:9.2f} ms   warm "
        f"{row['warm_ms']:7.2f} ms ({row['warm_over_cold']:.1%})   "
        f"disk-after-restart {row['restart_disk_ms']:7.2f} ms   ok"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small circuit only (seconds-long CI step)",
    )
    parser.add_argument("--output", help="write the JSON report here")
    args = parser.parse_args(argv)

    print("service cold/warm latency (real `repro serve` subprocess):")
    report: dict = {}
    # Heavy enough that a cold compile dwarfs the fixed HTTP round-trip
    # cost a warm store hit still pays (~2-3 ms) — the 10% gate measures
    # the store, not the socket.
    run_case("rand16x250", build_qasm(16, 250, seed=11), trials=8, report=report)
    if not args.smoke:
        run_case(
            "rand20x600", build_qasm(20, 600, seed=5), trials=10, report=report
        )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=1)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
