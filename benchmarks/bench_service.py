#!/usr/bin/env python
"""Service benchmark: cold/warm latency gate + traffic replay.

Two parts, both driving the real ``python -m repro serve`` CLI as a
subprocess on a free port with a persistent store:

**Latency gate** (the original smoke): ``GET /healthz`` answers; a cold
``POST /compile`` returns hardware-compliant routed QASM with exactly
one pipeline execution; the identical warm request is answered from the
store and must cost < ``MAX_WARM_RATIO`` (10%) of the cold latency; a
second server over the same store directory answers from *disk* with
zero recompiles.

**Traffic replay**: a mixed hot/cold request stream over a corpus drawn
from the paper's benchmark suites (``repro.bench_circuits``) plus
random circuits, replayed by T concurrent client threads against the
thread tier and the process-worker tier.  Reports p50/p95/p99 request
latency, throughput, and the coalescing/store counters for each tier.
The process tier's ≥2x multicore headline needs >1 core — the report
records ``cpu_count`` so single-core CI numbers aren't misread.

Run:  PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
CI runs ``--smoke`` (small corpus, short stream); the default adds the
sim/qft suites and a Table II-scale random circuit, and writes
``BENCH_service.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import random
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench_circuits import build_benchmark, suite
from repro.hardware import get_device
from repro.qasm import emit_qasm, parse_qasm
from repro.service.client import ServiceClient, find_free_port
from repro.telemetry.metrics import LATENCY_BUCKETS_SECONDS, histogram_payload
from repro.verify import is_hardware_compliant

#: Warm (store-hit) latency must be below this fraction of cold latency.
MAX_WARM_RATIO = 0.10

#: Fraction of replayed requests that repeat an already-seen request
#: (hot traffic: store hits and coalescing) vs. fresh fingerprints.
HOT_FRACTION = 0.6


def build_qasm(num_qubits: int, num_gates: int, seed: int) -> str:
    from repro.circuits import random_circuit

    circuit = random_circuit(
        num_qubits, num_gates, seed=seed, two_qubit_fraction=0.7
    )
    for q in range(num_qubits):
        circuit.measure(q, q)
    return emit_qasm(circuit)


def launch_server(
    port: int,
    store_dir: str,
    workers: int = 2,
    execution: Optional[str] = None,
) -> subprocess.Popen:
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(repo, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(port),
        "--store-dir", store_dir,
        "--workers", str(workers),
    ]
    if execution is not None:
        argv += ["--execution", execution]
    return subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def timed_compile(client: ServiceClient, qasm: str, trials: int) -> tuple:
    started = time.perf_counter()
    reply = client.compile(qasm, trials=trials)
    return time.perf_counter() - started, reply


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


# ----------------------------------------------------------------------
# Part 1: cold/warm latency gate (original smoke, unchanged contract)
# ----------------------------------------------------------------------


def run_case(
    label: str, qasm: str, trials: int, report: dict
) -> None:
    port = find_free_port()
    store_root = tempfile.TemporaryDirectory(prefix="repro-bench-store-")
    store_dir = store_root.name
    process = launch_server(port, store_dir)
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=300)
        client.wait_until_healthy(timeout=30)

        cold_seconds, cold = timed_compile(client, qasm, trials)
        check(cold["state"] == "done", f"{label}: cold compile not done")
        check(not cold["cached"], f"{label}: cold compile claimed cached")
        routed = parse_qasm(cold["result"]["routed_qasm"])
        check(
            is_hardware_compliant(routed, get_device("ibm_q20_tokyo")),
            f"{label}: routed output not hardware-compliant",
        )

        warm_seconds, warm = timed_compile(client, qasm, trials)
        check(warm["cached"], f"{label}: warm compile missed the store")
        check(
            warm["result"]["routed_qasm"] == cold["result"]["routed_qasm"],
            f"{label}: warm artifact differs from cold",
        )
        stats = client.stats()
        check(
            stats["store"]["hits"] >= 1,
            f"{label}: store hit counter did not move",
        )
        check(
            stats["scheduler"]["executions"] == 1,
            f"{label}: expected exactly 1 pipeline execution, got "
            f"{stats['scheduler']['executions']}",
        )
        ratio = warm_seconds / cold_seconds if cold_seconds > 0 else 0.0
        check(
            ratio < MAX_WARM_RATIO,
            f"{label}: warm latency {warm_seconds * 1e3:.1f} ms is "
            f"{ratio:.1%} of cold {cold_seconds * 1e3:.1f} ms "
            f"(gate: < {MAX_WARM_RATIO:.0%})",
        )
    finally:
        process.terminate()
        process.wait(timeout=10)

    # Persistence: a brand-new server process over the same store
    # directory must answer from disk without recompiling.
    port2 = find_free_port()
    process = launch_server(port2, store_dir)
    try:
        client = ServiceClient(f"http://127.0.0.1:{port2}", timeout=300)
        client.wait_until_healthy(timeout=30)
        disk_seconds, disk = timed_compile(client, qasm, trials)
        check(
            disk["cached"],
            f"{label}: restarted server recompiled instead of reading disk",
        )
        stats = client.stats()
        check(
            stats["store"]["disk_hits"] >= 1,
            f"{label}: restart served a hit but not from the disk tier",
        )
        check(
            stats["scheduler"]["executions"] == 0,
            f"{label}: restarted server ran the pipeline again",
        )
    finally:
        process.terminate()
        process.wait(timeout=10)
        store_root.cleanup()

    row = {
        "cold_ms": round(cold_seconds * 1e3, 2),
        "warm_ms": round(warm_seconds * 1e3, 2),
        "warm_over_cold": round(ratio, 4),
        "restart_disk_ms": round(disk_seconds * 1e3, 2),
        "g_add": cold["result"]["metrics"]["g_add"],
    }
    report[label] = row
    print(
        f"  {label:14s} cold {row['cold_ms']:9.2f} ms   warm "
        f"{row['warm_ms']:7.2f} ms ({row['warm_over_cold']:.1%})   "
        f"disk-after-restart {row['restart_disk_ms']:7.2f} ms   ok"
    )


# ----------------------------------------------------------------------
# Part 2: traffic replay (mixed hot/cold streams, thread vs process)
# ----------------------------------------------------------------------


def build_corpus(smoke: bool) -> List[Tuple[str, str]]:
    """(label, qasm) pairs spanning the paper's benchmark families —
    reversible-logic, simulation, QFT — plus random circuits, so the
    replay mixes short and routing-heavy compiles like real traffic."""
    corpus: List[Tuple[str, str]] = []
    names = [s.name for s in suite("small")][: 2 if smoke else 4]
    if not smoke:
        names += [s.name for s in suite("sim")][:2]
        names += [s.name for s in suite("qft")][:1]
    for name in names:
        corpus.append((name, emit_qasm(build_benchmark(name))))
    corpus.append(("rand8x60", build_qasm(8, 60, seed=3)))
    if not smoke:
        corpus.append(("rand16x200", build_qasm(16, 200, seed=7)))
    return corpus


def build_stream(
    corpus: List[Tuple[str, str]], total: int, rng: random.Random
) -> List[Tuple[str, str, int]]:
    """A (label, qasm, seed) request stream: HOT_FRACTION of requests
    re-use seed 0 (identical fingerprints -> store hits / coalescing);
    the rest get unique seeds (guaranteed cold compiles)."""
    stream: List[Tuple[str, str, int]] = []
    cold_seed = 1000
    for _ in range(total):
        label, qasm = corpus[rng.randrange(len(corpus))]
        if rng.random() < HOT_FRACTION:
            stream.append((label, qasm, 0))
        else:
            stream.append((label, qasm, cold_seed))
            cold_seed += 1
    return stream


def percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


def replay(
    execution: str,
    stream: List[Tuple[str, str, int]],
    num_clients: int,
    trials: int,
) -> Dict[str, object]:
    """Replay ``stream`` with ``num_clients`` concurrent threads against
    a fresh server on the given execution tier; return the latency and
    counter report."""
    port = find_free_port()
    with tempfile.TemporaryDirectory(prefix="repro-replay-store-") as root:
        process = launch_server(port, root, workers=2, execution=execution)
        try:
            base = f"http://127.0.0.1:{port}"
            ServiceClient(base, timeout=600).wait_until_healthy(timeout=30)

            work: "queue.Queue" = queue.Queue()
            for item in stream:
                work.put(item)
            latencies: List[float] = []
            cached_count = [0]
            errors: List[str] = []
            lock = threading.Lock()

            def drive() -> None:
                client = ServiceClient(base, timeout=600)
                while True:
                    try:
                        label, qasm, seed = work.get_nowait()
                    except queue.Empty:
                        return
                    started = time.perf_counter()
                    try:
                        reply = client.compile(
                            qasm, seed=seed, trials=trials
                        )
                    except Exception as exc:  # noqa: BLE001
                        with lock:
                            errors.append(f"{label}/{seed}: {exc}")
                        continue
                    elapsed = time.perf_counter() - started
                    with lock:
                        latencies.append(elapsed)
                        if reply.get("cached"):
                            cached_count[0] += 1

            started = time.perf_counter()
            threads = [
                threading.Thread(target=drive, name=f"replay-{i}")
                for i in range(num_clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall = time.perf_counter() - started
            stats = ServiceClient(base, timeout=60).stats()
        finally:
            process.terminate()
            process.wait(timeout=10)

    check(errors == [], f"{execution} replay errors: {errors[:3]}")
    check(
        len(latencies) == len(stream),
        f"{execution} replay answered {len(latencies)}/{len(stream)}",
    )
    ordered = sorted(latencies)
    scheduler = stats["scheduler"]
    check(
        scheduler["execution"] == execution,
        f"server ran {scheduler['execution']}, expected {execution}",
    )
    unique = len({(q, s) for _, q, s in stream})
    check(
        scheduler["executions"] <= unique,
        f"{execution}: {scheduler['executions']} executions for "
        f"{unique} unique requests — store/coalescing dedup broken",
    )
    # The latency distribution exports through the same histogram
    # definition (bucket bounds + quantile estimator) the live service
    # publishes on /metrics — a Prometheus query over the running tier
    # and this report's numbers agree bucket-for-bucket.
    latency_hist = histogram_payload(latencies, LATENCY_BUCKETS_SECONDS)
    return {
        "requests": len(stream),
        "clients": num_clients,
        "wall_seconds": round(wall, 3),
        "throughput_rps": round(len(stream) / wall, 2) if wall else 0.0,
        "p50_ms": round(percentile(ordered, 0.50) * 1e3, 2),
        "p95_ms": round(percentile(ordered, 0.95) * 1e3, 2),
        "p99_ms": round(percentile(ordered, 0.99) * 1e3, 2),
        "latency_histogram": latency_hist,
        "cached_replies": cached_count[0],
        "executions": scheduler["executions"],
        "coalesced": scheduler["coalesced"],
        "store_answered": scheduler["store_answered"],
        "worker_crashes": scheduler["worker_crashes"],
    }


def run_replay(smoke: bool, report: dict) -> None:
    corpus = build_corpus(smoke)
    total = 24 if smoke else 72
    num_clients = 4 if smoke else 6
    trials = 1 if smoke else 2
    stream = build_stream(corpus, total, random.Random(42))
    hot = sum(1 for _, _, seed in stream if seed == 0)
    print(
        f"traffic replay: {total} requests ({hot} hot / {total - hot} cold) "
        f"over {len(corpus)} circuits, {num_clients} clients, "
        f"cpu_count={os.cpu_count()}:"
    )
    tiers: Dict[str, object] = {}
    for execution in ("thread", "process"):
        row = replay(execution, stream, num_clients, trials)
        tiers[execution] = row
        print(
            f"  {execution:8s} {row['throughput_rps']:6.2f} req/s   "
            f"p50 {row['p50_ms']:7.2f} ms   p95 {row['p95_ms']:8.2f} ms   "
            f"p99 {row['p99_ms']:8.2f} ms   "
            f"executions {row['executions']}   ok"
        )
    # The multi-trial executor a `repro serve --trial-jobs 2` lane would
    # pick for this corpus's requests, with its shard plan.  Computed
    # from the request alone (never this host's core count), so the
    # recorded choice is what any deployment granting 2 cores per
    # compile would make — metadata for reading the numbers, not a
    # measurement.
    from repro.engine.shared import plan_shards
    from repro.service.request import CompileRequest, trial_executor_decision

    probe = CompileRequest(qasm=corpus[0][1])
    decision = trial_executor_decision(probe, 2)
    trial_executor = None
    if decision is not None:
        trial_executor = decision.as_properties()
        trial_executor["shard_plan"] = plan_shards(
            list(range(decision.num_seeds)), decision.jobs
        )
    report["replay"] = {
        "cpu_count": os.cpu_count(),
        "hot_fraction": HOT_FRACTION,
        "corpus": [label for label, _ in corpus],
        "tiers": tiers,
        "trial_executor_at_jobs2": trial_executor,
        "note": (
            "process-tier throughput gains over thread-tier require "
            "multiple cores; cpu_count above says how many this host had"
        ),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small corpus + short stream (seconds-long CI step)",
    )
    parser.add_argument(
        "--skip-replay",
        action="store_true",
        help="latency gate only (the pre-replay behaviour)",
    )
    parser.add_argument("--output", help="write the JSON report here")
    args = parser.parse_args(argv)

    print("service cold/warm latency (real `repro serve` subprocess):")
    report: dict = {}
    # Heavy enough that a cold compile dwarfs the fixed HTTP round-trip
    # cost a warm store hit still pays (~2-3 ms) — the 10% gate measures
    # the store, not the socket.
    run_case("rand16x250", build_qasm(16, 250, seed=11), trials=8, report=report)
    if not args.smoke:
        run_case(
            "rand20x600", build_qasm(20, 600, seed=5), trials=10, report=report
        )
    if not args.skip_replay:
        run_replay(args.smoke, report)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=1)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
