"""Ablation benchmarks: what each SABRE design decision buys.

DESIGN.md calls out three stacked decisions (basic NNC -> look-ahead ->
decay) plus the reverse traversal and the |E|/W hyper-parameters.  Each
bench isolates one and records the quality movement in ``extra_info``.
Run::

    pytest benchmarks/bench_ablation.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.baselines import GreedyMapper, TrivialRouter
from repro.bench_circuits import build_benchmark, qft
from repro.core import HeuristicConfig, SabreLayout, SabreRouter, compile_circuit
from repro.extensions import ABLATION_CONFIGS

WORKLOAD = "qft_10"


@pytest.mark.parametrize("config_name", ["basic", "lookahead", "decay"])
def test_heuristic_stack(benchmark, tokyo, tokyo_distance, config_name):
    """Equation 1 -> +look-ahead -> +decay, single traversal each so the
    heuristic (not the restart machinery) is what's measured."""
    circuit = build_benchmark(WORKLOAD)
    config = ABLATION_CONFIGS[config_name]
    router = SabreRouter(tokyo, config=config, seed=0, distance=tokyo_distance)
    result = benchmark.pedantic(router.run, args=(circuit,), rounds=3, iterations=1)
    benchmark.extra_info.update(
        {"config": config_name, "swaps": result.num_swaps}
    )


@pytest.mark.parametrize("traversals", [1, 3, 5])
def test_reverse_traversal_depth(benchmark, tokyo, tokyo_distance, traversals):
    """1 traversal = g_la configuration; 3 = the paper; 5 = does more
    bidirectional polishing keep paying?"""
    circuit = build_benchmark(WORKLOAD)
    search = SabreLayout(
        tokyo,
        num_traversals=traversals,
        num_trials=3,
        seed=0,
        distance=tokyo_distance,
    )
    result = benchmark.pedantic(search.run, args=(circuit,), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"traversals": traversals, "swaps": result.num_swaps}
    )


@pytest.mark.parametrize("size", [0, 5, 20, 80])
def test_extended_set_size_sweep(benchmark, tokyo, tokyo_distance, size):
    """|E| sweep: the paper fixes 20 and notes 'a large E is not
    necessary'."""
    circuit = build_benchmark(WORKLOAD)
    config = HeuristicConfig(mode="decay", extended_set_size=size)
    router = SabreRouter(tokyo, config=config, seed=0, distance=tokyo_distance)
    result = benchmark.pedantic(router.run, args=(circuit,), rounds=2, iterations=1)
    benchmark.extra_info.update({"E": size, "swaps": result.num_swaps})


@pytest.mark.parametrize("weight", [0.0, 0.5, 0.99])
def test_extended_set_weight_sweep(benchmark, tokyo, tokyo_distance, weight):
    """W sweep: 0 disables look-ahead influence, ~1 over-weights it."""
    circuit = build_benchmark(WORKLOAD)
    config = HeuristicConfig(mode="decay", extended_set_weight=weight)
    router = SabreRouter(tokyo, config=config, seed=0, distance=tokyo_distance)
    result = benchmark.pedantic(router.run, args=(circuit,), rounds=2, iterations=1)
    benchmark.extra_info.update({"W": weight, "swaps": result.num_swaps})


@pytest.mark.parametrize(
    "mapper_name", ["sabre", "greedy", "trivial"]
)
def test_mapper_ladder(benchmark, tokyo, tokyo_distance, mapper_name):
    """Quality ladder: trivial < greedy < SABRE on a dense workload."""
    circuit = qft(12)
    if mapper_name == "sabre":
        run = lambda: compile_circuit(
            circuit, tokyo, seed=0, num_trials=3, distance=tokyo_distance
        )
    elif mapper_name == "greedy":
        run = lambda: GreedyMapper(tokyo).run(circuit)
    else:
        run = lambda: TrivialRouter(tokyo).run(circuit)
    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info.update(
        {"mapper": mapper_name, "swaps": result.num_swaps}
    )


def test_noise_aware_overhead(benchmark, tokyo):
    """Noise-aware routing pays a small routing-quality tax to avoid a
    bad coupler; measure both sides."""
    from repro.extensions import NoiseAwareRouter
    from repro.hardware import NoiseModel

    circuit = build_benchmark(WORKLOAD)
    noise = NoiseModel(edge_errors={(6, 11): 0.3})
    router = NoiseAwareRouter(tokyo, noise)
    result = benchmark.pedantic(
        router.run, args=(circuit,), kwargs={"num_trials": 3}, rounds=1,
        iterations=1,
    )
    bad_uses = sum(
        1
        for g in result.physical_circuit()
        if g.is_two_qubit and set(g.qubits) == {6, 11}
    )
    benchmark.extra_info.update(
        {"swaps": result.num_swaps, "bad_coupler_cnots": bad_uses}
    )
