#!/usr/bin/env python
"""Chaos benchmark: seeded fault injection against the live service.

Three gates, each driving real code paths (no mocks):

**Determinism gate** — two fault plans built from the same seed must
produce byte-identical injection schedules over a fixed token stream,
and a different seed must diverge.  Replayability is what makes a
chaos failure debuggable: re-run with the seed from the report and the
same faults fire at the same points.

**Scrub gate** — a store tree with scripted damage (bit rot, a
tampered document, an orphaned artifact, a leftover tmp file) must be
fully diagnosed by ``ResultStore.scrub``, repaired into quarantine,
and verify clean afterwards.

**Chaos soak** — a baseline traffic phase measures clean p99, then a
chaos phase replays mixed hot/cold traffic against a ``repro serve``
subprocess running under ``REPRO_FAULT_PLAN`` (worker crashes, torn
store writes, slow dispatches, dropped connections) and is SIGKILLed
mid-stream.  Gates: every pre-kill request resolves terminally exactly
once with a known outcome; the store survives kill-and-restart (scrub
repairs any torn entries, then verifies clean); a restarted server
serves the old fingerprints from disk; chaos p99 stays within a
bounded multiple of baseline p99.

Run:  PYTHONPATH=src python benchmarks/bench_chaos.py [--smoke]
CI runs ``--smoke``; the default run uses a larger stream and writes
``BENCH_chaos.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench_circuits import build_benchmark, suite
from repro.qasm import emit_qasm
from repro.service.client import (
    ServiceClient,
    ServiceClientError,
    find_free_port,
)
from repro.service.faults import FAULT_PLAN_ENV, FaultPlan
from repro.service.store import ResultStore, StoredResult

#: Chaos p99 may not exceed ``P99_FACTOR * baseline_p99 + P99_SLACK``.
#: Generous on purpose: the gate catches pathological stalls (a lost
#: retry, an unbounded backoff), not ordinary retry overhead.
P99_FACTOR = 10.0
P99_SLACK_SECONDS = 5.0

#: The seeded fault plan the soak's chaos phase runs under.  Worker
#: crashes are the headline (exercising the crash-retry ladder and, at
#: p^3, the occasional poison quarantine); the rest spread damage
#: across the store, scheduler, and HTTP seams.
CHAOS_PLAN = {
    "seed": 20190413,
    "rules": [
        {"site": "worker.execute", "kind": "crash", "probability": 0.15},
        {"site": "worker.execute", "kind": "slow", "param": 0.05,
         "probability": 0.10},
        {"site": "scheduler.dispatch", "kind": "slow", "param": 0.02,
         "probability": 0.10},
        {"site": "store.write", "kind": "torn_artifact",
         "probability": 0.08},
        {"site": "http.connection", "kind": "drop", "probability": 0.05},
    ],
}

#: Failure kinds a chaos-phase job may legitimately end with.  Anything
#: else (or a job with no terminal state at all) fails the gate.
ACCEPTED_ERROR_KINDS = {"crash", "poison", "timeout", "shutdown"}


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(
        len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


# ----------------------------------------------------------------------
# Gate 1: deterministic replay
# ----------------------------------------------------------------------


def schedule(plan: FaultPlan, tokens: List[str]) -> List[str]:
    """The plan's full injection schedule over a fixed token stream,
    as comparable strings."""
    fired = []
    for site in ("worker.execute", "store.write", "scheduler.dispatch"):
        for token in tokens:
            rule = plan.decide(site, token=token)
            fired.append(
                f"{site}|{token}|{rule.kind if rule else '-'}"
            )
    return fired


def gate_determinism(report: dict) -> None:
    spec = dict(CHAOS_PLAN)
    tokens = [f"{key:064x}#a{attempt}"
              for key in range(50) for attempt in range(3)]
    one = schedule(FaultPlan.from_spec(spec), tokens)
    two = schedule(FaultPlan.from_spec(spec), tokens)
    check(one == two, "same seed produced different fault schedules")
    fired = [line for line in one if not line.endswith("|-")]
    check(fired != [], "chaos plan never fired over 150 tokens")
    other = schedule(
        FaultPlan.from_spec({**spec, "seed": spec["seed"] + 1}), tokens
    )
    check(one != other, "changing the seed changed nothing")
    report["determinism"] = {
        "tokens": len(tokens),
        "fired": len(fired),
        "seed": spec["seed"],
    }
    print(
        f"  determinism    {len(fired)}/{len(one)} decisions fired, "
        "replay byte-identical   ok"
    )


# ----------------------------------------------------------------------
# Gate 2: scrub vs a scripted corrupted tree
# ----------------------------------------------------------------------


def gate_scrub(report: dict) -> None:
    with tempfile.TemporaryDirectory(prefix="repro-chaos-scrub-") as root:
        store = ResultStore(root=root)
        keys = [f"{i:064x}" for i in range(6)]
        for key in keys:
            store.put(StoredResult(
                key=key,
                routed_qasm=f"OPENQASM 2.0;\n// entry {key[:8]}\n",
                metrics={"g_add": 1},
            ))
        # Scripted damage: flip a bit, falsify a metric, orphan an
        # artifact, drop a tmp file.
        rot = os.path.join(root, keys[1][:2], keys[1] + ".qasm")
        with open(rot, "r+") as handle:
            handle.seek(12)
            handle.write("X")
        doc_path = os.path.join(root, keys[2][:2], keys[2] + ".json")
        with open(doc_path) as handle:
            document = json.load(handle)
        document["metrics"]["g_add"] = 999
        with open(doc_path, "w") as handle:
            json.dump(document, handle)
        os.makedirs(os.path.join(root, "ff"), exist_ok=True)
        with open(os.path.join(root, "ff", "f" * 64 + ".qasm"), "w") as f:
            f.write("orphan")
        with open(os.path.join(root, keys[0][:2], "x.tmp"), "w") as f:
            f.write("partial")

        found = store.scrub(repair=False)
        check(found["scanned"] == 6, f"scanned {found['scanned']}/6")
        check(found["corrupt"] == 2,
              f"detected {found['corrupt']}/2 corrupt entries")
        check(found["orphaned_artifacts"] == 1, "missed the orphan")
        check(found["tmp_files"] == 1, "missed the tmp file")

        # Repair quarantines the 2 corrupt entries AND the orphan.
        repaired = store.scrub(repair=True)
        check(repaired["quarantined"] == 3,
              f"quarantined {repaired['quarantined']}/3")
        clean = store.scrub(repair=False)
        check(clean["corrupt"] == 0, "tree still corrupt after repair")
        check(clean["ok"] == 4, f"{clean['ok']}/4 healthy survivors")
    report["scrub"] = {
        "seeded": 6, "corrupt": found["corrupt"],
        "quarantined": repaired["quarantined"], "survivors": clean["ok"],
    }
    print(
        "  scrub          2/2 corrupt found, 3 quarantined (incl. "
        "orphan), 4 survivors verified   ok"
    )


# ----------------------------------------------------------------------
# Gate 3: chaos soak against a live server
# ----------------------------------------------------------------------


def launch_server(
    port: int, store_dir: str, fault_plan: Optional[dict]
) -> subprocess.Popen:
    env = dict(os.environ)
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    src = os.path.join(repo, "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    if fault_plan is not None:
        env[FAULT_PLAN_ENV] = json.dumps(fault_plan)
    else:
        env.pop(FAULT_PLAN_ENV, None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--store-dir", store_dir,
            "--workers", "2",
            "--execution", "process",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def build_corpus(smoke: bool) -> List[Tuple[str, str]]:
    corpus = []
    names = [s.name for s in suite("small")][: 2 if smoke else 4]
    for name in names:
        corpus.append((name, emit_qasm(build_benchmark(name))))
    return corpus


def build_stream(
    corpus: List[Tuple[str, str]],
    total: int,
    rng: random.Random,
    cold_base: int,
) -> List[Tuple[str, str, int]]:
    """(label, qasm, seed) stream: 50% hot repeats of seed 0 (store
    hits + coalescing under fire), 50% fresh fingerprints."""
    stream = []
    cold_seed = cold_base
    for _ in range(total):
        label, qasm = corpus[rng.randrange(len(corpus))]
        if rng.random() < 0.5:
            stream.append((label, qasm, 0))
        else:
            stream.append((label, qasm, cold_seed))
            cold_seed += 1
    return stream


class Outcome:
    """One request's terminal observation, for the exactly-once gate."""

    __slots__ = ("latency", "state", "error_kind", "transport_error")

    def __init__(self, latency, state, error_kind, transport_error):
        self.latency = latency
        self.state = state
        self.error_kind = error_kind
        self.transport_error = transport_error


def drive_stream(
    base_url: str,
    stream: List[Tuple[str, str, int]],
    num_clients: int,
    kill_after: Optional[int] = None,
    server: Optional[subprocess.Popen] = None,
) -> List[Outcome]:
    """Replay ``stream`` with ``num_clients`` threads; if
    ``kill_after`` is set, SIGKILL ``server`` once that many requests
    have resolved (the remaining requests then see transport errors,
    which the soak accounts separately)."""
    work: "queue.Queue" = queue.Queue()
    for item in stream:
        work.put(item)
    outcomes: List[Outcome] = []
    lock = threading.Lock()
    killed = threading.Event()

    def record(outcome: Outcome) -> None:
        with lock:
            outcomes.append(outcome)
            if (
                kill_after is not None
                and len(outcomes) >= kill_after
                and not killed.is_set()
            ):
                killed.set()
                os.kill(server.pid, signal.SIGKILL)

    def drive() -> None:
        client = ServiceClient(base_url, timeout=300)
        while True:
            try:
                _, qasm, seed = work.get_nowait()
            except queue.Empty:
                return
            started = time.perf_counter()
            try:
                reply = client.compile(qasm, seed=seed, trials=1)
            except ServiceClientError:
                record(Outcome(
                    time.perf_counter() - started, None, None, True
                ))
                continue
            record(Outcome(
                time.perf_counter() - started,
                reply.get("state"),
                reply.get("error_kind"),
                False,
            ))

    threads = [
        threading.Thread(target=drive, name=f"chaos-{i}")
        for i in range(num_clients)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return outcomes


def gate_soak(smoke: bool, report: dict) -> None:
    corpus = build_corpus(smoke)
    n_baseline = 10 if smoke else 30
    n_chaos = 16 if smoke else 60
    num_clients = 3 if smoke else 6
    rng = random.Random(7)
    store_root = tempfile.TemporaryDirectory(prefix="repro-chaos-store-")
    store_dir = store_root.name
    try:
        # Phase 0 — clean baseline for the p99 yardstick.
        port = find_free_port()
        server = launch_server(port, store_dir, fault_plan=None)
        try:
            base_url = f"http://127.0.0.1:{port}"
            ServiceClient(base_url).wait_until_healthy(timeout=30)
            baseline = drive_stream(
                base_url,
                build_stream(corpus, n_baseline, rng, cold_base=1000),
                num_clients,
            )
        finally:
            server.terminate()
            server.wait(timeout=10)
        check(
            all(o.state == "done" for o in baseline),
            "baseline phase had failures — fix the service, not chaos",
        )
        base_p99 = percentile(
            sorted(o.latency for o in baseline), 0.99
        )

        # Phase 1 — chaos traffic, SIGKILL mid-stream.
        port = find_free_port()
        server = launch_server(port, store_dir, fault_plan=CHAOS_PLAN)
        base_url = f"http://127.0.0.1:{port}"
        ServiceClient(base_url).wait_until_healthy(timeout=30)
        chaos_stream = build_stream(corpus, n_chaos, rng, cold_base=5000)
        outcomes = drive_stream(
            base_url,
            chaos_stream,
            num_clients,
            kill_after=int(n_chaos * 0.6),
            server=server,
        )
        server.wait(timeout=10)

        # Exactly-once accounting: every request resolved exactly one
        # way — done, a known failure kind, or a transport error from
        # the kill.  Nothing lost, nothing double-counted.
        check(
            len(outcomes) == len(chaos_stream),
            f"lost jobs: {len(outcomes)}/{len(chaos_stream)} resolved",
        )
        done = [o for o in outcomes if o.state == "done"]
        failed = [o for o in outcomes if o.state == "failed"]
        transport = [o for o in outcomes if o.transport_error]
        check(
            len(done) + len(failed) + len(transport) == len(outcomes),
            "request resolved with an unknown terminal state",
        )
        unknown = [
            o.error_kind for o in failed
            if o.error_kind not in ACCEPTED_ERROR_KINDS
        ]
        check(unknown == [], f"unexpected failure kinds: {unknown}")
        check(done != [], "chaos phase completed nothing")

        # p99 inflation gate, over requests that got real answers
        # before the kill.
        chaos_p99 = percentile(sorted(o.latency for o in done), 0.99)
        bound = P99_FACTOR * base_p99 + P99_SLACK_SECONDS
        check(
            chaos_p99 <= bound,
            f"chaos p99 {chaos_p99:.2f}s exceeds bound {bound:.2f}s "
            f"(baseline p99 {base_p99:.2f}s)",
        )

        # Store integrity after kill -9: recovery plus a repair scrub
        # must leave a verifiably clean tree (torn writes from the
        # kill and injected torn artifacts land in quarantine).
        store = ResultStore(root=store_dir)  # runs startup recovery
        repair = store.scrub(repair=True)
        verify = store.scrub(repair=False)
        check(
            verify["corrupt"] == 0,
            f"store still corrupt after kill + repair: {verify}",
        )

        # Phase 2 — restart clean over the same store: hot
        # fingerprints must come back from disk.
        port = find_free_port()
        server = launch_server(port, store_dir, fault_plan=None)
        try:
            base_url = f"http://127.0.0.1:{port}"
            client = ServiceClient(base_url)
            client.wait_until_healthy(timeout=30)
            label, qasm = corpus[0]
            reply = client.compile(qasm, seed=0, trials=1)
            check(
                reply["state"] == "done",
                "restarted server failed the hot request",
            )
            health = client.healthz()
            check(
                health["status"] == "ok",
                f"restarted server unhealthy: {health}",
            )
        finally:
            server.terminate()
            server.wait(timeout=10)
    finally:
        store_root.cleanup()

    report["soak"] = {
        "baseline_requests": n_baseline,
        "chaos_requests": n_chaos,
        "clients": num_clients,
        "fault_seed": CHAOS_PLAN["seed"],
        "done": len(done),
        "failed": len(failed),
        "transport_errors_after_kill": len(transport),
        "failure_kinds": sorted({o.error_kind for o in failed}),
        "baseline_p99_s": round(base_p99, 3),
        "chaos_p99_s": round(chaos_p99, 3),
        "p99_bound_s": round(bound, 3),
        "scrub_after_kill": {
            "quarantined": repair["quarantined"],
            "survivors": verify["ok"],
        },
    }
    print(
        f"  soak           {len(done)} done / {len(failed)} failed "
        f"({', '.join(sorted({str(o.error_kind) for o in failed})) or 'none'})"
        f" / {len(transport)} post-kill transport   "
        f"p99 {chaos_p99:.2f}s <= {bound:.2f}s   "
        f"store clean after kill ({verify['ok']} entries)   ok"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small stream (seconds-long CI step)",
    )
    parser.add_argument("--output", help="write the JSON report here")
    args = parser.parse_args(argv)

    print("chaos gates (seeded fault injection, real serve subprocess):")
    report: dict = {"plan": CHAOS_PLAN}
    gate_determinism(report)
    gate_scrub(report)
    gate_soak(args.smoke, report)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=1)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
