"""Component micro-benchmarks: the substrates under the mapper.

Times the individual pieces whose costs the paper analyses: the O(N^3)
Floyd-Warshall preprocessing, O(g) DAG construction, the O(N) heuristic
evaluation, plus parser/simulator substrates.  Run::

    pytest benchmarks/bench_components.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.bench_circuits import build_benchmark, qft
from repro.circuits import CircuitDag, QuantumCircuit, circuit_depth
from repro.circuits.dag import DagFrontier
from repro.core import Layout
from repro.hardware import floyd_warshall, bfs_distance_matrix, grid_device
from repro.qasm import emit_qasm, parse_qasm
from repro.verify import simulate


def test_floyd_warshall_tokyo(benchmark, tokyo):
    """The paper's O(N^3) preprocessing on the 20-qubit device."""
    dist = benchmark(floyd_warshall, tokyo)
    assert dist[0][19] > 0


def test_floyd_warshall_100q(benchmark):
    """NISQ-scale (hundreds of qubits) preprocessing stays tractable."""
    device = grid_device(10, 10)
    dist = benchmark(floyd_warshall, device)
    assert dist[0][99] == 18


def test_bfs_apsp_100q(benchmark):
    device = grid_device(10, 10)
    dist = benchmark(bfs_distance_matrix, device)
    assert dist[0][99] == 18


def test_dag_construction_large(benchmark):
    """O(g) DAG build on the largest benchmark family member."""
    circuit = build_benchmark("sym9_193")  # 34881 gates
    dag = benchmark(CircuitDag, circuit)
    assert len(dag) == 34881


def test_front_layer_consumption(benchmark):
    """Full frontier walk over a mid-size circuit."""
    circuit = build_benchmark("rd84_142")
    dag = CircuitDag(circuit)

    def consume():
        frontier = DagFrontier(dag)
        frontier.drain_nonrouting()
        while not frontier.done:
            frontier.execute_front_gate(min(frontier.front))
            frontier.drain_nonrouting()
        return frontier.num_executed

    executed = benchmark(consume)
    assert executed == circuit.num_gates


def test_extended_set_extraction(benchmark):
    circuit = qft(16)
    dag = CircuitDag(circuit)
    frontier = DagFrontier(dag)
    frontier.drain_nonrouting()
    extended = benchmark(frontier.extended_set, 20)
    assert len(extended) == 20


def test_layout_swap_throughput(benchmark):
    layout = Layout.random(20, seed=0)

    def swaps():
        for _ in range(1000):
            layout.swap_logical(3, 11)
        return layout

    benchmark(swaps)


def test_depth_computation_large(benchmark):
    circuit = build_benchmark("rd84_253")  # 13658 gates
    depth = benchmark(circuit_depth, circuit)
    assert depth > 0


def test_qasm_roundtrip_large(benchmark):
    circuit = qft(16)
    text = emit_qasm(circuit)

    def roundtrip():
        return parse_qasm(text)

    parsed = benchmark(roundtrip)
    assert parsed.num_gates == circuit.num_gates


def test_statevector_qft10(benchmark):
    circuit = qft(10)
    state = benchmark(simulate, circuit)
    assert abs(state.norm() - 1.0) < 1e-9
