#!/usr/bin/env python
"""Telemetry overhead gate: instrumentation must be free when off.

The telemetry layer (:mod:`repro.telemetry`) promises two things this
benchmark holds it to:

1. **Disabled mode is within noise.**  Every instrumentation site costs
   one thread-local read when no tracer is active.  Part one
   microbenchmarks the disabled primitives (``span()``,
   ``active_router_profiler()``) and multiplies the per-call cost by
   the span-site count of a real compile — the product must be far
   below the compile's own run-to-run noise.  Part two measures the
   end-to-end compile with telemetry disabled twice, interleaved, and
   reports the spread as the noise floor the per-site budget is
   compared against.

2. **Traced mode costs < 5%.**  With a live tracer (every pipeline
   pass opens a span), median compile latency may exceed the
   disabled-mode median by at most ``MAX_TRACED_OVERHEAD`` (5%), with
   an absolute floor so micro-second jitter on small circuits cannot
   fail the gate spuriously.  Router *profiling* (``"profile": true``)
   additionally times every scoring-kernel call, which inherently
   costs two clock reads per SWAP decision — it is opt-in per request,
   so its overhead is reported (and loosely bounded) rather than held
   to the 5% always-on budget.

Run:  PYTHONPATH=src python benchmarks/bench_telemetry.py [--smoke]
CI runs ``--smoke`` (fewer repeats, smaller circuit); the default
writes ``BENCH_telemetry.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import statistics
import subprocess
import sys
import tempfile
import time
import urllib.request
from typing import Dict, List, Optional, Sequence

from repro.circuits.random_circuits import random_circuit
from repro.hardware.devices import get_device
from repro.pipeline.runner import Pipeline
from repro.service.client import ServiceClient, find_free_port
from repro.telemetry.profile import active_router_profiler, profiled_routing
from repro.telemetry.trace import Tracer, span, tracing

#: Traced-mode median latency may exceed disabled-mode median by at
#: most this fraction.
MAX_TRACED_OVERHEAD = 0.05

#: Loose bound on the opt-in router-profiling mode (per-request knob,
#: not an always-on surface): catches a pathological regression, not
#: the inherent two-clock-reads-per-SWAP cost.
MAX_PROFILED_OVERHEAD = 0.50

#: Absolute slack for the traced gate: overhead below this many
#: milliseconds passes regardless of the ratio (protects small/smoke
#: circuits, where 5% is single-digit microseconds of pure jitter).
TRACED_SLACK_SECONDS = 0.010

#: A disabled ``span()`` call must cost less than this (it is one
#: thread-local read returning a shared no-op handle; measured cost is
#: ~100 ns even on slow CI hosts).
MAX_DISABLED_SPAN_SECONDS = 5e-6

#: Span sites opened per compile (request + pipeline + one per pass +
#: headroom); used to project total disabled-site cost per compile.
SPAN_SITES_PER_COMPILE = 32


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        raise SystemExit(1)


def time_per_call(fn, calls: int) -> float:
    started = time.perf_counter()
    for _ in range(calls):
        fn()
    return (time.perf_counter() - started) / calls


def bench_disabled_primitives(smoke: bool) -> Dict[str, float]:
    calls = 20_000 if smoke else 200_000
    # Outside any tracing() activation both primitives take their
    # short-circuit path.
    span_cost = time_per_call(lambda: span("bench"), calls)
    profiler_cost = time_per_call(active_router_profiler, calls)
    with tracing(None):
        span_cost_scoped = time_per_call(lambda: span("bench"), calls)
    return {
        "calls": calls,
        "span_ns": round(span_cost * 1e9, 1),
        "span_ns_null_activation": round(span_cost_scoped * 1e9, 1),
        "profiler_check_ns": round(profiler_cost * 1e9, 1),
        "max_span_ns": MAX_DISABLED_SPAN_SECONDS * 1e9,
        "_span_cost": span_cost,
    }


def compile_times(run, repeats: int) -> List[float]:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        times.append(time.perf_counter() - started)
    return times


def bench_compile_overhead(smoke: bool) -> Dict[str, object]:
    qubits, gates = (12, 120) if smoke else (16, 400)
    repeats = 5 if smoke else 15
    circuit = random_circuit(qubits, gates, seed=7, two_qubit_fraction=0.7)
    device = get_device("ibm_q20_tokyo")
    pipeline = Pipeline("paper_default")

    def run():
        return pipeline.run(circuit, device, seed=0, num_trials=2,
                            num_traversals=1)

    def run_traced():
        tracer = Tracer()
        with tracing(tracer):
            with span("bench.compile"):
                run()
        return tracer

    def run_profiled():
        tracer = Tracer()
        with tracing(tracer):
            with profiled_routing():
                with span("bench.compile"):
                    run()
        return tracer

    run()  # warm caches (device, IR, preset singleton)
    # Interleave the two disabled-mode series so drift (turbo, thermal,
    # neighbours) lands on both equally: their gap is the noise floor.
    off_a: List[float] = []
    off_b: List[float] = []
    traced: List[float] = []
    profiled: List[float] = []
    for _ in range(repeats):
        off_a.extend(compile_times(run, 1))
        traced.extend(compile_times(run_traced, 1))
        profiled.extend(compile_times(run_profiled, 1))
        off_b.extend(compile_times(run, 1))
    baseline = statistics.median(off_a + off_b)
    noise = abs(statistics.median(off_a) - statistics.median(off_b))
    traced_median = statistics.median(traced)
    profiled_median = statistics.median(profiled)
    overhead = traced_median - baseline
    profiled_overhead = profiled_median - baseline
    return {
        "circuit": f"rand{qubits}x{gates}",
        "repeats_per_mode": len(off_a) + len(off_b),
        "disabled_median_ms": round(baseline * 1e3, 3),
        "disabled_noise_ms": round(noise * 1e3, 3),
        "traced_median_ms": round(traced_median * 1e3, 3),
        "traced_overhead_ms": round(overhead * 1e3, 3),
        "traced_overhead_pct": round(100.0 * overhead / baseline, 2)
        if baseline
        else 0.0,
        "profiled_median_ms": round(profiled_median * 1e3, 3),
        "profiled_overhead_ms": round(profiled_overhead * 1e3, 3),
        "profiled_overhead_pct": round(
            100.0 * profiled_overhead / baseline, 2
        )
        if baseline
        else 0.0,
        "_baseline": baseline,
        "_overhead": overhead,
        "_profiled_overhead": profiled_overhead,
    }


# ----------------------------------------------------------------------
# Part 3: live serve scrape (real `repro serve` subprocess)
# ----------------------------------------------------------------------

SCRAPE_QASM = """OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
cx q[0], q[4];
cx q[1], q[3];
ccx q[0], q[2], q[4];
measure q -> c;
"""

#: Exposition sample line: metric name, optional label set, value.
SAMPLE_LINE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [^ ]+$")

#: Series the scrape must contain after one compile.
CORE_SERIES = (
    "repro_http_requests_total",
    "repro_uptime_seconds",
    "repro_store_hits_total",
    "repro_scheduler_executions_total",
    "repro_scheduler_queue_depth",
    "repro_engine_cache_hits_total",
    'repro_queue_wait_seconds_bucket{le="+Inf"}',
    "repro_execute_seconds_sum",
    "repro_pass_executions_total",
)

#: Spans a traced+profiled compile must record end-to-end.
CORE_SPANS = (
    "http.request", "job.execute", "request.execute", "pipeline.run",
    "router.profile",
)


def bench_serve_scrape() -> Dict[str, object]:
    """Boot the real server, compile with tracing, scrape everything.

    Gates: ``GET /metrics`` parses as text exposition 0.0.4 and
    contains every core series; ``GET /trace/<job>`` has the full
    span timeline; ``--log-json`` emits one JSON object per stderr
    line.
    """
    port = find_free_port()
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = os.path.join(repo, "src") + (
        os.pathsep + existing if existing else ""
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-telem-") as root:
        log_path = os.path.join(root, "serve.log")
        with open(log_path, "wb") as log:
            process = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--port", str(port),
                    "--store-dir", os.path.join(root, "store"),
                    "--workers", "1",
                    "--execution", "thread",
                    "--log-json",
                ],
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=log,
            )
            try:
                client = ServiceClient(
                    f"http://127.0.0.1:{port}", timeout=60
                )
                client.wait_until_healthy(timeout=30)
                reply = client._request(
                    "POST", "/compile",
                    {"qasm": SCRAPE_QASM, "trials": 1, "wait": True,
                     "profile": True},
                )
                check(reply.get("state") == "done", "compile did not finish")
                check(bool(reply.get("trace_id")), "no trace_id on reply")

                trace = client._request("GET", f"/trace/{reply['id']}")
                names = {s["name"] for s in trace["spans"]}
                for required in CORE_SPANS:
                    check(required in names, f"trace missing span {required}")

                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=30
                ) as resp:
                    content_type = resp.headers.get("Content-Type", "")
                    text = resp.read().decode("utf-8")
                check(
                    "version=0.0.4" in content_type,
                    f"unexpected /metrics content type {content_type!r}",
                )
                samples = 0
                for line in text.splitlines():
                    if not line or line.startswith("#"):
                        continue
                    check(
                        SAMPLE_LINE.match(line) is not None,
                        f"unparseable exposition line {line!r}",
                    )
                    samples += 1
                for series in CORE_SERIES:
                    check(series in text, f"/metrics missing {series}")
            finally:
                process.terminate()
                process.wait(timeout=30)
        with open(log_path, "r") as handle:
            log_lines = [line for line in handle if line.strip()]
        check(bool(log_lines), "--log-json produced no stderr lines")
        for line in log_lines:
            try:
                record = json.loads(line)
            except ValueError:
                check(False, f"--log-json line is not JSON: {line!r}")
            check(
                "message" in record and "ts" in record,
                f"--log-json record missing message/ts: {line!r}",
            )
        return {
            "metric_samples": samples,
            "trace_spans": len(trace["spans"]),
            "log_json_lines": len(log_lines),
        }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="fewer repeats + smaller circuit (seconds-long CI step)",
    )
    parser.add_argument("--output", help="write the JSON report here")
    args = parser.parse_args(argv)

    print("disabled-mode primitives:")
    prims = bench_disabled_primitives(args.smoke)
    span_cost = prims.pop("_span_cost")
    print(
        f"  span() no-tracer      {prims['span_ns']:8.1f} ns/call"
        f"   (limit {prims['max_span_ns']:.0f} ns)"
    )
    print(
        f"  profiler check        {prims['profiler_check_ns']:8.1f} ns/call"
    )
    check(
        span_cost < MAX_DISABLED_SPAN_SECONDS,
        f"disabled span() costs {span_cost * 1e9:.0f} ns/call "
        f"(limit {MAX_DISABLED_SPAN_SECONDS * 1e9:.0f})",
    )

    print("end-to-end compile (pipeline.run, paper_default):")
    compile_report = bench_compile_overhead(args.smoke)
    baseline = compile_report.pop("_baseline")
    overhead = compile_report.pop("_overhead")
    profiled_overhead = compile_report.pop("_profiled_overhead")
    print(
        f"  disabled   median {compile_report['disabled_median_ms']:9.3f} ms"
        f"   (noise floor {compile_report['disabled_noise_ms']:.3f} ms)"
    )
    print(
        f"  traced     median {compile_report['traced_median_ms']:9.3f} ms"
        f"   ({compile_report['traced_overhead_ms']:+.3f} ms, "
        f"{compile_report['traced_overhead_pct']:+.2f}%)"
    )
    print(
        f"  profiled   median {compile_report['profiled_median_ms']:9.3f} ms"
        f"   ({compile_report['profiled_overhead_ms']:+.3f} ms, "
        f"{compile_report['profiled_overhead_pct']:+.2f}%, opt-in)"
    )
    # Disabled-mode gate: the projected all-sites cost per compile must
    # sit far below the compile's own run-to-run noise — "within noise"
    # by construction, independent of scheduler jitter on this host.
    site_budget = span_cost * SPAN_SITES_PER_COMPILE
    check(
        site_budget < max(0.10 * baseline, 1e-4),
        f"projected disabled-site cost {site_budget * 1e6:.1f} us/compile "
        f"is not negligible against a {baseline * 1e3:.2f} ms compile",
    )
    check(
        overhead < max(MAX_TRACED_OVERHEAD * baseline, TRACED_SLACK_SECONDS),
        f"traced overhead {overhead * 1e3:.3f} ms exceeds "
        f"{MAX_TRACED_OVERHEAD:.0%} of {baseline * 1e3:.2f} ms "
        f"(+{TRACED_SLACK_SECONDS * 1e3:.0f} ms slack)",
    )
    check(
        profiled_overhead
        < max(MAX_PROFILED_OVERHEAD * baseline, TRACED_SLACK_SECONDS),
        f"profiled overhead {profiled_overhead * 1e3:.3f} ms exceeds "
        f"{MAX_PROFILED_OVERHEAD:.0%} of {baseline * 1e3:.2f} ms — "
        "the opt-in profiler has regressed pathologically",
    )
    compile_report["site_budget_us"] = round(site_budget * 1e6, 2)
    print("telemetry overhead gates: ok")

    print("live scrape (real `repro serve --log-json` subprocess):")
    scrape_report = bench_serve_scrape()
    print(
        f"  /metrics {scrape_report['metric_samples']} samples parsed, "
        f"/trace {scrape_report['trace_spans']} spans, "
        f"{scrape_report['log_json_lines']} JSON log lines"
    )
    print("serve scrape gates: ok")

    report = {
        "primitives": prims,
        "compile": compile_report,
        "serve_scrape": scrape_report,
    }
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=1)
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
