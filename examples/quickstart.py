#!/usr/bin/env python
"""Quickstart: map a logical circuit onto the IBM Q20 Tokyo with SABRE.

Builds a small entangling circuit whose interactions don't fit the
device directly, compiles it with the paper's default configuration,
verifies the output, and exports hardware-ready OpenQASM.

Run:  python examples/quickstart.py
"""

from repro import QuantumCircuit, compile_circuit, ibm_q20_tokyo
from repro.analysis.metrics import fidelity_report, result_metrics
from repro.qasm import emit_qasm
from repro.verify import assert_compliant, assert_equivalent


def build_demo_circuit() -> QuantumCircuit:
    """An 8-qubit circuit with long-range CNOTs (needs routing)."""
    circ = QuantumCircuit(8, name="quickstart")
    # GHZ ladder...
    circ.h(0)
    for q in range(7):
        circ.cx(q, q + 1)
    # ...then long-range interactions that no line placement satisfies.
    for a, b in [(0, 7), (1, 6), (2, 5), (3, 7), (0, 4)]:
        circ.cx(a, b)
        circ.t(b)
    circ.barrier()
    for q in range(8):
        circ.measure(q)
    return circ


def main() -> None:
    device = ibm_q20_tokyo()
    circuit = build_demo_circuit()

    result = compile_circuit(circuit, device, seed=0)

    print("=== SABRE mapping result ===")
    print(result.summary())
    print()
    print("metrics:", result_metrics(result))
    print("fidelity:", {k: round(v, 4) for k, v in fidelity_report(result).items()})

    # Independent verification: coupling compliance + exact equivalence.
    physical = result.physical_circuit()
    assert_compliant(physical, device)
    assert_equivalent(
        result.original_circuit,
        result.routing.circuit,
        result.initial_layout,
        result.routing.swap_positions,
    )
    print("\nverified: hardware-compliant and equivalent to the input")

    qasm = emit_qasm(physical)
    print(f"\nfirst lines of the hardware-ready QASM ({len(qasm.splitlines())} lines):")
    for line in qasm.splitlines()[:8]:
        print(" ", line)

    # ------------------------------------------------------------------
    # Multi-trial engine: best-of-K seeded compilations.
    # ------------------------------------------------------------------
    # SABRE's quality is seed-dependent; running more independently
    # seeded trials and keeping the best is the production configuration
    # (CLI: `python -m repro map circuit.qasm --trials 8 --jobs 4`).
    # executor="process" fans the trials across worker processes; with
    # objective= the winner can optimise depth instead of g_add.
    best = compile_circuit(
        circuit, device, seed=0, num_trials=8, executor="serial"
    )
    print(
        f"\nbest-of-8 trials: g_add {result.added_gates} -> "
        f"{best.added_gates} (per-trial swaps: {best.trial_swaps})"
    )

    # Whole-suite batching: compile_many fans (circuit, seed) jobs
    # across processes and reports per-circuit winners with timing.
    from repro import compile_many

    batch = compile_many(
        [circuit, build_demo_circuit()], device, num_trials=4, jobs=2
    )
    print("\n".join(batch.summary_lines()))


if __name__ == "__main__":
    main()
