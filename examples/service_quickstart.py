#!/usr/bin/env python
"""Compilation-as-a-service quickstart: serve -> submit -> cached resubmit.

Starts the compilation service in-process (the same server `repro
serve` runs), submits a circuit over HTTP, then submits it again and
shows the second answer coming straight from the persistent result
store — no pipeline execution, two orders of magnitude faster.  Ends
with a batch whose duplicate entries coalesce onto one computation.

Run:  PYTHONPATH=src python examples/service_quickstart.py

The equivalent over two shells:

    $ python -m repro serve --port 8711 --store-dir .repro-store
    $ python -m repro submit circuit.qasm --url http://127.0.0.1:8711
    $ python -m repro submit circuit.qasm --url http://127.0.0.1:8711
    # second submit prints "[store]" instead of "[compiled]"
"""

import tempfile
import time

from repro import QuantumCircuit
from repro.qasm import emit_qasm
from repro.service import (
    ResultStore,
    ServiceClient,
    build_server,
    serve_url,
    shutdown_service,
    start_in_thread,
)


def build_demo_qasm() -> str:
    """A 12-qubit workload with long-range CNOTs (needs real routing)."""
    circ = QuantumCircuit(12, name="service_quickstart")
    circ.h(0)
    for q in range(11):
        circ.cx(q, q + 1)
    for a, b in [(0, 11), (1, 9), (2, 7), (3, 10), (5, 11), (0, 6)]:
        circ.cx(a, b)
        circ.t(b)
    for q in range(12):
        circ.measure(q)
    return emit_qasm(circ)


def main() -> None:
    store_dir = tempfile.mkdtemp(prefix="repro-quickstart-store-")
    server = build_server(
        port=0,  # free ephemeral port
        store=ResultStore(root=store_dir),
        workers=2,
    )
    start_in_thread(server)
    client = ServiceClient(serve_url(server))
    print(f"service up at {serve_url(server)} (store: {store_dir})")
    print(f"devices: {[d['name'] for d in client.devices()]}")

    qasm = build_demo_qasm()

    # --- cold: the pipeline actually runs -----------------------------
    started = time.perf_counter()
    cold = client.compile(qasm, device="ibm_q20_tokyo", trials=5)
    cold_ms = (time.perf_counter() - started) * 1e3
    metrics = cold["result"]["metrics"]
    print(
        f"\ncold submit : {cold_ms:8.2f} ms  "
        f"(compiled; g_ori={metrics['g_ori']} g_add={metrics['g_add']} "
        f"d_out={metrics['d_out']})"
    )

    # --- warm: identical request, answered from the store -------------
    started = time.perf_counter()
    warm = client.compile(qasm, device="ibm_q20_tokyo", trials=5)
    warm_ms = (time.perf_counter() - started) * 1e3
    assert warm["cached"], "second identical submit must be a store hit"
    assert warm["result"]["routed_qasm"] == cold["result"]["routed_qasm"]
    print(
        f"warm submit : {warm_ms:8.2f} ms  "
        f"(store hit, {cold_ms / max(warm_ms, 1e-6):.0f}x faster, "
        "byte-identical artifact)"
    )

    # --- batch: duplicates coalesce onto one computation ---------------
    reply = client.batch(
        [
            {"qasm": qasm, "seed": 1, "trials": 2},
            {"qasm": qasm, "seed": 1, "trials": 2},  # duplicate
            {"qasm": qasm, "seed": 2, "trials": 2},
        ]
    )
    ids = [r["id"] for r in reply["results"]]
    print(f"\nbatch jobs  : {ids} (first two coalesced: {ids[0] == ids[1]})")

    stats = client.stats()
    print(
        f"store       : {stats['store']['hits']} hits / "
        f"{stats['store']['misses']} misses, "
        f"{stats['store']['disk_entries']} persisted"
    )
    print(
        f"scheduler   : {stats['scheduler']['executions']} executions for "
        f"{stats['scheduler']['submitted']} submissions "
        f"({stats['scheduler']['coalesced']} coalesced, "
        f"{stats['scheduler']['store_answered']} store-answered)"
    )
    print(f"engine cache: {stats['engine_cache']}")
    shutdown_service(server)


if __name__ == "__main__":
    main()
