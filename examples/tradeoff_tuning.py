#!/usr/bin/env python
"""Tune the decay parameter for a target device (paper Fig. 8 / §V-C).

Sweeps the decay delta on a QFT workload, prints the gate/depth
trade-off curve, and then picks the delta that maximises the *estimated
success probability* under the Q20 Tokyo noise model — showing how "we
can change the delta according to the qubit coherence time and gate
fidelity data" (§V-C) becomes an automated decision.

Run:  python examples/tradeoff_tuning.py
"""

from repro import HeuristicConfig, compile_circuit, ibm_q20_tokyo
from repro.analysis.tradeoff import DEFAULT_DELTAS, decay_sweep
from repro.bench_circuits import qft
from repro.hardware.noise import IBM_Q20_TOKYO_NOISE


def main() -> None:
    device = ibm_q20_tokyo()
    circuit = qft(10)
    print(f"workload: {circuit.name} "
          f"({circuit.num_gates} gates, {circuit.num_qubits} qubits)\n")

    points = decay_sweep(circuit, device, deltas=DEFAULT_DELTAS, seed=0)
    print("delta     gates   depth   gates/g_ori   depth/d_ori")
    for p in points:
        print(
            f"{p.delta:<8g}  {p.total_gates:5d}   {p.depth:5d}"
            f"   {p.gates_norm:11.3f}   {p.depth_norm:11.3f}"
        )

    # Pick the delta with the best estimated success probability.
    noise = IBM_Q20_TOKYO_NOISE
    best_delta, best_prob = None, -1.0
    for p in points:
        config = HeuristicConfig(mode="decay", decay_delta=p.delta)
        result = compile_circuit(circuit, device, config=config, seed=0,
                                 num_trials=3)
        prob = noise.estimated_success_probability(result.physical_circuit())
        if prob > best_prob:
            best_delta, best_prob = p.delta, prob
    print(
        f"\nbest delta for the Q20 Tokyo noise profile: {best_delta} "
        f"(estimated success probability {best_prob:.3e})"
    )


if __name__ == "__main__":
    main()
