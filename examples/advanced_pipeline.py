#!/usr/bin/env python
"""Advanced pipeline: compose passes instead of hand-rolling glue.

Demonstrates the declarative :class:`repro.pipeline.Pipeline` surface:

1. the ``best_effort`` preset — *prove* a zero-SWAP mapping exists
   (subgraph embedding, paper §V-A1's "perfect match" made exact) and
   short-circuit the layout search when it does;
2. a three-extension composition — noise-aware distances + bridge
   peephole + CNOT-direction legalisation — on a directed device,
   with compliance verified inside the pipeline;
3. a custom pass list: the paper's flow with a user-defined analysis
   pass that records the routed circuit's estimated success
   probability into the PropertySet;
4. per-pass timing breakdowns from each run's PropertySet.

Run:  python examples/advanced_pipeline.py
"""

from repro import AnalysisPass, Pipeline, compose_pipeline, ibm_q20_tokyo
from repro.bench_circuits import build_benchmark, qft
from repro.circuits import circuit_depth
from repro.hardware.devices import ibm_qx5
from repro.hardware.noise import IBM_Q20_TOKYO_NOISE, NoiseModel
from repro.pipeline import (
    CollectMetrics,
    ComplianceCheck,
    DecomposeToBasis,
    ResolveDistance,
    SabreLayoutPass,
    SabreRoutePass,
)


class EstimateFidelity(AnalysisPass):
    """Custom pass: record the routed output's estimated success
    probability (paper Fig. 2's error model) in the PropertySet."""

    def __init__(self, noise: NoiseModel) -> None:
        self.noise = noise

    def run(self, context) -> None:
        routed = context.output_circuit()
        context.properties["fidelity.estimated_success"] = (
            self.noise.estimated_success_probability(routed)
        )


def report(label: str, result) -> None:
    routed = result.physical_circuit()
    success = result.properties.get(
        "fidelity.estimated_success",
        IBM_Q20_TOKYO_NOISE.estimated_success_probability(routed),
    )
    print(
        f"  {label:28s} {routed.count_gates():5d} gates  "
        f"depth {circuit_depth(routed):4d}  swaps {result.num_swaps:3d}  "
        f"est. success {success:.3e}"
    )


def main() -> None:
    tokyo = ibm_q20_tokyo()

    print("=== best_effort preset: embedding shortcut when provable ===")
    for circuit in (build_benchmark("alu-v0_27"), qft(10)):
        result = Pipeline("best_effort").run(circuit, tokyo, seed=0)
        embedded = result.properties["embedding.perfect"]
        print(f"{circuit.name}: perfect embedding exists: {embedded}")
        report(circuit.name, result)

    print("\n=== three extensions composed on a directed device ===")
    composed = compose_pipeline(
        "paper_default", noise_aware=True, bridge=True, legalize_directions=True
    )
    noise = NoiseModel(edge_errors={(0, 1): 0.12, (6, 7): 0.09})
    result = composed.run(
        build_benchmark("ising_model_10"), ibm_qx5(), seed=0, noise=noise
    )
    print(f"pipeline: {composed.name}")
    report("ising_model_10 on qx5", result)
    print(
        f"  bridges: {result.properties['bridge.bridged_cx']}, "
        f"reversed CNOTs fixed: {result.properties['directed.reversed_cx']}, "
        f"direction-checked: "
        f"{result.properties['compliance.checked_direction']}"
    )

    print("\n=== custom pass list with a user-defined analysis pass ===")
    custom = Pipeline(
        [
            DecomposeToBasis(),
            ResolveDistance(),
            SabreLayoutPass(),
            SabreRoutePass(),
            ComplianceCheck(),
            EstimateFidelity(IBM_Q20_TOKYO_NOISE),
            CollectMetrics(),
        ],
        name="paper_default+fidelity",
    )
    result = custom.run(build_benchmark("ising_model_10"), tokyo, seed=0)
    report("ising_model_10 on tokyo", result)

    print("\nper-pass timing of the custom run:")
    print(result.properties.timing_report())


if __name__ == "__main__":
    main()
