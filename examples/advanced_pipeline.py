#!/usr/bin/env python
"""Advanced pipeline: embedding-seeded mapping plus peephole cleanup.

Chains the extension passes around the core mapper:

1. try to *prove* a zero-SWAP initial mapping exists (subgraph
   embedding, paper §V-A1's "perfect match" made exact);
2. route with SABRE (seeded by the embedding when found);
3. peephole-optimize the routed circuit (SWAP decompositions often
   cancel against neighbouring CNOTs);
4. report gates/depth/fidelity at each stage.

Run:  python examples/advanced_pipeline.py
"""

from repro import compile_circuit, ibm_q20_tokyo
from repro.bench_circuits import build_benchmark, qft
from repro.circuits import circuit_depth, optimize_circuit
from repro.circuits.transforms import optimization_summary
from repro.extensions import compile_with_embedding, has_perfect_layout
from repro.hardware.noise import IBM_Q20_TOKYO_NOISE


def stage_report(label: str, circuit) -> None:
    probability = IBM_Q20_TOKYO_NOISE.estimated_success_probability(circuit)
    print(
        f"  {label:22s} {circuit.count_gates():5d} gates  "
        f"depth {circuit_depth(circuit):4d}  est. success {probability:.3e}"
    )


def run_pipeline(circuit, device) -> None:
    print(f"=== {circuit.name} ({circuit.num_qubits} qubits) ===")
    embeddable = has_perfect_layout(circuit, device)
    print(f"  perfect embedding exists: {embeddable}")

    plain = compile_circuit(circuit, device, seed=0)
    seeded = compile_with_embedding(circuit, device, seed=0)
    best = seeded if seeded.added_gates <= plain.added_gates else plain
    print(
        f"  SABRE swaps: {plain.num_swaps}, embedding-seeded swaps: "
        f"{seeded.num_swaps}"
    )

    routed = best.physical_circuit()
    optimized = optimize_circuit(routed)
    stage_report("original", circuit)
    stage_report("routed", routed)
    stage_report("routed+optimized", optimized)
    summary = optimization_summary(routed, optimized)
    print(f"  peephole removed {summary['gates_removed']} gates\n")


def main() -> None:
    device = ibm_q20_tokyo()
    run_pipeline(build_benchmark("alu-v0_27"), device)   # embeds perfectly
    run_pipeline(build_benchmark("ising_model_10"), device)
    run_pipeline(qft(10), device)                        # cannot embed


if __name__ == "__main__":
    main()
