#!/usr/bin/env python
"""End-to-end OpenQASM pipeline: parse -> map -> verify -> emit.

Demonstrates the toolchain a downstream user runs on their own
benchmark files: read an OpenQASM 2.0 program (with a user-defined gate
macro), compile it for the Q20 Tokyo, verify the result, and write
hardware-ready QASM back out.

Run:  python examples/qasm_pipeline.py
"""

import os
import tempfile

from repro import compile_circuit, ibm_q20_tokyo
from repro.qasm import emit_qasm, parse_qasm, write_qasm_file
from repro.verify import assert_compliant, assert_equivalent

SOURCE = """
OPENQASM 2.0;
include "qelib1.inc";
qreg q[6];
creg c[6];
gate majority a,b,c
{
  cx c,b;
  cx c,a;
  ccx a,b,c;
}
h q[0];
majority q[0],q[2],q[4];
majority q[1],q[3],q[5];
cx q[0],q[5];
cx q[4],q[1];
u3(pi/2,0,pi) q[2];
barrier q;
measure q -> c;
"""


def main() -> None:
    circuit = parse_qasm(SOURCE, name="majority_demo")
    print(
        f"parsed {circuit.name!r}: {circuit.num_qubits} qubits, "
        f"{circuit.num_gates} ops, counts={circuit.gate_counts()}"
    )

    device = ibm_q20_tokyo()
    result = compile_circuit(circuit, device, seed=0)
    print(f"\nmapped with {result.num_swaps} SWAPs "
          f"(+{result.added_gates} gates); depth "
          f"{result.original_depth} -> {result.routed_depth}")

    physical = result.physical_circuit()
    assert_compliant(physical, device)
    assert_equivalent(
        result.original_circuit,
        result.routing.circuit,
        result.initial_layout,
        result.routing.swap_positions,
    )
    print("verified: compliant and equivalent")

    out_path = os.path.join(tempfile.gettempdir(), "majority_demo_routed.qasm")
    write_qasm_file(physical, out_path)
    print(f"\nwrote hardware-ready QASM to {out_path}")
    reparsed = parse_qasm(emit_qasm(physical))
    print(f"round-trip check: re-parsed {reparsed.num_gates} ops "
          f"({'OK' if reparsed == physical else 'MISMATCH'})")


if __name__ == "__main__":
    main()
