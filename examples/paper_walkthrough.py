#!/usr/bin/env python
"""Walk through the paper's worked examples (Figures 1, 3, 4, and 6).

Each section rebuilds a figure from the paper with library primitives
and checks the claim it illustrates:

- Fig. 1: the Toffoli gate lowers to 15 {1q, CNOT} gates;
- Fig. 3: the 4-qubit circuit on the square device needs exactly one
  SWAP, growing gates 6 -> 9 and depth 5 -> 8;
- Fig. 4: DAG construction and front-layer initialisation;
- Fig. 6: the SWAP-candidate restriction to front-layer qubits.

Run:  python examples/paper_walkthrough.py
"""

from repro import QuantumCircuit, Layout, SabreRouter, ring_device, grid_device
from repro.circuits import (
    CircuitDag,
    FlatDag,
    FrontierState,
    circuit_depth,
    toffoli_decomposition,
)
from repro.circuits.dag import DagFrontier
from repro.verify import Statevector, simulate


def figure1_toffoli() -> None:
    print("=== Figure 1: Toffoli decomposition ===")
    decomposed = QuantumCircuit(3, name="toffoli_decomposed")
    decomposed.extend(toffoli_decomposition(0, 1, 2))
    counts = decomposed.gate_counts()
    print(f"gates: {decomposed.num_gates} total, {counts.get('cx', 0)} CNOTs")
    reference = QuantumCircuit(3)
    reference.ccx(0, 1, 2)
    probe = Statevector.random(3, seed=1)
    fidelity = (
        probe.copy()
        .apply_circuit(reference)
        .fidelity(probe.copy().apply_circuit(decomposed))
    )
    print(f"matches the CCX unitary: fidelity = {fidelity:.6f}\n")


def figure3_four_qubit_example() -> None:
    print("=== Figure 3: 4-qubit worked example ===")
    # Device: the square Q1-Q2-Q4-Q3 (edges 12, 24, 43, 31) = ring of 4.
    device = ring_device(4)
    # Paper circuit (0-indexed): CNOTs on (q1,q2),(q3,q4),(q2,q4),
    # (q2,q3),(q3,q4),(q1,q4).
    circ = QuantumCircuit(4, name="fig3")
    for a, b in [(0, 1), (2, 3), (1, 3), (1, 2), (2, 3), (0, 3)]:
        circ.cx(a, b)
    print(f"original: {circ.num_gates} gates, depth {circuit_depth(circ)}")
    # The paper's initial mapping is qi -> Qi.  Ring device wiring:
    # ring edges are (0,1),(1,2),(2,3),(3,0); the paper's square has
    # edges {Q1Q2, Q2Q4, Q4Q3, Q3Q1} -> physical order [0,1,3,2].
    initial = Layout([0, 1, 3, 2])
    router = SabreRouter(device, seed=0)
    result = router.run(circ, initial_layout=initial)
    physical = result.physical_circuit()
    print(
        f"routed:   {physical.count_gates()} gates "
        f"(+{result.added_gates} from {result.num_swaps} SWAP), "
        f"depth {circuit_depth(physical)}"
    )
    print("paper:    9 gates (+3 from 1 SWAP), depth 8\n")


def figure4_dag_front_layer() -> None:
    print("=== Figure 4: DAG generation and front layer ===")
    # Six-qubit example with the paper's dependency shape.
    circ = QuantumCircuit(6, name="fig4")
    circ.cx(1, 2)   # g1
    circ.cx(2, 5)   # g2  (shares q3/q6 region in the paper's labels)
    circ.cx(0, 1)   # g3  depends on g1
    circ.cx(3, 4)   # g4
    circ.h(3)
    circ.cx(1, 3)   # depends on g3, g4
    dag = CircuitDag(circ)
    front = dag.initial_front_layer()
    print("front layer gate indices:", front)
    print("front layer gates:", [str(circ[i]) for i in front])
    frontier = DagFrontier(dag)
    frontier.drain_nonrouting()
    print("extended set (|E|=3):", [str(g) for g in frontier.extended_set(3)])
    print()


def figure6_swap_candidates() -> None:
    print("=== Figure 6: SWAP candidates restricted to the front layer ===")
    device = grid_device(3, 3)
    circ = QuantumCircuit(9, name="fig6")
    circ.cx(0, 6)   # front layer (distant on the grid)
    circ.cx(2, 7)   # front layer
    circ.cx(1, 6)   # behind the front layer
    router = SabreRouter(device, seed=0)
    frontier = FrontierState(FlatDag.from_circuit(circ))
    frontier.drain_nonrouting()
    layout = Layout.trivial(9)
    candidates = router._swap_candidates(frontier, layout)
    print(f"device has {device.num_edges} edges; "
          f"only {len(candidates)} are SWAP candidates:")
    print(" ", candidates)
    result = router.run(circ, initial_layout=layout)
    print(f"routing used {result.num_swaps} SWAPs\n")


if __name__ == "__main__":
    figure1_toffoli()
    figure3_four_qubit_example()
    figure4_dag_front_layer()
    figure6_swap_candidates()
