#!/usr/bin/env python
"""Compare routing overhead across device topologies (paper §III-B
"Flexibility": SABRE works on arbitrary symmetric coupling graphs).

Routes the same 10-qubit QFT onto six different devices and reports the
SWAP overhead each topology forces, plus a noise-aware run on a device
with one very bad coupler.

Run:  python examples/device_comparison.py
"""

from repro import compile_circuit
from repro.analysis.formatting import format_table
from repro.bench_circuits import qft
from repro.extensions import NoiseAwareRouter
from repro.hardware import (
    NoiseModel,
    complete_device,
    grid_device,
    heavy_hex_device,
    ibm_q20_tokyo,
    line_device,
    ring_device,
)


def main() -> None:
    circuit = qft(10)
    devices = [
        ibm_q20_tokyo(),
        grid_device(4, 5),
        line_device(20),
        ring_device(20),
        heavy_hex_device(3),
        complete_device(20),
    ]
    rows = []
    for device in devices:
        result = compile_circuit(circuit, device, seed=0, num_trials=3)
        rows.append(
            [
                device.name,
                device.num_edges,
                device.diameter(),
                result.num_swaps,
                result.added_gates,
                result.routed_depth,
                round(result.runtime_seconds, 3),
            ]
        )
    print(
        format_table(
            ["device", "edges", "diam", "swaps", "g_add", "depth", "t(s)"],
            rows,
            title=f"Routing {circuit.name} across topologies",
        )
    )

    # Noise-aware routing: one terrible coupler on the Tokyo chip.
    print("\nnoise-aware vs hop-count routing with a bad coupler (6, 11):")
    tokyo = ibm_q20_tokyo()
    noise = NoiseModel(edge_errors={(6, 11): 0.25})
    plain = compile_circuit(circuit, tokyo, seed=0, num_trials=3)
    aware = NoiseAwareRouter(tokyo, noise).run(circuit, seed=0, num_trials=3)

    def bad_edge_uses(result) -> int:
        return sum(
            1
            for gate in result.physical_circuit()
            if gate.is_two_qubit and set(gate.qubits) == {6, 11}
        )

    for label, result in [("hop-count", plain), ("noise-aware", aware)]:
        print(
            f"  {label:12s} swaps={result.num_swaps:3d} "
            f"gates on bad coupler={bad_edge_uses(result)}"
        )


if __name__ == "__main__":
    main()
