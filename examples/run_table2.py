#!/usr/bin/env python
"""Regenerate the paper's Table II (thin wrapper over the harness).

Examples:
    python examples/run_table2.py                      # small+sim+qft
    python examples/run_table2.py --full               # all 26 rows
    python examples/run_table2.py --category large --trials 3
    python examples/run_table2.py --names qft_13 rd84_142
"""

import sys

from repro.analysis.table2 import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
