"""§V-B2 scalability experiment: BKA blows up, SABRE stays flat.

The paper's scalability argument: BKA's per-layer search space is
``O(exp(N))``, so its runtime and memory grow violently with qubit
count on the qft/ising families, hitting the 378 GB server limit at
qft_20 and ising_model_16, while SABRE's SWAP-based search stays
sub-second throughout.  This harness sweeps circuit size within a
family and reports, per size: SABRE runtime, BKA runtime, BKA expanded
nodes, and whether BKA exhausted its budget.  Run as::

    python -m repro.analysis.scaling --family qft --sizes 4 6 8 10 12
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.analysis.formatting import format_table
from repro.baselines.astar import AStarMapper
from repro.bench_circuits.ising import ising_model
from repro.bench_circuits.qft import qft
from repro.core.compiler import compile_circuit
from repro.exceptions import ReproError, SearchExhausted
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import ibm_q20_tokyo
from repro.hardware.distance import distance_matrix


@dataclass
class ScalingRow:
    """One size point of the scaling sweep."""

    family: str
    num_qubits: int
    num_gates: int
    sabre_seconds: float
    sabre_added: int
    bka_seconds: Optional[float]  # None = exhausted
    bka_added: Optional[int]
    bka_nodes: int
    bka_exhausted: bool

    def as_cells(self) -> List[object]:
        return [
            f"{self.family}_{self.num_qubits}",
            self.num_qubits,
            self.num_gates,
            round(self.sabre_seconds, 4),
            self.sabre_added,
            "OOM" if self.bka_exhausted else round(self.bka_seconds or 0.0, 4),
            "-" if self.bka_added is None else self.bka_added,
            self.bka_nodes,
        ]


HEADERS = [
    "bench",
    "n",
    "g",
    "sabre t(s)",
    "sabre g_add",
    "bka t(s)",
    "bka g_add",
    "bka nodes",
]


def _build(family: str, size: int):
    if family == "qft":
        return qft(size)
    if family == "ising":
        return ising_model(size)
    raise ReproError(f"unknown scaling family {family!r} (qft|ising)")


def run_scaling(
    family: str = "qft",
    sizes: Sequence[int] = (4, 6, 8, 10, 12, 14, 16),
    coupling: Optional[CouplingGraph] = None,
    seed: int = 0,
    sabre_trials: int = 3,
    bka_max_nodes: int = 200_000,
    bka_max_seconds: float = 60.0,
) -> List[ScalingRow]:
    """Sweep circuit sizes within a family, timing SABRE and BKA."""
    coupling = coupling or ibm_q20_tokyo()
    distance = distance_matrix(coupling)
    rows: List[ScalingRow] = []
    for size in sizes:
        circuit = _build(family, size)
        sabre = compile_circuit(
            circuit,
            coupling,
            seed=seed,
            num_trials=sabre_trials,
            distance=distance,
        )
        mapper = AStarMapper(
            coupling,
            max_nodes=bka_max_nodes,
            max_seconds=bka_max_seconds,
            distance=distance,
        )
        bka_seconds: Optional[float] = None
        bka_added: Optional[int] = None
        bka_nodes = 0
        exhausted = False
        try:
            start = time.perf_counter()
            result = mapper.run(circuit)
            bka_seconds = time.perf_counter() - start
            bka_added = result.added_gates
            bka_nodes = mapper.last_run_nodes
        except SearchExhausted as exc:
            exhausted = True
            bka_nodes = exc.nodes_expanded
        rows.append(
            ScalingRow(
                family=family,
                num_qubits=size,
                num_gates=circuit.count_gates(),
                sabre_seconds=sabre.runtime_seconds,
                sabre_added=sabre.added_gates,
                bka_seconds=bka_seconds,
                bka_added=bka_added,
                bka_nodes=bka_nodes,
                bka_exhausted=exhausted,
            )
        )
    return rows


def scaling_to_text(rows: Sequence[ScalingRow]) -> str:
    title = "Scalability (paper §V-B2): BKA vs SABRE as circuit size grows"
    return format_table(HEADERS, [row.as_cells() for row in rows], title=title)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate §V-B2 scaling data.")
    parser.add_argument("--family", default="qft", choices=("qft", "ising"))
    parser.add_argument(
        "--sizes", nargs="*", type=int, default=[4, 6, 8, 10, 12, 14, 16]
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--bka-max-nodes", type=int, default=200_000)
    parser.add_argument("--bka-max-seconds", type=float, default=60.0)
    args = parser.parse_args(argv)
    rows = run_scaling(
        family=args.family,
        sizes=args.sizes,
        seed=args.seed,
        bka_max_nodes=args.bka_max_nodes,
        bka_max_seconds=args.bka_max_seconds,
    )
    print(scaling_to_text(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
