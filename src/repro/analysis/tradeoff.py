"""Figure 8 harness: the gate-count / depth trade-off under decay.

The decay effect (§IV-C3, §IV-D) biases SABRE toward non-overlapping
SWAPs: larger ``delta`` buys shallower circuits at the cost of extra
gates.  Figure 8 plots, for nine benchmarks, the output circuit depth
(normalised to the original depth) against the output gate count
(normalised to ``g_ori``) as ``delta`` sweeps — showing ~8% depth
variation.  Run as::

    python -m repro.analysis.tradeoff                # paper's 9 benchmarks
    python -m repro.analysis.tradeoff --names qft_10 # subset
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.formatting import format_series
from repro.bench_circuits.suites import FIGURE_8_NAMES, get_benchmark
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depth import circuit_depth
from repro.core.compiler import compile_circuit
from repro.core.heuristic import HeuristicConfig
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import ibm_q20_tokyo
from repro.hardware.distance import distance_matrix

#: The delta sweep used by default (0 = decay off, then increasing).
DEFAULT_DELTAS: Sequence[float] = (0.0, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1)


@dataclass(frozen=True)
class TradeoffPoint:
    """One (delta, gates, depth) measurement.

    ``gates_norm``/``depth_norm`` match Figure 8's axes: total output
    gates normalised to ``g_ori`` and output depth normalised to the
    original circuit depth.
    """

    delta: float
    total_gates: int
    depth: int
    gates_norm: float
    depth_norm: float


def decay_sweep(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    seed: int = 0,
    num_trials: int = 3,
    distance=None,
) -> List[TradeoffPoint]:
    """Route ``circuit`` once per ``delta`` and collect trade-off points."""
    if distance is None:
        distance = distance_matrix(coupling)
    original_gates = circuit.count_gates()
    original_depth = circuit_depth(circuit)
    points: List[TradeoffPoint] = []
    for delta in deltas:
        config = HeuristicConfig(mode="decay", decay_delta=delta)
        result = compile_circuit(
            circuit,
            coupling,
            config=config,
            seed=seed,
            num_trials=num_trials,
            distance=distance,
        )
        depth = result.routed_depth
        points.append(
            TradeoffPoint(
                delta=delta,
                total_gates=result.total_gates,
                depth=depth,
                gates_norm=result.total_gates / max(original_gates, 1),
                depth_norm=depth / max(original_depth, 1),
            )
        )
    return points


def run_figure8(
    names: Optional[Iterable[str]] = None,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    coupling: Optional[CouplingGraph] = None,
    seed: int = 0,
    num_trials: int = 3,
) -> Dict[str, List[TradeoffPoint]]:
    """The Figure 8 experiment over the paper's nine benchmarks."""
    coupling = coupling or ibm_q20_tokyo()
    distance = distance_matrix(coupling)
    series: Dict[str, List[TradeoffPoint]] = {}
    for name in names or FIGURE_8_NAMES:
        circuit = get_benchmark(name).build()
        series[name] = decay_sweep(
            circuit,
            coupling,
            deltas=deltas,
            seed=seed,
            num_trials=num_trials,
            distance=distance,
        )
    return series


def depth_variation(points: Sequence[TradeoffPoint]) -> float:
    """Relative spread of normalised depth across the sweep.

    The paper reports "about 8% variation in generated circuit depth by
    varying the number of gates".
    """
    depths = [p.depth_norm for p in points]
    low, high = min(depths), max(depths)
    return (high - low) / high if high else 0.0


def figure8_to_text(series: Dict[str, List[TradeoffPoint]]) -> str:
    """Render all trade-off series plus per-benchmark depth variation."""
    blocks: List[str] = [
        "Figure 8 — trade-off between gates and depth in the output "
        "circuits (delta sweep)",
        "",
    ]
    for name, points in series.items():
        rows = [
            (p.delta, round(p.gates_norm, 4), round(p.depth_norm, 4))
            for p in points
        ]
        blocks.append(
            format_series(
                name, rows, x_label="delta", y_label="(gates_norm, depth_norm)"
            )
        )
        blocks.append(
            f"  depth variation across sweep: {100 * depth_variation(points):.1f}%"
        )
        blocks.append("")
    return "\n".join(blocks)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Regenerate Figure 8.")
    parser.add_argument("--names", nargs="*", help="benchmarks to sweep")
    parser.add_argument(
        "--deltas", nargs="*", type=float, help="decay deltas to sweep"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=3)
    args = parser.parse_args(argv)
    series = run_figure8(
        names=args.names or None,
        deltas=tuple(args.deltas) if args.deltas else DEFAULT_DELTAS,
        seed=args.seed,
        num_trials=args.trials,
    )
    print(figure8_to_text(series))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
