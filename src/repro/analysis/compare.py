"""Head-to-head mapper comparison (the league table behind §V).

Runs every registered mapper — SABRE, the A* BKA, the Siraichi-style
greedy, and the trivial router — on a set of workloads and prints one
row per (workload, mapper) with added gates, output depth, estimated
fidelity, and runtime.  This is the quickest way to see the paper's
quality ordering on *your* circuit.  Run as::

    python -m repro.analysis.compare --benchmarks qft_10 rd84_142
    python -m repro.analysis.compare --qasm my_circuit.qasm
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.formatting import format_table
from repro.baselines.astar import AStarMapper
from repro.baselines.greedy import GreedyMapper
from repro.baselines.trivial import TrivialRouter
from repro.bench_circuits.suites import build_benchmark
from repro.circuits.circuit import QuantumCircuit
from repro.core.compiler import compile_circuit
from repro.core.result import MappingResult
from repro.exceptions import ReproError, SearchExhausted
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import ibm_q20_tokyo
from repro.hardware.distance import distance_matrix
from repro.hardware.noise import IBM_Q20_TOKYO_NOISE

MapperFn = Callable[[QuantumCircuit], MappingResult]


@dataclass
class ComparisonRow:
    """One (workload, mapper) measurement; ``failed`` marks budget
    exhaustion (the BKA on large instances)."""

    workload: str
    mapper: str
    added_gates: Optional[int]
    depth: Optional[int]
    success_probability: Optional[float]
    runtime_seconds: Optional[float]
    failed: bool = False

    def as_cells(self) -> List[object]:
        if self.failed:
            return [self.workload, self.mapper, "OOM", "-", "-", "-"]
        return [
            self.workload,
            self.mapper,
            self.added_gates,
            self.depth,
            f"{self.success_probability:.3e}",
            round(self.runtime_seconds or 0.0, 3),
        ]


HEADERS = ["workload", "mapper", "g_add", "depth", "est. success", "t(s)"]


def default_mappers(
    coupling: CouplingGraph,
    seed: int = 0,
    sabre_trials: int = 5,
    bka_max_nodes: int = 300_000,
    bka_max_seconds: float = 60.0,
) -> Dict[str, MapperFn]:
    """The four mappers of the evaluation, ready to call."""
    distance = distance_matrix(coupling)
    return {
        "sabre": lambda c: compile_circuit(
            c, coupling, seed=seed, num_trials=sabre_trials, distance=distance
        ),
        "bka-astar": lambda c: AStarMapper(
            coupling,
            max_nodes=bka_max_nodes,
            max_seconds=bka_max_seconds,
            distance=distance,
        ).run(c),
        "greedy": lambda c: GreedyMapper(coupling).run(c),
        "trivial": lambda c: TrivialRouter(coupling).run(c),
    }


def compare_mappers(
    circuits: Sequence[QuantumCircuit],
    coupling: Optional[CouplingGraph] = None,
    mappers: Optional[Dict[str, MapperFn]] = None,
    **mapper_kwargs,
) -> List[ComparisonRow]:
    """Run every mapper on every circuit, tolerating BKA exhaustion."""
    coupling = coupling or ibm_q20_tokyo()
    mappers = mappers or default_mappers(coupling, **mapper_kwargs)
    noise = IBM_Q20_TOKYO_NOISE
    rows: List[ComparisonRow] = []
    for circuit in circuits:
        for name, mapper in mappers.items():
            try:
                result = mapper(circuit)
            except SearchExhausted:
                rows.append(
                    ComparisonRow(circuit.name, name, None, None, None, None,
                                  failed=True)
                )
                continue
            physical = result.physical_circuit()
            rows.append(
                ComparisonRow(
                    workload=circuit.name,
                    mapper=name,
                    added_gates=result.added_gates,
                    depth=result.routed_depth,
                    success_probability=noise.estimated_success_probability(
                        physical
                    ),
                    runtime_seconds=result.runtime_seconds,
                )
            )
    return rows


def comparison_to_text(rows: Sequence[ComparisonRow]) -> str:
    return format_table(
        HEADERS,
        [row.as_cells() for row in rows],
        title="Mapper comparison (IBM Q20 Tokyo noise model)",
    )


def best_mapper_per_workload(
    rows: Sequence[ComparisonRow],
) -> Dict[str, str]:
    """Winner by added gates (ties broken by depth) per workload."""
    best: Dict[str, ComparisonRow] = {}
    for row in rows:
        if row.failed:
            continue
        current = best.get(row.workload)
        key = (row.added_gates, row.depth)
        if current is None or key < (current.added_gates, current.depth):
            best[row.workload] = row
    return {workload: row.mapper for workload, row in best.items()}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description="Compare all mappers.")
    parser.add_argument(
        "--benchmarks",
        nargs="*",
        default=["qft_10", "rd84_142"],
        help="Table II benchmark names",
    )
    parser.add_argument("--qasm", nargs="*", help="additional QASM files")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trials", type=int, default=5)
    parser.add_argument("--bka-max-nodes", type=int, default=300_000)
    args = parser.parse_args(argv)

    circuits: List[QuantumCircuit] = [
        build_benchmark(name) for name in args.benchmarks
    ]
    for path in args.qasm or []:
        from repro.qasm import parse_qasm_file

        circuits.append(parse_qasm_file(path))
    if not circuits:
        raise ReproError("nothing to compare: give --benchmarks or --qasm")

    rows = compare_mappers(
        circuits,
        seed=args.seed,
        sabre_trials=args.trials,
        bka_max_nodes=args.bka_max_nodes,
    )
    print(comparison_to_text(rows))
    winners = best_mapper_per_workload(rows)
    print()
    for workload, mapper in winners.items():
        print(f"best on {workload}: {mapper}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
