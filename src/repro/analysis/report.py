"""Markdown experiment reports (EXPERIMENTS.md generator).

Turns harness outputs (Table II rows, Figure 8 series, scaling rows)
into the paper-vs-measured markdown record.  Regenerate the full
document with::

    python -m repro.analysis.report            # full run, slow
    python -m repro.analysis.report --fast     # reduced budgets
"""

from __future__ import annotations

import argparse
from typing import Dict, List, Optional, Sequence

from repro.analysis.scaling import ScalingRow
from repro.analysis.table2 import Table2Row
from repro.analysis.tradeoff import TradeoffPoint, depth_variation


def _md_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    def render(cell: object) -> str:
        if cell is None:
            return "—"
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(render(c) for c in row) + " |" for row in rows)
    return "\n".join(lines)


def table2_markdown(rows: Sequence[Table2Row]) -> str:
    """Paper-vs-measured markdown for Table II."""
    headers = [
        "benchmark", "n", "g_ori (ours)",
        "BKA g_add (ours)", "BKA g_add (paper)",
        "SABRE g_la (ours)", "SABRE g_la (paper)",
        "SABRE g_op (ours)", "SABRE g_op (paper)",
        "SABRE t s (ours)", "SABRE t s (paper)",
    ]
    body = []
    for row in rows:
        spec = row.spec
        body.append(
            [
                spec.name,
                spec.num_qubits,
                row.gates_ours,
                "OOM" if row.bka_added is None else row.bka_added,
                "OOM" if spec.paper_bka_oom else spec.paper_bka_added,
                row.sabre_lookahead_added,
                spec.paper_sabre_lookahead,
                row.sabre_added,
                spec.paper_sabre_added,
                round(row.sabre_time, 3),
                spec.paper_sabre_time_total,
            ]
        )
    wins = sum(
        1 for r in rows if r.bka_added is not None and r.sabre_added <= r.bka_added
    )
    comparable = sum(1 for r in rows if r.bka_added is not None)
    summary = (
        f"\nSABRE matched or beat the BKA on **{wins}/{comparable}** "
        "comparable rows; budget-exhausted (OOM) rows: "
        f"**{sum(1 for r in rows if r.bka_added is None)}**."
    )
    return _md_table(headers, body) + summary


def figure8_markdown(series: Dict[str, List[TradeoffPoint]]) -> str:
    """Markdown for the Figure 8 decay sweep."""
    headers = ["benchmark", "delta sweep (gates_norm, depth_norm)", "depth variation"]
    body = []
    for name, points in series.items():
        sweep = "; ".join(
            f"δ={p.delta:g}: ({p.gates_norm:.3f}, {p.depth_norm:.3f})"
            for p in points
        )
        body.append([name, sweep, f"{100 * depth_variation(points):.1f}%"])
    return _md_table(headers, body)


def scaling_markdown(rows: Sequence[ScalingRow]) -> str:
    """Markdown for the §V-B2 scaling sweep."""
    headers = [
        "benchmark", "n", "gates",
        "SABRE t(s)", "SABRE g_add",
        "BKA t(s)", "BKA g_add", "BKA search nodes",
    ]
    body = [
        [
            f"{r.family}_{r.num_qubits}",
            r.num_qubits,
            r.num_gates,
            round(r.sabre_seconds, 3),
            r.sabre_added,
            "OOM" if r.bka_exhausted else round(r.bka_seconds or 0.0, 3),
            "—" if r.bka_added is None else r.bka_added,
            r.bka_nodes,
        ]
        for r in rows
    ]
    return _md_table(headers, body)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.analysis.scaling import run_scaling
    from repro.analysis.table2 import run_table2
    from repro.analysis.tradeoff import run_figure8

    parser = argparse.ArgumentParser(description="Emit EXPERIMENTS-style markdown.")
    parser.add_argument("--fast", action="store_true", help="reduced budgets")
    args = parser.parse_args(argv)

    trials = 2 if args.fast else 5
    bka_nodes = 100_000 if args.fast else 500_000
    categories = ["small", "sim"] if args.fast else None

    rows = run_table2(
        categories=categories,
        num_trials=trials,
        bka_max_nodes=bka_nodes,
        progress=True,
    )
    print("## Table II\n")
    print(table2_markdown(rows))
    series = run_figure8(
        names=["qft_10"] if args.fast else None, num_trials=trials
    )
    print("\n## Figure 8\n")
    print(figure8_markdown(series))
    scaling = run_scaling(sizes=(4, 8) if args.fast else (4, 6, 8, 10, 13, 16, 20))
    print("\n## Scaling\n")
    print(scaling_markdown(scaling))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
