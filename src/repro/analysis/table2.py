"""Table II harness: SABRE vs the A* BKA over the benchmark suite.

Regenerates the paper's main result table.  For every selected
benchmark it runs:

- **BKA** (Zulehner-style A*, :class:`repro.baselines.AStarMapper`)
  under a node/time budget — budget exhaustion is reported as ``OOM``,
  the paper's failure mode on ising_model_16 and qft_20;
- **SABRE** with the paper's configuration (5 random restarts x 3
  traversals, decay heuristic), reporting both ``g_la`` (best first
  traversal = look-ahead only) and ``g_op`` (with reverse traversal);

and prints our numbers next to the paper's.  Run as::

    python -m repro.analysis.table2 --category small sim qft
    python -m repro.analysis.table2 --full          # all 26 rows
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.analysis.formatting import format_table
from repro.baselines.astar import AStarMapper
from repro.bench_circuits.suites import TABLE_II, BenchmarkSpec
from repro.core.compiler import compile_circuit
from repro.core.heuristic import HeuristicConfig
from repro.exceptions import SearchExhausted
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import ibm_q20_tokyo
from repro.hardware.distance import distance_matrix
from repro.verify.compliance import assert_compliant
from repro.verify.equivalence import assert_equivalent


@dataclass
class Table2Row:
    """Measured numbers for one benchmark, beside the paper's."""

    spec: BenchmarkSpec
    gates_ours: int
    bka_added: Optional[int]  # None = budget exhausted ("OOM")
    bka_time: Optional[float]
    sabre_lookahead_added: int
    sabre_added: int
    sabre_time: float

    def as_cells(self) -> List[object]:
        spec = self.spec
        return [
            spec.name,
            spec.num_qubits,
            self.gates_ours,
            "OOM" if self.bka_added is None else self.bka_added,
            "-" if self.bka_time is None else round(self.bka_time, 3),
            self.sabre_lookahead_added,
            self.sabre_added,
            round(self.sabre_time, 3),
            "OOM" if spec.paper_bka_oom else spec.paper_bka_added,
            spec.paper_sabre_lookahead,
            spec.paper_sabre_added,
            self.delta_vs_bka(),
        ]

    def delta_vs_bka(self) -> Optional[int]:
        """Gate reduction vs BKA (positive = SABRE wins), paper's Δg."""
        if self.bka_added is None:
            return None
        return self.bka_added - self.sabre_added


HEADERS = [
    "name",
    "n",
    "g_ori",
    "bka g_add",
    "bka t(s)",
    "sabre g_la",
    "sabre g_op",
    "sabre t(s)",
    "paper bka",
    "paper g_la",
    "paper g_op",
    "Δg",
]


def run_benchmark_row(
    spec: BenchmarkSpec,
    coupling: CouplingGraph,
    distance: Sequence[Sequence[float]],
    seed: int = 0,
    num_trials: int = 5,
    include_bka: bool = True,
    bka_max_nodes: int = 500_000,
    bka_max_seconds: Optional[float] = 120.0,
    verify: bool = True,
    config: Optional[HeuristicConfig] = None,
) -> Table2Row:
    """Run BKA and SABRE on one benchmark and collect the row."""
    circuit = spec.build()

    bka_added: Optional[int] = None
    bka_time: Optional[float] = None
    if include_bka:
        mapper = AStarMapper(
            coupling,
            max_nodes=bka_max_nodes,
            max_seconds=bka_max_seconds,
            distance=distance,
        )
        try:
            start = time.perf_counter()
            bka_result = mapper.run(circuit)
            bka_time = time.perf_counter() - start
            bka_added = bka_result.added_gates
            if verify:
                assert_compliant(bka_result.physical_circuit(), coupling)
                assert_equivalent(
                    circuit,
                    bka_result.routing.circuit,
                    bka_result.initial_layout,
                    bka_result.routing.swap_positions,
                )
        except SearchExhausted:
            bka_added = None
            bka_time = None

    sabre = compile_circuit(
        circuit,
        coupling,
        config=config,
        seed=seed,
        num_trials=num_trials,
        num_traversals=3,
        distance=distance,
    )
    if verify:
        assert_compliant(sabre.physical_circuit(), coupling)
        assert_equivalent(
            sabre.original_circuit,
            sabre.routing.circuit,
            sabre.initial_layout,
            sabre.routing.swap_positions,
        )
    lookahead_added = (
        3 * sabre.first_pass_swaps if sabre.first_pass_swaps is not None else 0
    )
    return Table2Row(
        spec=spec,
        gates_ours=circuit.count_gates(),
        bka_added=bka_added,
        bka_time=bka_time,
        sabre_lookahead_added=lookahead_added,
        sabre_added=sabre.added_gates,
        sabre_time=sabre.runtime_seconds,
    )


def run_table2(
    names: Optional[Iterable[str]] = None,
    categories: Optional[Iterable[str]] = None,
    coupling: Optional[CouplingGraph] = None,
    seed: int = 0,
    num_trials: int = 5,
    include_bka: bool = True,
    bka_max_nodes: int = 500_000,
    bka_max_seconds: Optional[float] = 120.0,
    verify: bool = True,
    progress: bool = False,
) -> List[Table2Row]:
    """Run the Table II experiment over a benchmark selection.

    Defaults reproduce the paper: all rows, IBM Q20 Tokyo, 5 random
    restarts.  ``names``/``categories`` filter the suite; budgets bound
    the exponential baseline.
    """
    coupling = coupling or ibm_q20_tokyo()
    distance = distance_matrix(coupling)
    selected = [
        spec
        for spec in TABLE_II
        if (names is None or spec.name in set(names))
        and (categories is None or spec.category in set(categories))
    ]
    rows: List[Table2Row] = []
    for spec in selected:
        if progress:
            print(f"... {spec.name}", file=sys.stderr, flush=True)
        rows.append(
            run_benchmark_row(
                spec,
                coupling,
                distance,
                seed=seed,
                num_trials=num_trials,
                include_bka=include_bka,
                bka_max_nodes=bka_max_nodes,
                bka_max_seconds=bka_max_seconds,
                verify=verify,
            )
        )
    return rows


def table2_rows_to_text(rows: Sequence[Table2Row]) -> str:
    """Render rows as the paper-style ASCII table with summary lines."""
    table = format_table(
        HEADERS,
        [row.as_cells() for row in rows],
        title="Table II — additional gates and runtime: SABRE vs BKA "
        "(IBM Q20 Tokyo)",
    )
    wins = sum(
        1
        for row in rows
        if row.bka_added is not None and row.sabre_added <= row.bka_added
    )
    comparable = sum(1 for row in rows if row.bka_added is not None)
    ooms = sum(1 for row in rows if row.bka_added is None)
    lines = [table, ""]
    if comparable:
        lines.append(
            f"SABRE <= BKA additional gates on {wins}/{comparable} "
            "comparable benchmarks"
        )
    if ooms:
        lines.append(f"BKA exhausted its budget (paper: OOM) on {ooms} row(s)")
    reductions = [
        (row.bka_added - row.sabre_added) / row.bka_added
        for row in rows
        if row.bka_added
    ]
    if reductions:
        mean = sum(reductions) / len(reductions)
        lines.append(
            f"mean reduction in additional gates vs BKA: {100 * mean:.1f}%"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate Table II (SABRE vs BKA)."
    )
    parser.add_argument("--names", nargs="*", help="benchmark names to run")
    parser.add_argument(
        "--category",
        nargs="*",
        dest="categories",
        help="categories to run (small sim qft large)",
    )
    parser.add_argument(
        "--full", action="store_true", help="run all 26 benchmarks"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--trials", type=int, default=5, help="SABRE random restarts (paper: 5)"
    )
    parser.add_argument("--no-bka", action="store_true", help="skip the A* baseline")
    parser.add_argument(
        "--bka-max-nodes",
        type=int,
        default=500_000,
        help="A* expansion budget standing in for the 378 GB memory cap",
    )
    parser.add_argument(
        "--bka-max-seconds",
        type=float,
        default=120.0,
        help="A* wall-clock budget per benchmark",
    )
    parser.add_argument(
        "--no-verify", action="store_true", help="skip output verification"
    )
    args = parser.parse_args(argv)

    names = args.names or None
    categories = args.categories or None
    if not args.full and names is None and categories is None:
        categories = ["small", "sim", "qft"]

    rows = run_table2(
        names=names,
        categories=categories,
        seed=args.seed,
        num_trials=args.trials,
        include_bka=not args.no_bka,
        bka_max_nodes=args.bka_max_nodes,
        bka_max_seconds=args.bka_max_seconds,
        verify=not args.no_verify,
        progress=True,
    )
    print(table2_rows_to_text(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
