"""Metric extraction and fidelity estimates for mapping results."""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.result import MappingResult
from repro.hardware.noise import IBM_Q20_TOKYO_NOISE, NoiseModel


def result_metrics(result: MappingResult) -> Dict[str, object]:
    """The paper's metrics plus derived ratios, as a flat dict.

    Keys match Table II nomenclature where applicable (``g_ori``,
    ``g_add``, ``g_tot``) with depth and runtime alongside.
    """
    return {
        "name": result.name,
        "device": result.device_name,
        "n": len(result.original_circuit.used_qubits()),
        "g_ori": result.original_gates,
        "g_add": result.added_gates,
        "g_tot": result.total_gates,
        "swaps": result.num_swaps,
        "d_ori": result.original_depth,
        "d_out": result.routed_depth,
        "gate_overhead": round(result.gate_overhead_ratio(), 4),
        "depth_overhead": round(
            result.routed_depth / result.original_depth, 4
        )
        if result.original_depth
        else 0.0,
        "t_sec": round(result.runtime_seconds, 4),
    }


def json_safe_properties(
    properties: Optional[Mapping[str, object]],
) -> Dict[str, object]:
    """A pipeline PropertySet reduced to JSON-serialisable entries.

    The serving layer ships a result's property set over the wire, but
    passes may record arbitrary Python objects (layouts, circuits).
    This keeps scalar facts (verification verdicts, rewrite statistics,
    objective overrides) and normalises ``pass_timings`` to
    ``[[pass_name, seconds], ...]``; everything else is dropped rather
    than half-heartedly stringified.
    """
    if not properties:
        return {}
    safe: Dict[str, object] = {}
    for key, value in properties.items():
        if key == "pass_timings":
            safe[key] = [
                [name, float(seconds)] for name, seconds in value
            ]
        elif isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
    return safe


def fidelity_report(
    result: MappingResult, noise: Optional[NoiseModel] = None
) -> Dict[str, float]:
    """Estimated success probabilities before/after routing.

    "Before" pretends the device had all-to-all coupling (no SWAPs);
    "after" uses the actual routed circuit.  The gap quantifies what the
    mapper's overhead costs in fidelity — the paper's motivation for
    minimising ``g`` and ``d`` (§III-A).
    """
    noise = noise or IBM_Q20_TOKYO_NOISE
    routed = result.physical_circuit(decompose_swaps=True)
    before = noise.estimated_success_probability(result.original_circuit)
    after = noise.estimated_success_probability(routed)
    return {
        "success_before_routing": before,
        "success_after_routing": after,
        "relative_fidelity_cost": 1.0 - (after / before if before > 0 else 0.0),
    }
