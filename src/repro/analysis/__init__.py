"""Experiment harnesses that regenerate the paper's tables and figures.

- :mod:`repro.analysis.metrics` — per-result metric extraction and
  fidelity estimates.
- :mod:`repro.analysis.table2` — Table II: SABRE vs the A* BKA over the
  26-benchmark suite (``python -m repro.analysis.table2``).
- :mod:`repro.analysis.tradeoff` — Figure 8: the gate-count/depth
  trade-off as the decay parameter sweeps
  (``python -m repro.analysis.tradeoff``).
- :mod:`repro.analysis.scaling` — §V-B2: runtime/search-space growth of
  BKA vs SABRE (``python -m repro.analysis.scaling``).
- :mod:`repro.analysis.formatting` — ASCII table/series rendering.
"""

from repro.analysis.metrics import result_metrics, fidelity_report
from repro.analysis.formatting import format_table, format_series
from repro.analysis.table2 import run_table2, table2_rows_to_text
from repro.analysis.tradeoff import decay_sweep, run_figure8, TradeoffPoint
from repro.analysis.scaling import run_scaling, ScalingRow
from repro.analysis.compare import compare_mappers, comparison_to_text

__all__ = [
    "compare_mappers",
    "comparison_to_text",
    "result_metrics",
    "fidelity_report",
    "format_table",
    "format_series",
    "run_table2",
    "table2_rows_to_text",
    "decay_sweep",
    "run_figure8",
    "TradeoffPoint",
    "run_scaling",
    "ScalingRow",
]
