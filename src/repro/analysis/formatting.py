"""Plain-text rendering of experiment tables and series.

The paper's artifacts are a table (Table II) and an X-Y plot (Figure
8); in a terminal-first reproduction both become aligned ASCII.  These
helpers keep every harness's output consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned; ``None``
    renders as ``-``.
    """
    materialised: List[List[str]] = []
    numeric: List[bool] = [True] * len(headers)
    for row in rows:
        cells = []
        for index, value in enumerate(row):
            if value is None:
                cells.append("-")
            elif isinstance(value, float):
                cells.append(f"{value:.3f}")
            else:
                cells.append(str(value))
                if not isinstance(value, (int, float)):
                    numeric[index] = False
        materialised.append(cells)
    widths = [len(h) for h in headers]
    for cells in materialised:
        for index, cell in enumerate(cells):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if numeric[index]:
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(cells) for cells in materialised)
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[Sequence[float]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y, ...) point series as labelled text lines."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for point in points:
        coords = ", ".join(f"{v:.4f}" if isinstance(v, float) else str(v) for v in point)
        lines.append(f"  ({coords})")
    return "\n".join(lines)
