"""Seeded random circuit generators.

Used by property-based tests (any random circuit must route to a
compliant, equivalent output on any connected device) and by scaling
benchmarks.  Everything is deterministic given ``seed``.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError

#: Default single-qubit gate pool (parameterless, in the IBM basis).
DEFAULT_1Q_GATES: Sequence[str] = ("h", "x", "t", "tdg", "s", "sdg", "z")


def random_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    two_qubit_fraction: float = 0.5,
    one_qubit_gates: Sequence[str] = DEFAULT_1Q_GATES,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Uniform random circuit in the {1q, CNOT} basis.

    Args:
        num_qubits: wire count (>= 2 when any two-qubit gate is drawn).
        num_gates: total gate count.
        seed: RNG seed; equal seeds give equal circuits.
        two_qubit_fraction: probability that each gate is a CNOT on a
            uniformly random ordered qubit pair.
        one_qubit_gates: pool of single-qubit gate names.
        name: circuit name; defaults to ``random_<n>q_<g>g_s<seed>``.
    """
    if num_qubits < 1:
        raise CircuitError("random_circuit needs at least 1 qubit")
    if num_qubits < 2 and two_qubit_fraction > 0:
        raise CircuitError("two-qubit gates need at least 2 qubits")
    rng = random.Random(seed)
    circ = QuantumCircuit(
        num_qubits, name or f"random_{num_qubits}q_{num_gates}g_s{seed}"
    )
    for _ in range(num_gates):
        if num_qubits >= 2 and rng.random() < two_qubit_fraction:
            control, target = rng.sample(range(num_qubits), 2)
            circ.cx(control, target)
        else:
            gate = rng.choice(list(one_qubit_gates))
            circ.append(Gate(gate, (rng.randrange(num_qubits),)))
    return circ


def random_cx_circuit(
    num_qubits: int, num_gates: int, seed: int = 0, name: Optional[str] = None
) -> QuantumCircuit:
    """Random circuit of CNOTs only — the hardest case for a router.

    Every gate needs routing, so this isolates mapper behaviour from
    single-qubit noise in benchmarks.
    """
    return random_circuit(
        num_qubits,
        num_gates,
        seed=seed,
        two_qubit_fraction=1.0,
        name=name or f"random_cx_{num_qubits}q_{num_gates}g_s{seed}",
    )


def random_clustered_circuit(
    num_qubits: int,
    num_gates: int,
    seed: int = 0,
    cluster_size: int = 4,
    cross_cluster_fraction: float = 0.1,
    name: Optional[str] = None,
) -> QuantumCircuit:
    """Random CNOT circuit with locality: most pairs fall inside clusters.

    Real workloads (arithmetic, simulation) interact small working sets
    of qubits repeatedly; this generator reproduces that structure and is
    used in ablation benchmarks where a good initial mapping pays off.
    """
    if cluster_size < 2:
        raise CircuitError("cluster_size must be >= 2")
    rng = random.Random(seed)
    circ = QuantumCircuit(
        num_qubits, name or f"clustered_{num_qubits}q_{num_gates}g_s{seed}"
    )
    clusters = [
        list(range(start, min(start + cluster_size, num_qubits)))
        for start in range(0, num_qubits, cluster_size)
    ]
    clusters = [c for c in clusters if len(c) >= 2]
    if not clusters:
        raise CircuitError("num_qubits too small for the given cluster_size")
    for _ in range(num_gates):
        if rng.random() < cross_cluster_fraction and len(clusters) >= 2:
            c1, c2 = rng.sample(range(len(clusters)), 2)
            a = rng.choice(clusters[c1])
            b = rng.choice(clusters[c2])
        else:
            cluster = rng.choice(clusters)
            a, b = rng.sample(cluster, 2)
        circ.cx(a, b)
    return circ
