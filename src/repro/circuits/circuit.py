"""The :class:`QuantumCircuit` container.

A circuit is an ordered list of :class:`~repro.circuits.gates.Gate`
objects over ``num_qubits`` wires.  This mirrors the paper's circuit
model (Section II-A): each wire is a logical qubit; the mapper's job is
to re-home those wires onto physical qubits.

The container is deliberately simple — a growable gate list with
validation, builder methods (``circ.h(0)``, ``circ.cx(0, 1)``), and
derived views (gate counts, two-qubit interaction list).  Depth and
dependency structure live in :mod:`repro.circuits.depth` and
:mod:`repro.circuits.dag`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.circuits.gates import Gate
from repro.exceptions import CircuitError


class QuantumCircuit:
    """An ordered sequence of gates on ``num_qubits`` logical qubits.

    Args:
        num_qubits: number of wires.  Gate operands must lie in
            ``range(num_qubits)``.
        name: optional human-readable name (benchmark id, etc.).
        num_clbits: size of the classical register for measurements;
            defaults to ``num_qubits``.

    Example:
        >>> circ = QuantumCircuit(3, name="ghz")
        >>> circ.h(0)
        >>> circ.cx(0, 1)
        >>> circ.cx(1, 2)
        >>> circ.num_gates
        3
    """

    def __init__(
        self,
        num_qubits: int,
        name: Optional[str] = None,
        num_clbits: Optional[int] = None,
    ) -> None:
        if num_qubits < 0:
            raise CircuitError(f"num_qubits must be >= 0, got {num_qubits}")
        self.num_qubits = num_qubits
        self.num_clbits = num_qubits if num_clbits is None else num_clbits
        self.name = name or "circuit"
        self._gates: List[Gate] = []
        #: Bumped on every append; lets derived-fact caches (e.g. the
        #: compiler's needs-decomposition predicate) validate in O(1)
        #: instead of rescanning the gate list per call.
        self._mutations = 0

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """The gate sequence as an immutable snapshot."""
        return tuple(self._gates)

    @property
    def num_gates(self) -> int:
        """Total number of operations, including directives."""
        return len(self._gates)

    def __len__(self) -> int:
        return len(self._gates)

    def __iter__(self) -> Iterator[Gate]:
        return iter(self._gates)

    def __getitem__(self, index):
        return self._gates[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantumCircuit):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and self._gates == other._gates
        )

    def __repr__(self) -> str:
        return (
            f"QuantumCircuit(name={self.name!r}, num_qubits={self.num_qubits}, "
            f"num_gates={self.num_gates})"
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def append(self, gate: Gate) -> None:
        """Append a pre-built gate, validating operand ranges."""
        for q in gate.qubits:
            if not 0 <= q < self.num_qubits:
                raise CircuitError(
                    f"gate {gate} uses qubit {q}, but circuit has "
                    f"{self.num_qubits} qubit(s)"
                )
        if gate.clbit is not None and not 0 <= gate.clbit < self.num_clbits:
            raise CircuitError(
                f"gate {gate} uses clbit {gate.clbit}, but circuit has "
                f"{self.num_clbits} clbit(s)"
            )
        self._gates.append(gate)
        self._mutations += 1

    def extend(self, gates: Iterable[Gate]) -> None:
        """Append every gate from ``gates`` in order."""
        for gate in gates:
            self.append(gate)

    def append_unchecked(self, gate: Gate) -> None:
        """Append without operand-range validation.

        For producers that guarantee validity by construction — the
        router emits gates whose operands come from a layout table over
        ``range(num_qubits)``, so re-checking every output op of every
        traversal was pure overhead.  Everyone else should use
        :meth:`append`.
        """
        self._gates.append(gate)
        self._mutations += 1

    def add_gate(self, name: str, *qubits: int, params: Sequence[float] = ()) -> None:
        """Append a gate by name: ``circ.add_gate('cx', 0, 1)``."""
        self.append(Gate(name, tuple(qubits), tuple(params)))

    # Builder methods for the standard library.  Generated explicitly so
    # the public API is greppable and IDE-discoverable.

    def id(self, q: int) -> None:
        self.append(Gate("id", (q,)))

    def x(self, q: int) -> None:
        self.append(Gate("x", (q,)))

    def y(self, q: int) -> None:
        self.append(Gate("y", (q,)))

    def z(self, q: int) -> None:
        self.append(Gate("z", (q,)))

    def h(self, q: int) -> None:
        self.append(Gate("h", (q,)))

    def s(self, q: int) -> None:
        self.append(Gate("s", (q,)))

    def sdg(self, q: int) -> None:
        self.append(Gate("sdg", (q,)))

    def t(self, q: int) -> None:
        self.append(Gate("t", (q,)))

    def tdg(self, q: int) -> None:
        self.append(Gate("tdg", (q,)))

    def rx(self, theta: float, q: int) -> None:
        self.append(Gate("rx", (q,), (theta,)))

    def ry(self, theta: float, q: int) -> None:
        self.append(Gate("ry", (q,), (theta,)))

    def rz(self, theta: float, q: int) -> None:
        self.append(Gate("rz", (q,), (theta,)))

    def u1(self, lam: float, q: int) -> None:
        self.append(Gate("u1", (q,), (lam,)))

    def u2(self, phi: float, lam: float, q: int) -> None:
        self.append(Gate("u2", (q,), (phi, lam)))

    def u3(self, theta: float, phi: float, lam: float, q: int) -> None:
        self.append(Gate("u3", (q,), (theta, phi, lam)))

    def cx(self, control: int, target: int) -> None:
        self.append(Gate("cx", (control, target)))

    def cz(self, a: int, b: int) -> None:
        self.append(Gate("cz", (a, b)))

    def cu1(self, lam: float, control: int, target: int) -> None:
        self.append(Gate("cu1", (control, target), (lam,)))

    def rzz(self, theta: float, a: int, b: int) -> None:
        self.append(Gate("rzz", (a, b), (theta,)))

    def swap(self, a: int, b: int) -> None:
        self.append(Gate("swap", (a, b)))

    def ccx(self, c1: int, c2: int, target: int) -> None:
        self.append(Gate("ccx", (c1, c2, target)))

    def measure(self, qubit: int, clbit: Optional[int] = None) -> None:
        self.append(Gate("measure", (qubit,), clbit=qubit if clbit is None else clbit))

    def barrier(self, *qubits: int) -> None:
        """Append a barrier; with no arguments, spans all qubits."""
        qs = qubits or tuple(range(self.num_qubits))
        self.append(Gate("barrier", qs))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names, e.g. ``{'cx': 6, 'h': 2}``."""
        return dict(Counter(g.name for g in self._gates))

    def count_gates(self, include_directives: bool = False) -> int:
        """Number of unitary gates (the paper's ``g`` metric).

        Directives (measure/barrier/reset) are excluded by default since
        the paper counts only gates.
        """
        if include_directives:
            return len(self._gates)
        return sum(1 for g in self._gates if not g.is_directive)

    def two_qubit_gates(self) -> List[Gate]:
        """All routable two-qubit gates in circuit order."""
        return [g for g in self._gates if g.is_two_qubit]

    def num_two_qubit_gates(self) -> int:
        """Count of routable two-qubit gates."""
        return sum(1 for g in self._gates if g.is_two_qubit)

    def interaction_pairs(self) -> Counter:
        """Multiset of unordered qubit pairs touched by two-qubit gates.

        This is the "logical coupling" view the Siraichi-style baseline
        matches against the device coupling graph.
        """
        pairs: Counter = Counter()
        for g in self._gates:
            if g.is_two_qubit:
                a, b = g.qubits
                pairs[(min(a, b), max(a, b))] += 1
        return pairs

    def used_qubits(self) -> List[int]:
        """Sorted list of wires touched by at least one operation."""
        used = set()
        for g in self._gates:
            used.update(g.qubits)
        return sorted(used)

    def copy(self, name: Optional[str] = None) -> "QuantumCircuit":
        """Shallow copy (gates are immutable so sharing is safe)."""
        new = QuantumCircuit(self.num_qubits, name or self.name, self.num_clbits)
        new._gates = list(self._gates)
        return new

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` then ``other``."""
        if other.num_qubits > self.num_qubits:
            raise CircuitError(
                f"cannot compose: other circuit has {other.num_qubits} qubits, "
                f"self has {self.num_qubits}"
            )
        new = self.copy()
        new.extend(other.gates)
        return new

    def remapped(self, mapping) -> "QuantumCircuit":
        """Return a copy with every gate's operands sent through ``mapping``."""
        new = QuantumCircuit(self.num_qubits, self.name, self.num_clbits)
        for g in self._gates:
            new.append(g.remapped(mapping))
        return new

    def without_directives(self) -> "QuantumCircuit":
        """Copy with measure/barrier/reset removed (pure unitary part)."""
        new = QuantumCircuit(self.num_qubits, self.name, self.num_clbits)
        for g in self._gates:
            if not g.is_directive:
                new.append(g)
        return new
