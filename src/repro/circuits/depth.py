"""Circuit depth via ASAP (as-soon-as-possible) scheduling.

The paper's second quality metric is circuit depth ``d`` — the number of
time steps needed when every gate takes one step and gates on disjoint
qubits run concurrently (§III-B, "Metrics").  Depth matters because the
whole computation must finish within the qubit coherence time.

``schedule_asap`` assigns each gate the earliest step at which all its
operands are free; ``circuit_depth`` is the number of occupied steps.
Barriers synchronise their wires but occupy no step of their own;
measures occupy a step like gates (they are real device operations).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate


def schedule_asap(gates: Sequence[Gate], num_qubits: int) -> List[int]:
    """Return the ASAP time step of every gate (directive-aware).

    Args:
        gates: gate sequence in circuit order.
        num_qubits: wire count (operands must be < num_qubits).

    Returns:
        A list ``slots`` with ``slots[i]`` = 0-based time step of
        ``gates[i]``.  Barriers get the step at which all their wires
        synchronise but advance the wires without occupying the step.
    """
    wire_free_at = [0] * num_qubits
    slots: List[int] = []
    for gate in gates:
        if not gate.qubits:
            slots.append(0)
            continue
        start = max(wire_free_at[q] for q in gate.qubits)
        slots.append(start)
        if gate.name == "barrier":
            # A barrier aligns wires without consuming a time step.
            for q in gate.qubits:
                wire_free_at[q] = start
        else:
            for q in gate.qubits:
                wire_free_at[q] = start + 1
    return slots


#: Directive gate names, by value — saves a GATE_SPECS lookup per gate
#: in the depth loop (depth runs once per routing traversal).
_DIRECTIVE_NAMES = frozenset(("measure", "reset", "barrier"))


def circuit_depth(circuit: QuantumCircuit, count_directives: bool = False) -> int:
    """ASAP depth of a circuit (the paper's ``d`` metric).

    By default barriers and measures are excluded from the depth count
    (barriers are compile-time directives; the paper's benchmarks have no
    trailing measurement rounds).  Set ``count_directives=True`` to
    include measure/reset steps.

    The default path is a single fused pass (no slots list, no gate
    filtering copy): the layout search computes a depth per forward
    traversal of every trial, so this sits on the compilation hot path.
    Equivalence with ``schedule_asap`` is a test invariant.
    """
    if count_directives:
        gates = [g for g in circuit if g.name != "barrier"]
        if not gates:
            return 0
        slots = schedule_asap(gates, circuit.num_qubits)
        return max(slots) + 1
    wire_free_at = [0] * circuit.num_qubits
    depth = 0
    directives = _DIRECTIVE_NAMES
    for gate in circuit:
        if gate.name in directives:
            continue
        qubits = gate.qubits
        if len(qubits) == 2:
            a, b = qubits
            fa = wire_free_at[a]
            fb = wire_free_at[b]
            end = (fa if fa >= fb else fb) + 1
            wire_free_at[a] = end
            wire_free_at[b] = end
        elif len(qubits) == 1:
            a = qubits[0]
            end = wire_free_at[a] + 1
            wire_free_at[a] = end
        else:
            # 3+ qubit unitaries (pre-decomposition circuits).
            end = max(wire_free_at[q] for q in qubits) + 1
            for q in qubits:
                wire_free_at[q] = end
        if end > depth:
            depth = end
    return depth


def layers_asap(circuit: QuantumCircuit) -> List[List[Gate]]:
    """Group unitary gates into ASAP time-step layers.

    Layer ``k`` contains the gates scheduled at step ``k``; gates within
    a layer act on disjoint qubits and can run concurrently.
    """
    gates = [g for g in circuit if not g.is_directive]
    slots = schedule_asap(gates, circuit.num_qubits)
    if not gates:
        return []
    layers: List[List[Gate]] = [[] for _ in range(max(slots) + 1)]
    for gate, slot in zip(gates, slots):
        layers[slot].append(gate)
    return layers
