"""Circuit reversal for the reverse-traversal technique (paper Fig. 5).

Quantum circuits are reversible: reading the gate list backwards (and
inverting each gate) yields a circuit whose dependency structure is the
mirror image of the original.  The paper exploits this for initial
mapping: "The two-qubit gates in the reverse circuit will be exactly the
same with only the order reversed" (§IV-C2) — the *routing* problem of
the reverse circuit is identical in shape, so a final mapping of one
traversal is a valid, globally-informed initial mapping for the next.

Two flavours:

- :func:`reversed_circuit` — gate order reversed, gates kept as-is.
  This is all the mapper needs (routing only sees qubit pairs) and is
  what the paper describes.
- :func:`inverted_circuit` — the true dagger (order reversed *and* each
  gate inverted).  Composing ``circuit`` with ``inverted_circuit(circuit)``
  is the identity, which the simulator-based tests exploit.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit


def reversed_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """Gate order reversed; directives (measure/barrier) are dropped.

    Directives are not unitary and have no reverse; the paper's reverse
    traversal only cares about two-qubit dependency order, so removing
    them is both safe and necessary.
    """
    rev = QuantumCircuit(
        circuit.num_qubits, f"{circuit.name}_reversed", circuit.num_clbits
    )
    for gate in reversed(circuit.gates):
        if not gate.is_directive:
            rev.append(gate)
    return rev


def inverted_circuit(circuit: QuantumCircuit) -> QuantumCircuit:
    """The exact inverse (dagger) circuit: reversed order, inverted gates."""
    inv = QuantumCircuit(
        circuit.num_qubits, f"{circuit.name}_dagger", circuit.num_clbits
    )
    for gate in reversed(circuit.gates):
        if not gate.is_directive:
            inv.append(gate.inverse())
    return inv
