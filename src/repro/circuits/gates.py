"""Gate objects and the standard gate library.

The paper restricts circuits to single-qubit gates plus CNOT (Section
II-A): "arbitrary quantum circuit can be expressed by compositions of a
set of single-qubit gates and CNOT gate" (Barenco et al.), and this is
the elementary gate set of the IBM devices the paper targets.  We
implement that basis plus the common OpenQASM 2.0 convenience gates
(S, T, rotations, U1/U2/U3, CZ, SWAP, Toffoli) so the paper's benchmark
suites parse directly; the routing core itself only distinguishes
one-qubit from two-qubit gates.

A :class:`Gate` is an immutable value object: name, qubit operands, and
real parameters.  Immutability lets circuits share gates freely (the
reverse-traversal pass re-uses the forward pass's gates) and makes gates
usable as dictionary keys in the DAG.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.exceptions import CircuitError


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes:
        name: canonical lowercase gate name (as in OpenQASM 2.0).
        num_qubits: number of qubit operands.
        num_params: number of real parameters.
        self_inverse: whether ``G . G = I`` (used by :meth:`Gate.inverse`).
        inverse_name: name of the inverse gate type when it is a different
            type (e.g. ``t`` <-> ``tdg``); ``None`` means same type.
        directive: True for pseudo-operations (barrier) that have no
            unitary action and are ignored by routing heuristics.
    """

    name: str
    num_qubits: int
    num_params: int = 0
    self_inverse: bool = False
    inverse_name: Optional[str] = None
    directive: bool = False


def _build_specs() -> Dict[str, GateSpec]:
    specs = [
        GateSpec("id", 1, self_inverse=True),
        GateSpec("x", 1, self_inverse=True),
        GateSpec("y", 1, self_inverse=True),
        GateSpec("z", 1, self_inverse=True),
        GateSpec("h", 1, self_inverse=True),
        GateSpec("s", 1, inverse_name="sdg"),
        GateSpec("sdg", 1, inverse_name="s"),
        GateSpec("t", 1, inverse_name="tdg"),
        GateSpec("tdg", 1, inverse_name="t"),
        GateSpec("sx", 1, inverse_name="sxdg"),
        GateSpec("sxdg", 1, inverse_name="sx"),
        GateSpec("rx", 1, num_params=1),
        GateSpec("ry", 1, num_params=1),
        GateSpec("rz", 1, num_params=1),
        GateSpec("u1", 1, num_params=1),
        GateSpec("u2", 1, num_params=2),
        GateSpec("u3", 1, num_params=3),
        GateSpec("cx", 2, self_inverse=True),
        GateSpec("cz", 2, self_inverse=True),
        GateSpec("cy", 2, self_inverse=True),
        GateSpec("ch", 2, self_inverse=True),
        GateSpec("crz", 2, num_params=1),
        GateSpec("cu1", 2, num_params=1),
        GateSpec("cp", 2, num_params=1),
        GateSpec("rzz", 2, num_params=1),
        GateSpec("swap", 2, self_inverse=True),
        GateSpec("ccx", 3, self_inverse=True),
        GateSpec("cswap", 3, self_inverse=True),
        GateSpec("measure", 1, directive=True),
        GateSpec("reset", 1, directive=True),
        GateSpec("barrier", 0, directive=True),  # variadic; checked specially
    ]
    return {spec.name: spec for spec in specs}


#: Registry of all gate types the library understands, keyed by name.
GATE_SPECS: Dict[str, GateSpec] = _build_specs()

#: Gate names whose parameters negate under inversion (rotation-like).
_NEGATE_PARAMS_ON_INVERSE = {"rx", "ry", "rz", "u1", "crz", "cu1", "cp", "rzz"}


@dataclass(frozen=True, slots=True)
class Gate:
    """A single circuit operation: ``name`` applied to ``qubits``.

    Qubits are plain integer wire indices (the circuit container defines
    the register).  For controlled gates the control(s) come first, e.g.
    ``Gate('cx', (control, target))``.

    Instances are immutable and hashable; two gates compare equal when
    name, operands, and parameters all match.  Slotted: a routed
    deep-circuit workload holds millions of gates, and slot storage
    both shrinks them and speeds every ``gate.qubits`` read in the
    mapper's loops.
    """

    name: str
    qubits: Tuple[int, ...]
    params: Tuple[float, ...] = field(default=())
    clbit: Optional[int] = None  # only used by `measure`

    def __post_init__(self) -> None:
        spec = GATE_SPECS.get(self.name)
        if spec is None:
            raise CircuitError(f"unknown gate name: {self.name!r}")
        if not isinstance(self.qubits, tuple):
            object.__setattr__(self, "qubits", tuple(self.qubits))
        if not isinstance(self.params, tuple):
            object.__setattr__(self, "params", tuple(self.params))
        if spec.name == "barrier":
            if not self.qubits:
                raise CircuitError("barrier requires at least one qubit")
        elif len(self.qubits) != spec.num_qubits:
            raise CircuitError(
                f"gate {self.name!r} expects {spec.num_qubits} qubit(s), "
                f"got {len(self.qubits)}"
            )
        if len(set(self.qubits)) != len(self.qubits):
            raise CircuitError(
                f"gate {self.name!r} has duplicate qubit operands {self.qubits}"
            )
        if spec.name != "barrier" and len(self.params) != spec.num_params:
            raise CircuitError(
                f"gate {self.name!r} expects {spec.num_params} parameter(s), "
                f"got {len(self.params)}"
            )
        for p in self.params:
            if not isinstance(p, (int, float)):
                raise CircuitError(
                    f"gate {self.name!r} parameter {p!r} is not a real number"
                )

    @property
    def spec(self) -> GateSpec:
        """The static :class:`GateSpec` for this gate's type."""
        return GATE_SPECS[self.name]

    @property
    def num_qubits(self) -> int:
        """Number of qubit operands (2 for CNOT, 1 for H, ...)."""
        return len(self.qubits)

    @property
    def is_two_qubit(self) -> bool:
        """True for the gates the mapper must route (2-qubit unitaries).

        Barriers/measure/reset are directives and never require routing;
        3-qubit gates must be decomposed before routing (the paper's
        benchmarks are already in the {1q, CNOT} basis).
        """
        return self.num_qubits == 2 and not self.spec.directive

    @property
    def is_directive(self) -> bool:
        """True for non-unitary pseudo-operations (measure/reset/barrier)."""
        return self.spec.directive

    def inverse(self) -> "Gate":
        """Return the inverse (dagger) of this gate.

        Used to build true inverse circuits; the reverse *traversal* of
        the paper only needs gate order reversed (qubit pairs are what
        matter to routing), but we implement the exact dagger so reversed
        circuits remain semantically meaningful and simulator-checkable.
        """
        spec = self.spec
        if spec.directive:
            return self
        if spec.self_inverse:
            return self
        if spec.inverse_name is not None:
            return Gate(spec.inverse_name, self.qubits, self.params)
        if self.name in _NEGATE_PARAMS_ON_INVERSE:
            return Gate(self.name, self.qubits, tuple(-p for p in self.params))
        if self.name == "u2":
            phi, lam = self.params
            return Gate("u3", self.qubits, (-math.pi / 2, -lam, -phi))
        if self.name == "u3":
            theta, phi, lam = self.params
            return Gate("u3", self.qubits, (-theta, -lam, -phi))
        raise CircuitError(f"no inverse rule for gate {self.name!r}")

    def remapped(self, mapping) -> "Gate":
        """Return a copy acting on ``mapping[q]`` for each operand ``q``.

        ``mapping`` may be a dict, list, or any indexable; used to move
        gates between the logical and physical index spaces.
        """
        return Gate(
            self.name,
            tuple(mapping[q] for q in self.qubits),
            self.params,
            self.clbit,
        )

    def __str__(self) -> str:
        args = ", ".join(str(q) for q in self.qubits)
        if self.params:
            ps = ", ".join(f"{p:g}" for p in self.params)
            return f"{self.name}({ps}) {args}"
        return f"{self.name} {args}"


def swap_gate(pa: int, pb: int) -> Gate:
    """Unvalidated ``Gate("swap", (pa, pb))`` for the router's
    SWAP-insertion path.

    The router inserts one of these per search step with operands taken
    from a layout table (distinct by bijectivity, in range by
    construction), so the dataclass validation pass is provably
    redundant there.  Everyone else should construct :class:`Gate`
    normally.
    """
    gate = object.__new__(Gate)
    object.__setattr__(gate, "name", "swap")
    object.__setattr__(gate, "qubits", (pa, pb))
    object.__setattr__(gate, "params", ())
    object.__setattr__(gate, "clbit", None)
    return gate


def remap_gate(gate: Gate, mapping) -> Gate:
    """Allocation-light :meth:`Gate.remapped` for the router's emit path.

    Two differences from ``remapped()``, both safe only because the
    router maps through a *permutation* (a :class:`~repro.core.layout.Layout`
    table), which preserves operand distinctness and arity:

    - when the mapping is the identity on this gate's operands, the
      original (immutable) gate is returned unchanged — no allocation
      at all, the common case once qubits have settled;
    - otherwise the copy is built without re-running ``__post_init__``
      validation (spec lookup, arity/duplicate checks), which the
      source gate already passed and the permutation cannot break.

    Every output op of every traversal funnels through here, so the
    saved allocations are measured in the millions per layout sweep.
    """
    qubits = gate.qubits
    if len(qubits) == 2:
        mapped = (mapping[qubits[0]], mapping[qubits[1]])
    elif len(qubits) == 1:
        mapped = (mapping[qubits[0]],)
    else:
        mapped = tuple(mapping[q] for q in qubits)
    if mapped == qubits:
        return gate
    new = object.__new__(Gate)
    object.__setattr__(new, "name", gate.name)
    object.__setattr__(new, "qubits", mapped)
    object.__setattr__(new, "params", gate.params)
    object.__setattr__(new, "clbit", gate.clbit)
    return new
