"""Peephole circuit optimization passes.

Routing inserts SWAPs (3 CNOTs each) next to existing CNOTs, which
regularly creates adjacent inverse pairs — e.g. a routed ``cx(a, b)``
followed by a SWAP decomposition beginning ``cx(a, b)``.  These passes
clean such redundancy without touching circuit semantics:

- :func:`cancel_adjacent_inverses` — remove gate pairs ``G, G^-1`` that
  are adjacent on *all* their wires (single pass with cascade).
- :func:`merge_rotations` — combine same-axis rotations on a wire and
  drop zero-angle results.
- :func:`remove_identity_gates` — drop ``id`` gates and zero rotations.
- :func:`optimize_circuit` — fixpoint driver over all passes.

All passes preserve the unitary exactly (property-tested against the
state-vector simulator) and never reorder gates, only delete/merge, so
compliance of routed circuits is preserved too.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate

#: Rotation families whose adjacent applications add angles.
_MERGEABLE = {"rx", "ry", "rz", "u1", "rzz", "cu1", "cp", "crz"}

#: Angle below which a rotation is treated as identity (exact zero after
#: merging; kept tiny so no semantic drift is possible).
_ANGLE_EPS = 1e-12


def _is_zero_rotation(gate: Gate) -> bool:
    return (
        gate.name in _MERGEABLE
        and abs(math.remainder(gate.params[0], 4.0 * math.pi)) < _ANGLE_EPS
    )


def cancel_adjacent_inverses(circuit: QuantumCircuit) -> QuantumCircuit:
    """Remove ``G, G^-1`` pairs adjacent on every shared wire.

    A pair cancels only when the second gate's operand tuple matches the
    first's exactly and no other gate touches any of those wires in
    between.  Cancellations cascade: removing a pair can expose another.
    Directives (measure/barrier) act as barriers for their wires.
    """
    kept: List[Optional[Gate]] = []
    # For each wire, stack of indices into `kept` of live gates touching it.
    wire_stacks: Dict[int, List[int]] = {
        q: [] for q in range(circuit.num_qubits)
    }
    for gate in circuit:
        cancelled = False
        if not gate.is_directive and gate.qubits:
            tops = {
                wire_stacks[q][-1] if wire_stacks[q] else None
                for q in gate.qubits
            }
            if len(tops) == 1:
                (top,) = tops
                if top is not None:
                    prev = kept[top]
                    if (
                        prev is not None
                        and not prev.is_directive
                        and prev.qubits == gate.qubits
                        and prev.inverse() == gate
                    ):
                        kept[top] = None
                        for q in gate.qubits:
                            wire_stacks[q].pop()
                        cancelled = True
        if not cancelled:
            index = len(kept)
            kept.append(gate)
            for q in gate.qubits:
                wire_stacks[q].append(index)
    out = QuantumCircuit(circuit.num_qubits, circuit.name, circuit.num_clbits)
    for gate in kept:
        if gate is not None:
            out.append(gate)
    return out


def merge_rotations(circuit: QuantumCircuit) -> QuantumCircuit:
    """Fuse adjacent same-type rotations on identical operands.

    ``rz(a) . rz(b) -> rz(a+b)`` and likewise for rx/ry/u1 and the
    two-qubit phase family; merged gates whose total angle is zero are
    dropped entirely.
    """
    kept: List[Optional[Gate]] = []
    wire_stacks: Dict[int, List[int]] = {
        q: [] for q in range(circuit.num_qubits)
    }

    def pop_wires(gate: Gate) -> None:
        for q in gate.qubits:
            wire_stacks[q].pop()

    def push(gate: Gate) -> None:
        index = len(kept)
        kept.append(gate)
        for q in gate.qubits:
            wire_stacks[q].append(index)

    for gate in circuit:
        merged = False
        if gate.name in _MERGEABLE:
            tops = {
                wire_stacks[q][-1] if wire_stacks[q] else None
                for q in gate.qubits
            }
            if len(tops) == 1:
                (top,) = tops
                if top is not None:
                    prev = kept[top]
                    if (
                        prev is not None
                        and prev.name == gate.name
                        and prev.qubits == gate.qubits
                    ):
                        total = prev.params[0] + gate.params[0]
                        kept[top] = None
                        pop_wires(gate)
                        fused = Gate(gate.name, gate.qubits, (total,))
                        if not _is_zero_rotation(fused):
                            push(fused)
                        merged = True
        if not merged:
            push(gate)
    out = QuantumCircuit(circuit.num_qubits, circuit.name, circuit.num_clbits)
    for gate in kept:
        if gate is not None:
            out.append(gate)
    return out


def remove_identity_gates(circuit: QuantumCircuit) -> QuantumCircuit:
    """Drop ``id`` gates and exactly-zero rotations."""
    out = QuantumCircuit(circuit.num_qubits, circuit.name, circuit.num_clbits)
    for gate in circuit:
        if gate.name == "id":
            continue
        if _is_zero_rotation(gate):
            continue
        out.append(gate)
    return out


#: The standard pass pipeline, applied in order by :func:`optimize_circuit`.
DEFAULT_PASSES = (
    remove_identity_gates,
    cancel_adjacent_inverses,
    merge_rotations,
)


def optimize_circuit(
    circuit: QuantumCircuit,
    passes: Sequence = DEFAULT_PASSES,
    max_iterations: int = 10,
) -> QuantumCircuit:
    """Run the pass pipeline to a fixpoint (bounded by ``max_iterations``).

    Each full pipeline round either strictly shrinks the circuit or the
    loop stops, so termination is guaranteed even without the bound.
    """
    current = circuit
    for _ in range(max_iterations):
        before = current.num_gates
        for pass_fn in passes:
            current = pass_fn(current)
        if current.num_gates == before:
            break
    return current


def optimization_summary(
    before: QuantumCircuit, after: QuantumCircuit
) -> Dict[str, int]:
    """Gate/CNOT/depth deltas for reporting."""
    from repro.circuits.depth import circuit_depth

    return {
        "gates_before": before.count_gates(),
        "gates_after": after.count_gates(),
        "gates_removed": before.count_gates() - after.count_gates(),
        "cx_before": before.gate_counts().get("cx", 0),
        "cx_after": after.gate_counts().get("cx", 0),
        "depth_before": circuit_depth(before),
        "depth_after": circuit_depth(after),
    }
