"""Gate dependency DAG, front layer, and layering (paper Fig. 4, §IV-A).

The paper represents execution constraints between two-qubit gates as a
Directed Acyclic Graph: gate ``B`` depends on gate ``A`` when they share
a qubit and ``A`` precedes ``B`` in the circuit.  We build the DAG over
*all* gates (single-qubit gates and directives included) so routed
output preserves every operation; the routing front layer then consists
of the *two-qubit* gates whose predecessors have all executed, exactly
as in the paper — single-qubit gates are "always executed locally" and
flush through the frontier automatically.

Three consumers:

- :class:`DagFrontier` drives SABRE's main loop (Algorithm 1): it keeps
  the front layer ``F``, auto-releases non-routable gates, and exposes
  the look-ahead *extended set* ``E`` (§IV-D).
- :meth:`CircuitDag.two_qubit_layers` partitions two-qubit gates into
  independent layers for the Zulehner-style A* baseline.
- Verification walks the DAG to check that a routed circuit is a
  linearisation of the original partial order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError


@dataclass
class DagNode:
    """One gate in the dependency DAG.

    Attributes:
        index: position of the gate in the source circuit (also the node id).
        gate: the gate itself.
        predecessors: node ids this gate depends on (deduplicated).
        successors: node ids depending on this gate (deduplicated).
    """

    index: int
    gate: Gate
    predecessors: List[int] = field(default_factory=list)
    successors: List[int] = field(default_factory=list)


class CircuitDag:
    """Dependency DAG of a circuit (paper Fig. 4).

    Construction is a single ``O(g)`` pass tracking the last gate seen on
    each wire, as described in §IV-A ("We traverse the entire quantum
    circuit and construct a DAG ... with complexity O(g)").
    """

    def __init__(self, circuit: QuantumCircuit) -> None:
        self.circuit = circuit
        self.nodes: List[DagNode] = []
        last_on_wire: List[Optional[int]] = [None] * circuit.num_qubits
        for index, gate in enumerate(circuit):
            node = DagNode(index, gate)
            preds: Set[int] = set()
            for q in gate.qubits:
                prev = last_on_wire[q]
                if prev is not None:
                    preds.add(prev)
                last_on_wire[q] = index
            node.predecessors = sorted(preds)
            for p in node.predecessors:
                self.nodes[p].successors.append(index)
            self.nodes.append(node)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def indegree(self, index: int) -> int:
        return len(self.nodes[index].predecessors)

    def successors(self, index: int) -> List[int]:
        return self.nodes[index].successors

    def predecessors(self, index: int) -> List[int]:
        return self.nodes[index].predecessors

    def roots(self) -> List[int]:
        """Node ids with no dependencies (indegree zero)."""
        return [n.index for n in self.nodes if not n.predecessors]

    def initial_front_layer(self) -> List[int]:
        """Two-qubit gates executable immediately *in software*.

        This matches the paper's front-layer initialisation: "all
        vertices in the graph with 0 indegree" — restricted to two-qubit
        gates, after virtually executing any leading single-qubit gates.
        """
        frontier = DagFrontier(self)
        frontier.drain_nonrouting()
        return sorted(frontier.front)

    def two_qubit_layers(self) -> List[List[int]]:
        """Partition two-qubit gates into independent layers (ASAP).

        Layer ``k`` holds gates whose operands are all free at step ``k``
        — the layering used by IBM's mapper and the Zulehner baseline
        (§VII: "divides the quantum circuit into independent layers ...
        each layer only contains non-overlapped operations").
        Single-qubit gates and directives are ignored, as in those works.
        """
        layer_of_wire = [0] * self.circuit.num_qubits
        layers: List[List[int]] = []
        for node in self.nodes:
            gate = node.gate
            if not gate.is_two_qubit:
                continue
            a, b = gate.qubits
            layer = max(layer_of_wire[a], layer_of_wire[b])
            while len(layers) <= layer:
                layers.append([])
            layers[layer].append(node.index)
            layer_of_wire[a] = layer + 1
            layer_of_wire[b] = layer + 1
        return layers

    def is_linearisation(self, order: Sequence[int]) -> bool:
        """True if ``order`` is a valid topological order of all nodes."""
        if sorted(order) != list(range(len(self.nodes))):
            return False
        position = {idx: pos for pos, idx in enumerate(order)}
        return all(
            position[p] < position[node.index]
            for node in self.nodes
            for p in node.predecessors
        )


class DagFrontier:
    """Mutable execution state over a :class:`CircuitDag`.

    Drives the main loop of Algorithm 1.  The frontier tracks, for every
    node, how many predecessors are still unexecuted; ready nodes are
    classified into:

    - ``front``: ready *two-qubit* gates — the paper's ``F``;
    - a queue of ready non-routing operations (single-qubit gates,
      measures, barriers) that the router flushes into the output
      unconditionally via :meth:`drain_nonrouting`.
    """

    def __init__(self, dag: CircuitDag) -> None:
        self.dag = dag
        self._remaining = [len(n.predecessors) for n in dag.nodes]
        self._executed = [False] * len(dag.nodes)
        self.front: Set[int] = set()
        #: Cached ascending view of ``front``; rebuilt lazily after the
        #: front changes, so repeated reads between changes never
        #: re-sort (deterministic tie-break order preserved).
        self._front_sorted: Optional[List[int]] = None
        self._ready_other: deque = deque()
        self.num_executed = 0
        for node in dag.nodes:
            if not node.predecessors:
                self._classify(node.index)

    def _classify(self, index: int) -> None:
        if self.dag.nodes[index].gate.is_two_qubit:
            self.front.add(index)
            self._front_sorted = None
        else:
            self._ready_other.append(index)

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every gate has been executed."""
        return self.num_executed == len(self.dag.nodes)

    def drain_nonrouting(self) -> List[int]:
        """Execute and return all ready non-two-qubit operations.

        These never need SWAPs (single-qubit gates execute locally,
        §IV-A), so the router emits them as soon as they are ready.
        Draining can cascade: executing a 1q gate may release another.
        """
        drained: List[int] = []
        while self._ready_other:
            index = self._ready_other.popleft()
            self._execute(index)
            drained.append(index)
        return drained

    def execute_front_gate(self, index: int) -> None:
        """Execute a two-qubit gate currently in the front layer."""
        if index not in self.front:
            raise CircuitError(f"node {index} is not in the front layer")
        self.front.discard(index)
        self._front_sorted = None
        self._execute(index)

    def _execute(self, index: int) -> None:
        if self._executed[index]:
            raise CircuitError(f"node {index} already executed")
        self._executed[index] = True
        self.num_executed += 1
        for succ in self.dag.nodes[index].successors:
            self._remaining[succ] -= 1
            if self._remaining[succ] == 0:
                self._classify(succ)

    def front_list(self) -> List[int]:
        """The front layer's node ids, ascending — cached between
        front changes.  Callers must not mutate the returned list."""
        if self._front_sorted is None:
            self._front_sorted = sorted(self.front)
        return self._front_sorted

    def front_gates(self) -> List[Tuple[int, Gate]]:
        """The front layer as ``(node id, gate)`` pairs, sorted by id."""
        return [(i, self.dag.nodes[i].gate) for i in self.front_list()]

    def extended_set(self, size: int) -> List[Gate]:
        """The look-ahead set ``E``: closest two-qubit successors of ``F``.

        Walks the future of the DAG in virtual-execution order (a node
        becomes visitable once all its predecessors are virtually
        executed), collecting two-qubit gates until ``size`` are found
        or the circuit ends.  This matches the paper's "closest
        successors of the gates from F" (§IV-D) and the reference
        implementation's behaviour.
        """
        if size <= 0:
            return []
        extended: List[Gate] = []
        virtual_remaining: Dict[int, int] = {}
        vr_get = virtual_remaining.get
        remaining = self._remaining
        nodes = self.dag.nodes
        queue = deque(self.front_list())
        while queue and len(extended) < size:
            index = queue.popleft()
            for succ in nodes[index].successors:
                rem = vr_get(succ)
                if rem is None:
                    rem = remaining[succ]
                rem -= 1
                virtual_remaining[succ] = rem
                if rem == 0:
                    gate = nodes[succ].gate
                    if len(gate.qubits) == 2 and not gate.is_directive:
                        extended.append(gate)
                        if len(extended) >= size:
                            break
                    queue.append(succ)
        return extended
