"""Compile-once flat circuit IR: CSR dependency DAG + resettable frontier.

SABRE's quality comes from repetition — the bidirectional layout search
runs ``num_trials x num_traversals`` routing passes over the *same*
circuit, and the trial engine multiplies that by best-of-K seeds.  The
object-graph :class:`~repro.circuits.dag.CircuitDag` (one ``DagNode``
with two Python lists per gate) is the right representation for
verification and the A* baseline, but re-lowering into it on every
routing pass is pure rework, and walking its node objects keeps
attribute chasing in the router's innermost loops.

This module is the amortised alternative:

- :class:`FlatDag` — an **immutable** lowering of a circuit: CSR
  successor/predecessor adjacency (int-array offsets + indices — the
  canonical compact form, cheap to pickle to pool workers), per-node
  qubit operands, two-qubit flags, and the gate handles needed to emit
  output.  Alongside the CSR arrays it precomputes the iteration views
  CPython walks fastest (per-node successor tuples, plain int lists) —
  paying that derivation **once per (circuit, direction)** is the
  point: every trial, traversal, thread, and worker shares the result
  read-only.  The engine cache (:mod:`repro.engine.cache`) memoises
  instances by circuit fingerprint.
- :class:`FrontierState` — the mutable per-traversal execution state
  over a :class:`FlatDag`.  It allocates all of its working buffers
  once and :meth:`~FrontierState.reset` refills them in ``O(n)`` by
  slice assignment from the dag's shared zero sources, so a layout
  search reuses two frontier objects (forward + reverse) for its
  entire trial sweep instead of reallocating per pass.  The look-ahead
  extended set walks preallocated int lists (epoch-stamped visited
  marks, a flat ring queue) instead of building a dict and deque per
  call, and the sorted front layer is maintained incrementally instead
  of re-sorted.

Equivalence with the object DAG is a test invariant: structure matches
:class:`~repro.circuits.dag.CircuitDag` node-for-node, and the frontier
replays :class:`~repro.circuits.dag.DagFrontier` decision-for-decision
(same front layers, same extended-set order), which is what keeps
routed circuits byte-identical to the per-run-lowering code path.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, insort
from typing import List, Set

import numpy as np

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError

#: Below this many gates a ready batch is executed with the scalar
#: per-gate loop even when numpy is in play — same results either way
#: (the bulk path reproduces the scalar decrement/release order), the
#: threshold only dodges array-dispatch overhead on narrow fronts.
_BULK_MIN_GATES = 8


def _intc_view(buf: array) -> np.ndarray:
    """Zero-copy numpy view of an ``array('i')`` (empty-safe)."""
    if not len(buf):
        return np.zeros(0, dtype=np.intc)
    return np.frombuffer(buf, dtype=np.intc)


class FlatDag:
    """Immutable CSR lowering of a circuit's dependency DAG.

    Node ``i`` is gate ``i`` of the source circuit.  Edges follow the
    same rule as :class:`~repro.circuits.dag.CircuitDag`: gate ``B``
    depends on gate ``A`` when they share a qubit and ``A`` precedes
    ``B`` (deduplicated).  Successor and predecessor index lists are
    stored ascending, matching the object DAG's construction order.

    Treat instances as frozen: every consumer (router, layout search,
    engine cache, pool workers) shares one object per circuit, so
    mutating any buffer would corrupt all of them.

    Attributes:
        num_nodes: gate count (including directives).
        num_qubits / num_clbits / name: copied from the source circuit
            so the router never needs the circuit object itself.
        gates: the source gate tuple — handles for output emission.
        pairs: per-node operand tuples (``gates[i].qubits``, shared, not
            copied) — what the scorer's ``set_front`` consumes.
        qubit_a / qubit_b: per-node int operands for two-qubit gates
            (``-1`` elsewhere) — the router's executability test reads
            these instead of touching gate objects.
        two_qubit: per-node routability flag (1 for two-qubit unitaries).
        indegree: per-node predecessor count (the frontier's reset fill).
        succ_off / succ: CSR successors — node ``i``'s successors are
            ``succ[succ_off[i]:succ_off[i + 1]]``, ascending.
        pred_off / pred: CSR predecessors, same layout.
        succs: the successor slices rebound as per-node tuples — same
            data as the CSR pair, prebuilt because iterating a small
            tuple is what CPython does fastest in the frontier's
            release loop.
        roots: nodes with indegree zero, ascending.
        routable: False when some gate has >2 qubits and is not a
            directive (the router rejects such IRs with a clear error).
    """

    __slots__ = (
        "num_nodes",
        "num_qubits",
        "num_clbits",
        "name",
        "gates",
        "pairs",
        "qubit_a",
        "qubit_b",
        "two_qubit",
        "indegree",
        "succ_off",
        "succ",
        "pred_off",
        "pred",
        "succs",
        "roots",
        "routable",
        "qubit_a_np",
        "qubit_b_np",
        "succ_off_np",
        "succ_np",
        "_indegree_arr",
        "_zero_bytes",
        "_zero_ints",
    )

    def __init__(self, circuit: QuantumCircuit) -> None:
        """Lower ``circuit`` in one ``O(g)`` pass (last-gate-per-wire).

        The expensive call — do it once and share the result.  The
        engine cache (:func:`repro.engine.cache.get_flat_dag`) memoises
        this by circuit fingerprint.
        """
        gates = circuit.gates
        num_nodes = len(gates)
        self.num_nodes = num_nodes
        self.num_qubits = circuit.num_qubits
        self.num_clbits = circuit.num_clbits
        self.name = circuit.name
        self.gates = gates
        self.pairs = tuple(gate.qubits for gate in gates)

        last_on_wire = [-1] * circuit.num_qubits
        pred_lists: List[List[int]] = []
        succ_lists: List[List[int]] = [[] for _ in range(num_nodes)]
        indegree = [0] * num_nodes
        qubit_a = [-1] * num_nodes
        qubit_b = [-1] * num_nodes
        two_qubit = bytearray(num_nodes)
        routable = True
        for index, gate in enumerate(gates):
            preds: Set[int] = set()
            for q in gate.qubits:
                prev = last_on_wire[q]
                if prev >= 0:
                    preds.add(prev)
                last_on_wire[q] = index
            ordered = sorted(preds)
            pred_lists.append(ordered)
            indegree[index] = len(ordered)
            for p in ordered:
                # Node ids arrive ascending, so every successor list
                # comes out ascending — the same order CircuitDag
                # appends successors in.
                succ_lists[p].append(index)
            if gate.is_two_qubit:
                two_qubit[index] = 1
                qubit_a[index], qubit_b[index] = gate.qubits
            elif gate.num_qubits > 2 and not gate.is_directive:
                routable = False

        self.qubit_a = qubit_a
        self.qubit_b = qubit_b
        self.two_qubit = bytes(two_qubit)
        self.indegree = indegree
        self.routable = routable
        self.succs = tuple(tuple(s) for s in succ_lists)
        self.roots = tuple(
            index for index in range(num_nodes) if indegree[index] == 0
        )

        # Canonical CSR buffers: one contiguous int array per relation,
        # offsets first.  These are what pickles to pool workers and
        # what structural tests compare against the object DAG.
        succ_off = array("i", [0]) * (num_nodes + 1)
        total = 0
        for index in range(num_nodes):
            succ_off[index] = total
            total += len(succ_lists[index])
        succ_off[num_nodes] = total
        self.succ_off = succ_off
        self.succ = array("i", [s for lst in succ_lists for s in lst])
        pred_off = array("i", [0]) * (num_nodes + 1)
        total = 0
        for index in range(num_nodes):
            pred_off[index] = total
            total += len(pred_lists[index])
        pred_off[num_nodes] = total
        self.pred_off = pred_off
        self.pred = array("i", [p for lst in pred_lists for p in lst])

        # Numpy mirrors for the router's batched paths: per-node operand
        # arrays drive the vectorised ready scan, the CSR successor
        # views (``succ_np`` zero-copy over the array('i') storage,
        # offsets widened to intp for index arithmetic) drive the bulk
        # pred-count decrement.  Shared read-only like everything else
        # on a FlatDag.
        self.qubit_a_np = np.array(qubit_a, dtype=np.intp)
        self.qubit_b_np = np.array(qubit_b, dtype=np.intp)
        self.succ_off_np = _intc_view(self.succ_off).astype(np.intp)
        self.succ_np = _intc_view(self.succ)
        self._indegree_arr = array("i", indegree)

        # Shared zero-fill sources for O(n) frontier resets: slice
        # assignment from these never allocates per reset.
        self._zero_bytes = bytes(num_nodes)
        self._zero_ints = [0] * num_nodes

    @classmethod
    def from_circuit(cls, circuit: QuantumCircuit) -> "FlatDag":
        """Alias constructor (reads better at call sites)."""
        return cls(circuit)

    # ------------------------------------------------------------------
    # Queries (test/verification conveniences; not hot paths)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.num_nodes

    def successors(self, index: int) -> List[int]:
        return self.succ[self.succ_off[index] : self.succ_off[index + 1]].tolist()

    def predecessors(self, index: int) -> List[int]:
        return self.pred[self.pred_off[index] : self.pred_off[index + 1]].tolist()

    def __repr__(self) -> str:
        return (
            f"FlatDag(name={self.name!r}, num_nodes={self.num_nodes}, "
            f"num_qubits={self.num_qubits})"
        )


class FrontierState:
    """Resettable execution state over a shared :class:`FlatDag`.

    Behaviourally identical to :class:`~repro.circuits.dag.DagFrontier`
    (the equivalence suite replays random traces on both), with three
    structural differences that matter at scale:

    - **Reset, don't reallocate.**  All buffers are sized once in the
      constructor; :meth:`reset` refills them by slice assignment from
      the dag's shared zero sources, so a trial sweep reuses one
      frontier per direction.
    - **The sorted front is cached.**  ``front_list()`` returns a list
      kept sorted incrementally (``insort`` on release, ``bisect``
      deletion on execute), so the router's per-iteration ready scan
      and per-refresh tie-break ordering never re-sort — while
      preserving exactly the ascending-node-id order the object path
      produced with ``sorted(front)``.
    - **The extended set walks flat int lists.**  Epoch-stamped visited
      marks and a preallocated ring queue replace the per-call dict and
      deque; the traversal order (FIFO from the sorted front, ascending
      successor order) matches ``DagFrontier.extended_set`` exactly, so
      look-ahead scores sum in the same float order.
    """

    __slots__ = (
        "dag",
        "remaining",
        "_remaining_np",
        "executed",
        "front",
        "_front_sorted",
        "_ready_other",
        "_ro_head",
        "num_executed",
        "_virt",
        "_virt_epoch",
        "_epoch",
        "_queue",
        "track_front_log",
        "front_log",
    )

    def __init__(self, dag: FlatDag) -> None:
        self.dag = dag
        n = dag.num_nodes
        # ``remaining`` lives in an array('i') so the bulk execute path
        # can decrement through ``_remaining_np`` — a zero-copy numpy
        # view of the *same* memory (no sync step; scalar and bulk
        # writes see each other immediately).
        self.remaining = array("i", dag.indegree)
        self._remaining_np = _intc_view(self.remaining)
        self.executed = bytearray(n)
        self.front: Set[int] = set()
        self._front_sorted: List[int] = []
        self._ready_other: List[int] = []
        self._ro_head = 0
        self.num_executed = 0
        self._virt: List[int] = [0] * n
        self._virt_epoch: List[int] = [0] * n
        self._epoch = 0
        self._queue: List[int] = [0] * n
        # Opt-in journal of front-layer insertions (vector router's
        # incremental ready-check; see :meth:`drain_front_log`).
        self.track_front_log = False
        self.front_log: List[int] = []
        self._seed_roots()

    def reset(self) -> None:
        """Return to the initial (nothing executed) state in ``O(n)``.

        Refills the existing buffers — no reallocation, which is the
        point: ``route -> reset -> route`` must behave exactly like two
        fresh frontiers (a property test pins this down).
        """
        dag = self.dag
        self.remaining[:] = dag._indegree_arr
        self.executed[:] = dag._zero_bytes
        self.front.clear()
        self._front_sorted.clear()
        self._ready_other.clear()
        self._ro_head = 0
        self.num_executed = 0
        self._epoch = 0
        self._virt_epoch[:] = dag._zero_ints
        self.front_log.clear()
        self._seed_roots()

    def _seed_roots(self) -> None:
        for index in self.dag.roots:
            self._classify(index)

    def _classify(self, index: int) -> None:
        if self.dag.two_qubit[index]:
            self.front.add(index)
            insort(self._front_sorted, index)
            if self.track_front_log:
                self.front_log.append(index)
        else:
            self._ready_other.append(index)

    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when every gate has been executed."""
        return self.num_executed == self.dag.num_nodes

    def drain_front_log(self) -> List[int]:
        """Return (and forget) front insertions since the last drain.

        Only populated while ``track_front_log`` is set.  The vector
        router uses this for an O(1) per-step ready-check: a stuck
        front gate can only become executable if one of its qubits was
        just SWAPped or if it just entered the front — so scanning the
        whole front every iteration is redundant.
        """
        log = self.front_log
        if not log:
            return log
        drained = log[:]
        log.clear()
        return drained

    def front_list(self) -> List[int]:
        """The front layer, ascending — cached, never re-sorted.

        Callers iterate only; executing a front gate mutates the list
        in place (so don't hold it across executions).
        """
        return self._front_sorted

    def drain_nonrouting(self) -> List[int]:
        """Execute and return all ready non-two-qubit operations.

        Cascades exactly like the object frontier: executing a 1q gate
        may release another, which is drained in the same call.
        """
        ready = self._ready_other
        if self._ro_head >= len(ready):
            return []
        drained: List[int] = []
        while self._ro_head < len(ready):
            index = ready[self._ro_head]
            self._ro_head += 1
            self._execute(index)
            drained.append(index)
        ready.clear()
        self._ro_head = 0
        return drained

    def execute_front_gate(self, index: int) -> None:
        """Execute a two-qubit gate currently in the front layer."""
        front = self.front
        if index not in front:
            raise CircuitError(f"node {index} is not in the front layer")
        front.remove(index)
        fs = self._front_sorted
        del fs[bisect_left(fs, index)]
        self._execute(index)

    def execute_front_batch(self, indices: List[int]) -> None:
        """Execute several front-layer gates (router inner loop).

        ``indices`` must be ascending and all currently in the front —
        exactly what the router's ready scan produces (it filters
        :meth:`front_list`), so the per-gate membership bookkeeping of
        :meth:`execute_front_gate` is hoisted out of the hot path.

        Wide batches take the bulk numpy path: one gather over the CSR
        successor arrays, one ``np.subtract.at`` pred-count decrement,
        and released nodes classified in the exact order the scalar
        loop would have (a node releases when its count hits zero, i.e.
        at its *last* occurrence in the batch's successor stream).
        """
        front = self.front
        fs = self._front_sorted
        if len(indices) >= _BULK_MIN_GATES:
            executed = self.executed
            for index in indices:
                front.remove(index)
                if executed[index]:
                    raise CircuitError(f"node {index} already executed")
                executed[index] = 1
            if len(indices) == len(fs):
                fs.clear()
            else:
                dropped = set(indices)
                fs[:] = [x for x in fs if x not in dropped]
            self.num_executed += len(indices)
            dag = self.dag
            off = dag.succ_off_np
            idx = np.fromiter(indices, dtype=np.intp, count=len(indices))
            starts = off[idx]
            counts = off[idx + 1] - starts
            total = int(counts.sum())
            if not total:
                return
            # CSR expansion of the batch's successor stream (gate order,
            # ascending successors within a gate — the scalar order).
            reps = np.repeat(np.arange(len(idx)), counts)
            shift = np.cumsum(counts) - counts
            pos = np.arange(total) - shift[reps] + starts[reps]
            sucs = dag.succ_np[pos]
            rem = self._remaining_np
            np.subtract.at(rem, sucs, 1)
            rel = sucs[rem[sucs] == 0]
            if len(rel):
                # Dedup to last occurrence, keeping stream order: the
                # scalar loop classifies a node at the decrement that
                # zeroes its count, which is its last occurrence.
                uniq, first_in_rev = np.unique(rel[::-1], return_index=True)
                classify = self._classify
                for s in uniq[np.argsort(-first_in_rev)].tolist():
                    classify(s)
            return
        execute = self._execute
        for index in indices:
            front.remove(index)
            del fs[bisect_left(fs, index)]
            execute(index)

    def _execute(self, index: int) -> None:
        if self.executed[index]:
            raise CircuitError(f"node {index} already executed")
        self.executed[index] = 1
        self.num_executed += 1
        remaining = self.remaining
        for s in self.dag.succs[index]:
            r = remaining[s] - 1
            remaining[s] = r
            if r == 0:
                self._classify(s)

    def extended_nodes(self, size: int) -> List[int]:
        """Node ids of the look-ahead set ``E``, in discovery order.

        Same virtual-execution walk as ``DagFrontier.extended_set`` —
        FIFO from the ascending front, releasing a node once all its
        predecessors are virtually executed — but over preallocated int
        lists: ``_virt`` holds virtual remaining-counts, stamped valid
        by ``_virt_epoch`` (bumping the epoch is the O(1) "clear"), and
        the queue is a flat list with head/tail cursors.
        """
        if size <= 0:
            return []
        out: List[int] = []
        epoch = self._epoch + 1
        self._epoch = epoch
        virt = self._virt
        stamps = self._virt_epoch
        remaining = self.remaining
        dag = self.dag
        succs = dag.succs
        two_qubit = dag.two_qubit
        queue = self._queue
        tail = 0
        for index in self._front_sorted:
            queue[tail] = index
            tail += 1
        head = 0
        while head < tail and len(out) < size:
            index = queue[head]
            head += 1
            for s in succs[index]:
                if stamps[s] == epoch:
                    r = virt[s] - 1
                else:
                    r = remaining[s] - 1
                    stamps[s] = epoch
                virt[s] = r
                if r == 0:
                    if two_qubit[s]:
                        out.append(s)
                        if len(out) >= size:
                            break
                    queue[tail] = s
                    tail += 1
        return out
