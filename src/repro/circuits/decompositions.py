"""Standard gate decompositions (paper Fig. 1 and Fig. 3a).

The paper's cost model assumes the {single-qubit, CNOT} basis of IBM's
devices.  Two decompositions are load-bearing:

- **SWAP -> 3 CNOTs** (Fig. 3a): every SWAP the mapper inserts costs
  three CNOTs, which is why the paper reports ``g_add = 3 x #SWAPs``
  additional gates on symmetric-coupling devices.
- **Toffoli -> {1q, CNOT}** (Fig. 1): the canonical 15-gate network with
  6 CNOTs, used by our RevLib-like benchmark generators to expand
  reversible-arithmetic blocks the same way the paper's benchmark suite
  was prepared.

:func:`decompose_to_cx_basis` rewrites a whole circuit into the
{single-qubit, CNOT} basis so any supported input can be routed.
"""

from __future__ import annotations

import math
from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import CircuitError


def needs_cx_decomposition(circuit: QuantumCircuit) -> bool:
    """True when the circuit has gates the router cannot place directly
    (3+ qubit gates) or SWAPs that would be mistaken for routing SWAPs.

    The answer is cached on the circuit instance, keyed by its mutation
    counter: the scan runs once per circuit content, not once per
    compile call — a best-of-K trial sweep previously rescanned the
    full gate list on every trial.
    """
    cached = circuit.__dict__.get("_needs_cx_decomposition")
    if cached is not None and cached[0] == circuit._mutations:
        return cached[1]
    value = any(
        (gate.num_qubits > 2 and not gate.is_directive) or gate.name == "swap"
        for gate in circuit
    )
    circuit.__dict__["_needs_cx_decomposition"] = (circuit._mutations, value)
    return value


def swap_decomposition(a: int, b: int) -> List[Gate]:
    """SWAP(a, b) as three alternating CNOTs (paper Fig. 3a)."""
    return [Gate("cx", (a, b)), Gate("cx", (b, a)), Gate("cx", (a, b))]


def toffoli_decomposition(c1: int, c2: int, target: int) -> List[Gate]:
    """Toffoli (CCX) as the canonical 15-gate {1q, CNOT} network (Fig. 1).

    Six CNOTs, seven T/T-dagger gates, and two Hadamards — the textbook
    decomposition (Nielsen & Chuang) the paper reproduces in Figure 1.
    """
    return [
        Gate("h", (target,)),
        Gate("cx", (c2, target)),
        Gate("tdg", (target,)),
        Gate("cx", (c1, target)),
        Gate("t", (target,)),
        Gate("cx", (c2, target)),
        Gate("tdg", (target,)),
        Gate("cx", (c1, target)),
        Gate("t", (c2,)),
        Gate("t", (target,)),
        Gate("h", (target,)),
        Gate("cx", (c1, c2)),
        Gate("t", (c1,)),
        Gate("tdg", (c2,)),
        Gate("cx", (c1, c2)),
    ]


def cz_decomposition(a: int, b: int) -> List[Gate]:
    """CZ as H-CX-H on the target (CZ is symmetric; ``b`` is target)."""
    return [Gate("h", (b,)), Gate("cx", (a, b)), Gate("h", (b,))]


def cu1_decomposition(lam: float, control: int, target: int) -> List[Gate]:
    """Controlled-phase as 2 CNOTs + 3 U1 rotations.

    This is how QFT controlled-phase gates lower to the IBM basis; the
    paper's qft_* benchmarks are exactly such expansions.
    """
    return [
        Gate("u1", (control,), (lam / 2,)),
        Gate("cx", (control, target)),
        Gate("u1", (target,), (-lam / 2,)),
        Gate("cx", (control, target)),
        Gate("u1", (target,), (lam / 2,)),
    ]


def rzz_decomposition(theta: float, a: int, b: int) -> List[Gate]:
    """ZZ-interaction exp(-i theta Z.Z / 2) as CX - RZ - CX.

    The building block of trotterized Ising evolution (the paper's
    ising_model_* benchmarks).
    """
    return [
        Gate("cx", (a, b)),
        Gate("rz", (b,), (theta,)),
        Gate("cx", (a, b)),
    ]


def cswap_decomposition(control: int, a: int, b: int) -> List[Gate]:
    """Fredkin gate via CX + Toffoli, then Toffoli lowered to the basis."""
    gates = [Gate("cx", (b, a))]
    gates.extend(toffoli_decomposition(control, a, b))
    gates.append(Gate("cx", (b, a)))
    return gates


_DECOMPOSERS = {
    "swap": lambda g: swap_decomposition(*g.qubits),
    "ccx": lambda g: toffoli_decomposition(*g.qubits),
    "cz": lambda g: cz_decomposition(*g.qubits),
    "cy": lambda g: [
        Gate("sdg", (g.qubits[1],)),
        Gate("cx", g.qubits),
        Gate("s", (g.qubits[1],)),
    ],
    "ch": lambda g: [
        Gate("ry", (g.qubits[1],), (-math.pi / 4,)),
        Gate("cx", g.qubits),
        Gate("ry", (g.qubits[1],), (math.pi / 4,)),
    ],
    "cu1": lambda g: cu1_decomposition(g.params[0], *g.qubits),
    "cp": lambda g: cu1_decomposition(g.params[0], *g.qubits),
    "crz": lambda g: [
        Gate("rz", (g.qubits[1],), (g.params[0] / 2,)),
        Gate("cx", g.qubits),
        Gate("rz", (g.qubits[1],), (-g.params[0] / 2,)),
        Gate("cx", g.qubits),
    ],
    "rzz": lambda g: rzz_decomposition(g.params[0], *g.qubits),
    "cswap": lambda g: cswap_decomposition(*g.qubits),
}

#: Gates that are already in the routable basis (1q unitaries + CNOT).
_BASIS_OK = {"cx"}


def decompose_to_cx_basis(circuit: QuantumCircuit) -> QuantumCircuit:
    """Rewrite a circuit into the {single-qubit, CNOT} basis.

    Single-qubit gates and directives pass through; every multi-qubit
    gate other than ``cx`` is expanded via the decompositions above.
    The result is what the paper's mapper (and ours) consumes.
    """
    out = QuantumCircuit(circuit.num_qubits, circuit.name, circuit.num_clbits)
    for gate in circuit:
        if gate.num_qubits <= 1 or gate.is_directive or gate.name in _BASIS_OK:
            out.append(gate)
        elif gate.name in _DECOMPOSERS:
            out.extend(_DECOMPOSERS[gate.name](gate))
        else:
            raise CircuitError(
                f"no {{1q, CNOT}} decomposition registered for {gate.name!r}"
            )
    return out
