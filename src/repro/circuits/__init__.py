"""Quantum circuit intermediate representation.

This package is the circuit substrate the SABRE mapper operates on:

- :mod:`repro.circuits.gates` — immutable gate objects and the standard
  gate library (the {single-qubit, CNOT} basis used throughout the paper).
- :mod:`repro.circuits.circuit` — the :class:`QuantumCircuit` container.
- :mod:`repro.circuits.dag` — gate dependency DAG, front layer, and layer
  partitioning (paper Fig. 4).
- :mod:`repro.circuits.flatdag` — the compile-once flat CSR lowering of
  that DAG plus the resettable routing frontier (the router's hot-path
  IR, built once per circuit and shared across all trials/traversals).
- :mod:`repro.circuits.depth` — ASAP scheduling and circuit depth.
- :mod:`repro.circuits.decompositions` — Toffoli and SWAP decompositions
  (paper Fig. 1 and Fig. 3a) and basis rewriting.
- :mod:`repro.circuits.reverse` — circuit reversal used by the reverse
  traversal technique (paper Fig. 5).
- :mod:`repro.circuits.random_circuits` — seeded random circuit
  generators used by tests and benchmarks.
"""

from repro.circuits.gates import Gate, GATE_SPECS, GateSpec
from repro.circuits.circuit import QuantumCircuit
from repro.circuits.dag import CircuitDag, DagNode
from repro.circuits.flatdag import FlatDag, FrontierState
from repro.circuits.depth import circuit_depth, schedule_asap
from repro.circuits.reverse import reversed_circuit, inverted_circuit
from repro.circuits.decompositions import (
    toffoli_decomposition,
    swap_decomposition,
    decompose_to_cx_basis,
)
from repro.circuits.random_circuits import random_circuit, random_cx_circuit
from repro.circuits.transforms import (
    cancel_adjacent_inverses,
    merge_rotations,
    optimize_circuit,
)
from repro.circuits.visualization import draw_circuit, draw_coupling

__all__ = [
    "cancel_adjacent_inverses",
    "merge_rotations",
    "optimize_circuit",
    "draw_circuit",
    "draw_coupling",
    "Gate",
    "GateSpec",
    "GATE_SPECS",
    "QuantumCircuit",
    "CircuitDag",
    "DagNode",
    "FlatDag",
    "FrontierState",
    "circuit_depth",
    "schedule_asap",
    "reversed_circuit",
    "inverted_circuit",
    "toffoli_decomposition",
    "swap_decomposition",
    "decompose_to_cx_basis",
    "random_circuit",
    "random_cx_circuit",
]
