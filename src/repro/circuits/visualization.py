"""ASCII circuit rendering (the paper's circuit diagrams, in text).

``draw_circuit`` lays gates out in ASAP columns, one row per qubit —
the textual analogue of paper Figs. 1/3/4.  Two-qubit gates draw a
control dot and target with a vertical connector; barriers draw a
column of ``|``.  Wide circuits can be windowed with ``max_columns``.

Example output::

    q0: ──H────●─────────
               │
    q1: ───────X────●────
                    │
    q2: ──X─────────X────
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.depth import schedule_asap
from repro.circuits.gates import Gate

#: Gate-name display labels (default: upper-cased name).
_LABELS = {
    "cx": ("●", "X"),
    "cz": ("●", "Z"),
    "cy": ("●", "Y"),
    "ch": ("●", "H"),
    "swap": ("x", "x"),
    "measure": ("M", ""),
}


def _gate_label(gate: Gate) -> str:
    if gate.params:
        return f"{gate.name.upper()}({gate.params[0]:.3g})"
    return gate.name.upper()


def draw_circuit(
    circuit: QuantumCircuit,
    max_columns: int = 0,
    qubit_labels: Sequence[str] = (),
) -> str:
    """Render ``circuit`` as ASCII art.

    Args:
        circuit: circuit to draw.
        max_columns: truncate after this many time-step columns
            (0 = no limit); a ``...`` marker shows truncation.
        qubit_labels: custom wire labels (default ``q0, q1, ...``).
    """
    gates = list(circuit.gates)
    if not gates:
        labels = qubit_labels or [f"q{i}" for i in range(circuit.num_qubits)]
        return "\n".join(f"{label}: ──" for label in labels)
    slots = schedule_asap(gates, circuit.num_qubits)
    num_slots = max(slots) + 1
    truncated = bool(max_columns) and num_slots > max_columns
    shown_slots = min(num_slots, max_columns) if max_columns else num_slots

    # Bucket gates per column.
    columns: List[List[Gate]] = [[] for _ in range(shown_slots)]
    for gate, slot in zip(gates, slots):
        if slot < shown_slots:
            columns[slot].append(gate)

    labels = list(qubit_labels) or [
        f"q{i}" for i in range(circuit.num_qubits)
    ]
    label_width = max(len(s) for s in labels)

    # Build cell text per (qubit, column); empty = wire.
    cell_rows: List[List[str]] = [
        ["" for _ in range(shown_slots)] for _ in range(circuit.num_qubits)
    ]
    connector: List[List[bool]] = [
        [False] * shown_slots for _ in range(circuit.num_qubits)
    ]
    for col, col_gates in enumerate(columns):
        for gate in col_gates:
            if gate.name == "barrier":
                for q in gate.qubits:
                    cell_rows[q][col] = "|"
            elif gate.num_qubits == 1:
                cell_rows[gate.qubits[0]][col] = (
                    _LABELS.get(gate.name, (None,))[0]
                    if gate.name in _LABELS
                    else _gate_label(gate)
                )
            else:
                marks = _LABELS.get(gate.name)
                if marks is None:
                    base = _gate_label(gate)
                    marks = tuple(
                        f"{base}:{i}" for i in range(gate.num_qubits)
                    )
                for q, mark in zip(gate.qubits, marks):
                    cell_rows[q][col] = mark
                lo, hi = min(gate.qubits), max(gate.qubits)
                for wire in range(lo + 1, hi):
                    connector[wire][col] = True

    widths = [
        max(
            [len(cell_rows[q][col]) for q in range(circuit.num_qubits)]
            + [1]
        )
        for col in range(shown_slots)
    ]

    lines: List[str] = []
    for q in range(circuit.num_qubits):
        parts = [f"{labels[q]:<{label_width}}: "]
        for col in range(shown_slots):
            cell = cell_rows[q][col]
            width = widths[col]
            if cell:
                parts.append(f"──{cell.center(width, '─')}──")
            elif connector[q][col]:
                parts.append(f"──{'│'.center(width, '─')}──")
            else:
                parts.append("─" * (width + 4))
        if truncated:
            parts.append(" ...")
        lines.append("".join(parts))
        # Inter-row connector line for vertical links.
        if q < circuit.num_qubits - 1:
            link_parts = [" " * (label_width + 2)]
            for col in range(shown_slots):
                width = widths[col]
                spans = any(
                    g.num_qubits >= 2
                    and not g.is_directive
                    and min(g.qubits) <= q < max(g.qubits)
                    for g in columns[col]
                )
                mark = "│" if spans else " "
                link_parts.append(f"  {mark.center(width)}  ")
            lines.append("".join(link_parts).rstrip())
    return "\n".join(line.rstrip() for line in lines)


def draw_coupling(coupling) -> str:
    """Adjacency-list rendering of a coupling graph (paper Fig. 2 in
    text form): one line per qubit with its coupled neighbours."""
    lines = [
        f"{coupling.name}: {coupling.num_qubits} qubits, "
        f"{coupling.num_edges} couplings"
    ]
    for q in range(coupling.num_qubits):
        neighbors = ", ".join(f"Q{n}" for n in coupling.neighbors(q))
        lines.append(f"  Q{q:<3d} -- {neighbors}")
    return "\n".join(lines)


def layout_diagram(layout, num_logical: int) -> str:
    """One-line-per-qubit view of a mapping: ``q3 -> Q17``."""
    lines = []
    for q in range(num_logical):
        lines.append(f"  q{q} -> Q{layout.physical(q)}")
    return "\n".join(lines)
