"""Tokenizer for the OpenQASM 2.0 subset.

Regex-driven single-pass lexer with line/column tracking for error
messages.  Comments (``// ...``) and whitespace are skipped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from repro.exceptions import QasmError

#: Token kinds produced by :func:`tokenize`.
KEYWORDS = {
    "OPENQASM",
    "include",
    "qreg",
    "creg",
    "gate",
    "opaque",
    "measure",
    "barrier",
    "reset",
    "if",
    "pi",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<COMMENT>//[^\n]*)
  | (?P<REAL>(\d+\.\d*|\.\d+)([eE][+-]?\d+)?|\d+[eE][+-]?\d+)
  | (?P<INT>\d+)
  | (?P<ID>[a-zA-Z_][a-zA-Z0-9_]*)
  | (?P<STRING>"[^"\n]*")
  | (?P<ARROW>->)
  | (?P<EQ>==)
  | (?P<SYMBOL>[;,()\[\]{}+\-*/^])
  | (?P<NEWLINE>\n)
  | (?P<SKIP>[ \t\r]+)
  | (?P<BAD>.)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """One lexical token with source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize a QASM program; raises :class:`QasmError` on bad input."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    for match in _TOKEN_RE.finditer(source):
        kind = match.lastgroup
        value = match.group()
        column = match.start() - line_start + 1
        if kind == "NEWLINE":
            line += 1
            line_start = match.end()
            continue
        if kind in ("SKIP", "COMMENT"):
            continue
        if kind == "BAD":
            raise QasmError(f"unexpected character {value!r}", line, column)
        if kind == "ID" and value in KEYWORDS:
            kind = "KEYWORD"
        tokens.append(Token(kind, value, line, column))
    tokens.append(Token("EOF", "", line, 1))
    return tokens
