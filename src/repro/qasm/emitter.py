"""OpenQASM 2.0 emitter.

Serialises a :class:`~repro.circuits.circuit.QuantumCircuit` back to
QASM text.  Together with the parser this gives the round-trip property
``parse(emit(c)) == c``, so routed circuits can be exported for any
QASM-consuming toolchain.
"""

from __future__ import annotations

from typing import List

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import Gate
from repro.exceptions import QasmError


def _format_param(value: float) -> str:
    """Render a parameter with enough digits to round-trip exactly."""
    return repr(float(value))


def _gate_line(gate: Gate) -> str:
    if gate.name == "measure":
        (qubit,) = gate.qubits
        clbit = gate.clbit if gate.clbit is not None else qubit
        return f"measure q[{qubit}] -> c[{clbit}];"
    if gate.name == "barrier":
        args = ", ".join(f"q[{q}]" for q in gate.qubits)
        return f"barrier {args};"
    args = ", ".join(f"q[{q}]" for q in gate.qubits)
    if gate.params:
        params = ", ".join(_format_param(p) for p in gate.params)
        return f"{gate.name}({params}) {args};"
    return f"{gate.name} {args};"


def emit_qasm(circuit: QuantumCircuit) -> str:
    """Serialise ``circuit`` as an OpenQASM 2.0 program."""
    if circuit.num_qubits < 1:
        raise QasmError("cannot emit a circuit with zero qubits")
    lines: List[str] = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg q[{circuit.num_qubits}];",
        f"creg c[{max(circuit.num_clbits, 1)}];",
    ]
    lines.extend(_gate_line(gate) for gate in circuit)
    return "\n".join(lines) + "\n"


def write_qasm_file(circuit: QuantumCircuit, path: str) -> None:
    """Write :func:`emit_qasm` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(emit_qasm(circuit))
