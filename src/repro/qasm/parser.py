"""Recursive-descent parser for the OpenQASM 2.0 subset.

Produces a :class:`~repro.circuits.circuit.QuantumCircuit`.  Multiple
``qreg`` declarations are flattened into one wire space in declaration
order (standard practice for mapping work — the device only sees wires).
User-defined ``gate`` macros are expanded recursively at call sites, so
the output circuit contains only library gates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.gates import GATE_SPECS, Gate
from repro.exceptions import QasmError
from repro.qasm.lexer import Token, tokenize

# ----------------------------------------------------------------------
# Expression mini-AST (delayed evaluation inside gate bodies)
# ----------------------------------------------------------------------

Expr = Union[float, str, Tuple]  # number | parameter name | (op, ...)

_FUNCTIONS = {
    "sin": math.sin,
    "cos": math.cos,
    "tan": math.tan,
    "exp": math.exp,
    "ln": math.log,
    "sqrt": math.sqrt,
}


def _evaluate(expr: Expr, env: Dict[str, float]) -> float:
    """Evaluate an expression AST under a parameter environment."""
    if isinstance(expr, (int, float)):
        return float(expr)
    if isinstance(expr, str):
        if expr in env:
            return env[expr]
        raise QasmError(f"unbound parameter {expr!r}")
    op = expr[0]
    if op == "neg":
        return -_evaluate(expr[1], env)
    if op == "call":
        return _FUNCTIONS[expr[1]](_evaluate(expr[2], env))
    left = _evaluate(expr[1], env)
    right = _evaluate(expr[2], env)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    if op == "^":
        return left**right
    raise QasmError(f"unknown operator {op!r}")


# ----------------------------------------------------------------------
# Gate macro table
# ----------------------------------------------------------------------


@dataclass
class _GateDef:
    """A user-defined (or builtin-macro) gate body."""

    name: str
    params: List[str]
    qubits: List[str]
    body: List[Tuple[str, List[Expr], List[Tuple[str, Optional[int]]]]]


def _builtin_macros() -> Dict[str, _GateDef]:
    """qelib1 gates that our registry lacks, expanded to library gates."""
    return {
        "u0": _GateDef("u0", ["gamma"], ["a"], [("id", [], [("a", None)])]),
        "u": _GateDef(
            "u",
            ["theta", "phi", "lam"],
            ["a"],
            [("u3", ["theta", "phi", "lam"], [("a", None)])],
        ),
        "p": _GateDef("p", ["lam"], ["a"], [("u1", ["lam"], [("a", None)])]),
        "cu3": _GateDef(
            "cu3",
            ["theta", "phi", "lam"],
            ["c", "t"],
            [
                ("u1", [("/", ("+", "lam", "phi"), 2.0)], [("c", None)]),
                ("u1", [("/", ("-", "lam", "phi"), 2.0)], [("t", None)]),
                ("cx", [], [("c", None), ("t", None)]),
                (
                    "u3",
                    [
                        ("neg", ("/", "theta", 2.0)),
                        0.0,
                        ("neg", ("/", ("+", "phi", "lam"), 2.0)),
                    ],
                    [("t", None)],
                ),
                ("cx", [], [("c", None), ("t", None)]),
                ("u3", [("/", "theta", 2.0), "phi", 0.0], [("t", None)]),
            ],
        ),
        "crx": _GateDef(
            "crx",
            ["theta"],
            ["c", "t"],
            [
                ("u1", [("/", math.pi, 2.0)], [("t", None)]),
                ("cx", [], [("c", None), ("t", None)]),
                (
                    "u3",
                    [("neg", ("/", "theta", 2.0)), 0.0, 0.0],
                    [("t", None)],
                ),
                ("cx", [], [("c", None), ("t", None)]),
                (
                    "u3",
                    [("/", "theta", 2.0), ("neg", ("/", math.pi, 2.0)), 0.0],
                    [("t", None)],
                ),
            ],
        ),
        "cry": _GateDef(
            "cry",
            ["theta"],
            ["c", "t"],
            [
                ("ry", [("/", "theta", 2.0)], [("t", None)]),
                ("cx", [], [("c", None), ("t", None)]),
                ("ry", [("neg", ("/", "theta", 2.0))], [("t", None)]),
                ("cx", [], [("c", None), ("t", None)]),
            ],
        ),
    }


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class _Parser:
    def __init__(self, tokens: List[Token], name: str) -> None:
        self.tokens = tokens
        self.pos = 0
        self.name = name
        self.qregs: List[Tuple[str, int, int]] = []  # (name, size, offset)
        self.cregs: List[Tuple[str, int, int]] = []
        self.num_wires = 0
        self.num_clbits = 0
        self.gate_defs: Dict[str, _GateDef] = _builtin_macros()
        self.opaque: set = set()
        self.gates: List[Gate] = []

    # -- token helpers --------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        token = self.peek()
        if token.kind != kind or (value is not None and token.value != value):
            want = value or kind
            raise QasmError(
                f"expected {want!r}, found {token.value!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def error(self, message: str) -> QasmError:
        token = self.peek()
        return QasmError(message, token.line, token.column)

    # -- program --------------------------------------------------------

    def parse(self) -> QuantumCircuit:
        self._parse_header()
        while self.peek().kind != "EOF":
            self._parse_statement()
        circuit = QuantumCircuit(
            max(self.num_wires, 1), self.name, max(self.num_clbits, 1)
        )
        for gate in self.gates:
            circuit.append(gate)
        return circuit

    def _parse_header(self) -> None:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value == "OPENQASM":
            self.advance()
            version = self.advance()
            if version.value not in ("2.0", "2"):
                raise QasmError(
                    f"unsupported OpenQASM version {version.value!r}",
                    version.line,
                    version.column,
                )
            self.expect("SYMBOL", ";")

    def _parse_statement(self) -> None:
        token = self.peek()
        if token.kind == "KEYWORD":
            handler = {
                "include": self._parse_include,
                "qreg": self._parse_qreg,
                "creg": self._parse_creg,
                "gate": self._parse_gate_def,
                "opaque": self._parse_opaque,
                "measure": self._parse_measure,
                "barrier": self._parse_barrier,
                "reset": self._parse_reset,
                "if": self._parse_if,
            }.get(token.value)
            if handler is None:
                raise self.error(f"unexpected keyword {token.value!r}")
            handler()
        elif token.kind == "ID":
            self._parse_gate_call()
        else:
            raise self.error(f"unexpected token {token.value!r}")

    # -- declarations ---------------------------------------------------

    def _parse_include(self) -> None:
        self.advance()
        self.expect("STRING")
        self.expect("SYMBOL", ";")

    def _parse_sized_decl(self) -> Tuple[str, int]:
        name = self.expect("ID").value
        self.expect("SYMBOL", "[")
        size = int(self.expect("INT").value)
        self.expect("SYMBOL", "]")
        self.expect("SYMBOL", ";")
        if size < 1:
            raise self.error(f"register {name!r} must have positive size")
        return name, size

    def _parse_qreg(self) -> None:
        self.advance()
        name, size = self._parse_sized_decl()
        if any(r[0] == name for r in self.qregs):
            raise self.error(f"duplicate qreg {name!r}")
        self.qregs.append((name, size, self.num_wires))
        self.num_wires += size

    def _parse_creg(self) -> None:
        self.advance()
        name, size = self._parse_sized_decl()
        if any(r[0] == name for r in self.cregs):
            raise self.error(f"duplicate creg {name!r}")
        self.cregs.append((name, size, self.num_clbits))
        self.num_clbits += size

    def _parse_opaque(self) -> None:
        self.advance()
        name = self.expect("ID").value
        self.opaque.add(name)
        while not (
            self.peek().kind == "SYMBOL" and self.peek().value == ";"
        ):
            self.advance()
        self.advance()

    def _parse_if(self) -> None:
        raise self.error("classically-controlled gates are not supported")

    def _parse_reset(self) -> None:
        self.advance()
        for wire in self._parse_qubit_argument():
            self.gates.append(Gate("reset", (wire,)))
        self.expect("SYMBOL", ";")

    # -- gate definitions -------------------------------------------------

    def _parse_gate_def(self) -> None:
        self.advance()
        name = self.expect("ID").value
        params: List[str] = []
        if self.peek().kind == "SYMBOL" and self.peek().value == "(":
            self.advance()
            if not (self.peek().kind == "SYMBOL" and self.peek().value == ")"):
                params.append(self.expect("ID").value)
                while self.peek().value == ",":
                    self.advance()
                    params.append(self.expect("ID").value)
            self.expect("SYMBOL", ")")
        qubits = [self.expect("ID").value]
        while self.peek().value == ",":
            self.advance()
            qubits.append(self.expect("ID").value)
        self.expect("SYMBOL", "{")
        body: List[Tuple[str, List[Expr], List[Tuple[str, Optional[int]]]]] = []
        while not (self.peek().kind == "SYMBOL" and self.peek().value == "}"):
            if self.peek().kind == "KEYWORD" and self.peek().value == "barrier":
                # Barriers inside macros are dropped (they only order the
                # body, which is already sequential).
                while self.peek().value != ";":
                    self.advance()
                self.advance()
                continue
            gate_name = self.expect("ID").value
            exprs: List[Expr] = []
            if self.peek().value == "(":
                self.advance()
                if self.peek().value != ")":
                    exprs.append(self._parse_expression(params))
                    while self.peek().value == ",":
                        self.advance()
                        exprs.append(self._parse_expression(params))
                self.expect("SYMBOL", ")")
            args: List[Tuple[str, Optional[int]]] = []
            args.append((self.expect("ID").value, None))
            while self.peek().value == ",":
                self.advance()
                args.append((self.expect("ID").value, None))
            self.expect("SYMBOL", ";")
            body.append((gate_name, exprs, args))
        self.expect("SYMBOL", "}")
        self.gate_defs[name] = _GateDef(name, params, qubits, body)

    # -- gate calls -------------------------------------------------------

    def _lookup_qreg(self, name: str) -> Tuple[str, int, int]:
        for reg in self.qregs:
            if reg[0] == name:
                return reg
        raise self.error(f"undeclared qreg {name!r}")

    def _lookup_creg(self, name: str) -> Tuple[str, int, int]:
        for reg in self.cregs:
            if reg[0] == name:
                return reg
        raise self.error(f"undeclared creg {name!r}")

    def _parse_qubit_argument(self) -> List[int]:
        """One argument; a bare register name yields all its wires."""
        name = self.expect("ID").value
        reg_name, size, offset = self._lookup_qreg(name)
        if self.peek().kind == "SYMBOL" and self.peek().value == "[":
            self.advance()
            index = int(self.expect("INT").value)
            self.expect("SYMBOL", "]")
            if index >= size:
                raise self.error(
                    f"index {index} out of range for qreg {reg_name}[{size}]"
                )
            return [offset + index]
        return [offset + i for i in range(size)]

    def _parse_clbit_argument(self) -> List[int]:
        name = self.expect("ID").value
        reg_name, size, offset = self._lookup_creg(name)
        if self.peek().kind == "SYMBOL" and self.peek().value == "[":
            self.advance()
            index = int(self.expect("INT").value)
            self.expect("SYMBOL", "]")
            if index >= size:
                raise self.error(
                    f"index {index} out of range for creg {reg_name}[{size}]"
                )
            return [offset + index]
        return [offset + i for i in range(size)]

    def _parse_gate_call(self) -> None:
        token = self.advance()
        name = token.value.lower() if token.value in ("U", "CX") else token.value
        if token.value == "U":
            name = "u3"
        elif token.value == "CX":
            name = "cx"
        params: List[float] = []
        if self.peek().kind == "SYMBOL" and self.peek().value == "(":
            self.advance()
            if self.peek().value != ")":
                params.append(_evaluate(self._parse_expression([]), {}))
                while self.peek().value == ",":
                    self.advance()
                    params.append(_evaluate(self._parse_expression([]), {}))
            self.expect("SYMBOL", ")")
        args: List[List[int]] = [self._parse_qubit_argument()]
        while self.peek().value == ",":
            self.advance()
            args.append(self._parse_qubit_argument())
        self.expect("SYMBOL", ";")
        if name in self.opaque:
            raise QasmError(
                f"cannot expand opaque gate {name!r}", token.line, token.column
            )
        for operands in self._broadcast(args, token):
            self._emit_gate(name, params, operands, token)

    def _broadcast(
        self, args: List[List[int]], token: Token
    ) -> List[Tuple[int, ...]]:
        """QASM register broadcast: size-k registers iterate in lockstep,
        single qubits repeat."""
        sizes = {len(a) for a in args if len(a) > 1}
        if len(sizes) > 1:
            raise QasmError(
                "mismatched register sizes in gate call",
                token.line,
                token.column,
            )
        width = sizes.pop() if sizes else 1
        return [
            tuple(a[i] if len(a) > 1 else a[0] for a in args)
            for i in range(width)
        ]

    def _emit_gate(
        self,
        name: str,
        params: Sequence[float],
        operands: Tuple[int, ...],
        token: Token,
    ) -> None:
        """Emit a library gate or recursively expand a macro."""
        if name in GATE_SPECS and name not in self.gate_defs:
            try:
                self.gates.append(Gate(name, operands, tuple(params)))
            except Exception as exc:
                raise QasmError(str(exc), token.line, token.column) from exc
            return
        definition = self.gate_defs.get(name)
        if definition is None:
            raise QasmError(
                f"unknown gate {name!r}", token.line, token.column
            )
        if len(params) != len(definition.params):
            raise QasmError(
                f"gate {name!r} expects {len(definition.params)} parameter(s), "
                f"got {len(params)}",
                token.line,
                token.column,
            )
        if len(operands) != len(definition.qubits):
            raise QasmError(
                f"gate {name!r} expects {len(definition.qubits)} qubit(s), "
                f"got {len(operands)}",
                token.line,
                token.column,
            )
        env = dict(zip(definition.params, params))
        binding = dict(zip(definition.qubits, operands))
        for sub_name, exprs, arg_names in definition.body:
            sub_params = [_evaluate(e, env) for e in exprs]
            try:
                sub_operands = tuple(binding[arg] for arg, _ in arg_names)
            except KeyError as exc:
                raise QasmError(
                    f"gate {name!r} body references unknown qubit {exc}",
                    token.line,
                    token.column,
                ) from exc
            self._emit_gate(sub_name, sub_params, sub_operands, token)

    def _parse_measure(self) -> None:
        self.advance()
        qubits = self._parse_qubit_argument()
        self.expect("ARROW")
        clbits = self._parse_clbit_argument()
        self.expect("SYMBOL", ";")
        if len(qubits) != len(clbits):
            raise self.error("measure register size mismatch")
        for q, c in zip(qubits, clbits):
            self.gates.append(Gate("measure", (q,), clbit=c))

    def _parse_barrier(self) -> None:
        self.advance()
        wires: List[int] = []
        wires.extend(self._parse_qubit_argument())
        while self.peek().value == ",":
            self.advance()
            wires.extend(self._parse_qubit_argument())
        self.expect("SYMBOL", ";")
        self.gates.append(Gate("barrier", tuple(wires)))

    # -- expressions ------------------------------------------------------

    def _parse_expression(self, param_names: Sequence[str]) -> Expr:
        return self._parse_additive(param_names)

    def _parse_additive(self, names: Sequence[str]) -> Expr:
        left = self._parse_multiplicative(names)
        while self.peek().kind == "SYMBOL" and self.peek().value in "+-":
            op = self.advance().value
            right = self._parse_multiplicative(names)
            left = (op, left, right)
        return left

    def _parse_multiplicative(self, names: Sequence[str]) -> Expr:
        left = self._parse_unary(names)
        while self.peek().kind == "SYMBOL" and self.peek().value in "*/":
            op = self.advance().value
            right = self._parse_unary(names)
            left = (op, left, right)
        return left

    def _parse_unary(self, names: Sequence[str]) -> Expr:
        token = self.peek()
        if token.kind == "SYMBOL" and token.value == "-":
            self.advance()
            return ("neg", self._parse_unary(names))
        if token.kind == "SYMBOL" and token.value == "+":
            self.advance()
            return self._parse_unary(names)
        return self._parse_power(names)

    def _parse_power(self, names: Sequence[str]) -> Expr:
        left = self._parse_atom(names)
        if self.peek().kind == "SYMBOL" and self.peek().value == "^":
            self.advance()
            right = self._parse_unary(names)
            return ("^", left, right)
        return left

    def _parse_atom(self, names: Sequence[str]) -> Expr:
        token = self.advance()
        if token.kind in ("REAL", "INT"):
            return float(token.value)
        if token.kind == "KEYWORD" and token.value == "pi":
            return math.pi
        if token.kind == "ID":
            if token.value in _FUNCTIONS:
                self.expect("SYMBOL", "(")
                inner = self._parse_expression(names)
                self.expect("SYMBOL", ")")
                return ("call", token.value, inner)
            if token.value in names:
                return token.value
            raise QasmError(
                f"unknown identifier {token.value!r} in expression",
                token.line,
                token.column,
            )
        if token.kind == "SYMBOL" and token.value == "(":
            inner = self._parse_expression(names)
            self.expect("SYMBOL", ")")
            return inner
        raise QasmError(
            f"unexpected token {token.value!r} in expression",
            token.line,
            token.column,
        )


def parse_qasm(source: str, name: str = "qasm_circuit") -> QuantumCircuit:
    """Parse OpenQASM 2.0 source text into a circuit."""
    return _Parser(tokenize(source), name).parse()


def parse_qasm_file(path: str) -> QuantumCircuit:
    """Parse a ``.qasm`` file; the circuit is named after the file stem."""
    import os

    with open(path) as handle:
        source = handle.read()
    stem = os.path.splitext(os.path.basename(path))[0]
    return parse_qasm(source, name=stem)
