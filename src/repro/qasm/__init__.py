"""OpenQASM 2.0 subset: lexer, parser, and emitter.

The paper's benchmark circuits (RevLib, QISKit, Quipper/ScaffCC
compilations) ship as OpenQASM 2.0 files.  This package implements the
language subset those files use, hand-written with no dependencies:

- header (``OPENQASM 2.0;``, ``include "qelib1.inc";``),
- ``qreg``/``creg`` declarations (multiple registers are flattened into
  one wire space),
- the qelib1 standard gates plus the ``U``/``CX`` builtins,
- user-defined ``gate`` macros (recursively expanded at call sites),
- ``measure``, ``barrier``, and full parameter expressions
  (``pi``, arithmetic, ``sin``/``cos``/..., unary minus).

Round-trip guarantee: ``parse(emit(circuit)) == circuit`` for any
circuit in the supported gate set (a property-based test enforces it).
"""

from repro.qasm.lexer import Token, tokenize
from repro.qasm.parser import parse_qasm, parse_qasm_file
from repro.qasm.emitter import emit_qasm, write_qasm_file

__all__ = [
    "Token",
    "tokenize",
    "parse_qasm",
    "parse_qasm_file",
    "emit_qasm",
    "write_qasm_file",
]
