"""End-to-end telemetry: metrics registry, trace spans, profiling.

The observability layer the serving tier fronts:

- :mod:`repro.telemetry.metrics` — a process-embeddable registry of
  counters, gauges, and fixed-bucket histograms with a Prometheus
  text-exposition renderer (``GET /metrics``).  The latency bucket
  ladder (:data:`~repro.telemetry.metrics.LATENCY_BUCKETS_SECONDS`)
  is shared with ``benchmarks/bench_service.py`` so live scrapes and
  offline benchmark reports agree on one histogram definition.
- :mod:`repro.telemetry.trace` — trace spans with ids, parents, and
  wall+CPU timings, threaded from the HTTP handler through the
  scheduler, worker lanes, engine executors, and every pipeline pass.
  Disabled-mode calls return a shared no-op handle (no allocation, no
  lock) so an untraced request pays one thread-local read per span
  site.  Spans cross the process boundary as JSON-native dicts:
  workers and hybrid shards carry the parent span id in and return a
  serialized span batch alongside their results.
- :mod:`repro.telemetry.profile` — opt-in router profiling: per-step
  candidate counts, winner-tie sizes, and scorer kernel time,
  aggregated per routing run with a single thread-local check when
  disabled.
- :mod:`repro.telemetry.snapshot` — the one service-stats assembly
  (``GET /stats``, the ``serve -v`` report, and the metrics
  collectors all read the same snapshot function).

Import discipline: this package must stay importable from the hot
layers (router, scheduler, pipeline runner), so nothing here imports
:mod:`repro.service` or :mod:`repro.engine` at module scope —
:mod:`repro.telemetry.snapshot` resolves those lazily.
"""

from repro.telemetry.metrics import (
    LATENCY_BUCKETS_SECONDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    bucket_quantile,
    histogram_payload,
)
from repro.telemetry.profile import (
    RouterProfiler,
    active_router_profiler,
    profiled_routing,
)
from repro.telemetry.snapshot import (
    register_service_collectors,
    service_snapshot,
    snapshot_series,
)
from repro.telemetry.trace import (
    Span,
    TraceStore,
    Tracer,
    current_span_id,
    current_tracer,
    render_span_tree,
    span,
    tracing,
)

__all__ = [
    "LATENCY_BUCKETS_SECONDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "bucket_quantile",
    "histogram_payload",
    "RouterProfiler",
    "active_router_profiler",
    "profiled_routing",
    "register_service_collectors",
    "service_snapshot",
    "snapshot_series",
    "Span",
    "TraceStore",
    "Tracer",
    "current_span_id",
    "current_tracer",
    "render_span_tree",
    "span",
    "tracing",
]
