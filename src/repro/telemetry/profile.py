"""Opt-in router profiling: per-step aggregates for SABRE routing.

The router's inner loop runs tens of thousands of steps per circuit;
per-step spans would drown a trace and the overhead gate.  Instead a
:class:`RouterProfiler` accumulates three cheap aggregates across a
routing run:

- **candidate counts** — how many SWAP candidates each search step
  scored (the paper's extended-set/front-layer pressure, per step);
- **winner-tie sizes** — how many candidates tied for best score
  before the random tie-break (large ties mean the cost function is
  flat and seed-sensitivity is high, cf. Steinberg et al. §IV);
- **scorer kernel time** — seconds inside the vectorized scoring
  kernels (``score_rows`` / ``score_scalar``), separating "thinking"
  from bookkeeping.

Activation mirrors the tracer: thread-local, via
:func:`profiled_routing`.  The router checks
:func:`active_router_profiler` **once per run** and keeps the result
in a local, so the disabled path costs one thread-local read per
routing call — not per step.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

_local = threading.local()


class RouterProfiler:
    """Aggregate router-step statistics for one profiling scope.

    Not thread-safe by design: each activation is thread-local, and
    parallel trial executors profile (if at all) inside the worker
    that owns the run.  Merge across workers with :meth:`merge`.
    """

    __slots__ = (
        "steps", "candidates_total", "candidates_max", "tie_total",
        "tie_max", "kernel_seconds", "kernel_calls",
    )

    def __init__(self) -> None:
        self.steps = 0
        self.candidates_total = 0
        self.candidates_max = 0
        self.tie_total = 0
        self.tie_max = 0
        self.kernel_seconds = 0.0
        self.kernel_calls = 0

    # -- hot hooks (router inner loop) --------------------------------

    def record_step(self, candidates: int, tie_size: int) -> None:
        """One routing search step.  ``candidates`` < 0 means the call
        site could not count them cheaply (recorded as a step, skipped
        in candidate stats); ``tie_size`` < 1 likewise."""
        self.steps += 1
        if candidates >= 0:
            self.candidates_total += candidates
            if candidates > self.candidates_max:
                self.candidates_max = candidates
        if tie_size >= 1:
            self.tie_total += tie_size
            if tie_size > self.tie_max:
                self.tie_max = tie_size

    def add_kernel(self, seconds: float) -> None:
        """Time spent inside one scorer kernel invocation."""
        self.kernel_seconds += seconds
        self.kernel_calls += 1

    # -- aggregation ---------------------------------------------------

    def merge(self, other: "RouterProfiler") -> None:
        self.steps += other.steps
        self.candidates_total += other.candidates_total
        self.candidates_max = max(self.candidates_max, other.candidates_max)
        self.tie_total += other.tie_total
        self.tie_max = max(self.tie_max, other.tie_max)
        self.kernel_seconds += other.kernel_seconds
        self.kernel_calls += other.kernel_calls

    def merge_dict(self, payload: Dict[str, object]) -> None:
        """Merge a :meth:`to_dict` payload (cross-process batches)."""
        other = RouterProfiler()
        other.steps = int(payload.get("steps", 0))
        other.candidates_total = int(payload.get("candidates_total", 0))
        other.candidates_max = int(payload.get("candidates_max", 0))
        other.tie_total = int(payload.get("tie_total", 0))
        other.tie_max = int(payload.get("tie_max", 0))
        other.kernel_seconds = float(payload.get("kernel_seconds", 0.0))
        other.kernel_calls = int(payload.get("kernel_calls", 0))
        self.merge(other)

    def to_dict(self) -> Dict[str, object]:
        """JSON-native aggregate (span attrs / cross-process wire)."""
        payload: Dict[str, object] = {
            "steps": self.steps,
            "candidates_total": self.candidates_total,
            "candidates_max": self.candidates_max,
            "tie_total": self.tie_total,
            "tie_max": self.tie_max,
            "kernel_seconds": round(self.kernel_seconds, 6),
            "kernel_calls": self.kernel_calls,
        }
        if self.steps:
            payload["candidates_mean"] = round(
                self.candidates_total / self.steps, 3
            )
            payload["tie_mean"] = round(self.tie_total / self.steps, 3)
        return payload

    @property
    def empty(self) -> bool:
        return self.steps == 0 and self.kernel_calls == 0


def active_router_profiler() -> Optional[RouterProfiler]:
    """The profiler active on this thread, or ``None``.  Routers call
    this once per ``run()`` and branch on the cached result."""
    return getattr(_local, "profiler", None)


class profiled_routing:
    """Activate a :class:`RouterProfiler` on this thread.

    ``with profiled_routing() as prof:`` — every router run inside the
    body accumulates into ``prof``.  Nested scopes shadow (and restore)
    the outer profiler.
    """

    __slots__ = ("_profiler", "_prev")

    def __init__(self, profiler: Optional[RouterProfiler] = None) -> None:
        self._profiler = profiler if profiler is not None else RouterProfiler()
        self._prev = None

    def __enter__(self) -> RouterProfiler:
        self._prev = getattr(_local, "profiler", None)
        _local.profiler = self._profiler
        return self._profiler

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.profiler = self._prev
        return False
