"""Metrics registry: counters, gauges, histograms, Prometheus text.

Stdlib-only and deliberately small.  Three instrument kinds cover the
service's needs:

- :class:`Counter` — monotonically increasing totals (``_total``).
- :class:`Gauge` — point-in-time values (queue depth, uptime).
- :class:`Histogram` — fixed-bucket latency distributions rendered as
  the standard ``_bucket{le=...}`` / ``_sum`` / ``_count`` series.

A :class:`MetricsRegistry` owns instruments *and* collectors.  A
collector is a callable returning ``[(name, type, help, samples)]``
rendered fresh at scrape time — how the service exports the counters
that already live behind ``store.stats()`` / ``scheduler.stats()`` /
``cache_stats()`` without duplicating their bookkeeping (those
``stats()`` dicts stay the single source of truth; ``GET /metrics``
is a view over them, not a second set of counters to keep in sync).

The latency bucket ladder (:data:`LATENCY_BUCKETS_SECONDS`) is shared
with ``benchmarks/bench_service.py``: both the live endpoint and the
offline benchmark report quantiles from the *same* histogram
definition, via :func:`bucket_quantile`.

Registries are instantiable (one per :class:`~repro.service.server.
ServiceState`), never process-global — tests build dozens of servers
per session and their series must not bleed into each other.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

#: The one latency bucket ladder every repro histogram uses (seconds).
#: Shared by the live ``/metrics`` endpoint and the service benchmark's
#: replay report so their quantile estimates come from one definition.
LATENCY_BUCKETS_SECONDS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
    0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: A collector yields (name, metric_type, help, samples); each sample
#: is ``(label_suffix, value)`` where the suffix is either ``""`` or a
#: rendered label set like ``'{preset="fast"}'``.
CollectorSeries = Tuple[str, str, str, List[Tuple[str, float]]]


def _format_value(value: float) -> str:
    """Prometheus-style number: integers stay integral, inf is +Inf."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def escape_label_value(value: object) -> str:
    """Escape a label value per the text exposition format."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r"\"")
    )


def format_labels(labels: Dict[str, object]) -> str:
    """Render ``{key="value",...}`` (empty string for no labels)."""
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value", "_lock")

    def __init__(self, name: str, help: str = "") -> None:  # noqa: A002
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def collect(self) -> CollectorSeries:
        return (self.name, "counter", self.help, [("", self._value)])


class Gauge:
    """A point-in-time value; ``set`` directly or via a callback."""

    __slots__ = ("name", "help", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def collect(self) -> CollectorSeries:
        return (self.name, "gauge", self.help, [("", self.value)])


class Histogram:
    """Fixed-bucket histogram (cumulative buckets + sum + count).

    ``observe`` is a bisect plus two adds under a lock — cheap enough
    to live on the scheduler's dispatch path unconditionally, so the
    latency series exist whether or not anything ever scrapes them.
    """

    __slots__ = ("name", "help", "buckets", "_counts", "_sum", "_count",
                 "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
    ) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket")
        self.name = name
        self.help = help
        self.buckets: Tuple[float, ...] = tuple(bounds)
        self._counts = [0] * len(bounds)  # per-bucket (non-cumulative)
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            if index < len(self._counts):
                self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> Tuple[List[int], float, int]:
        """(per-bucket counts, sum, count) — a consistent copy."""
        with self._lock:
            return list(self._counts), self._sum, self._count

    def collect(self) -> CollectorSeries:
        counts, total, count = self.snapshot()
        samples: List[Tuple[str, float]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            samples.append(
                (f'_bucket{{le="{_format_value(bound)}"}}', cumulative)
            )
        samples.append(('_bucket{le="+Inf"}', count))
        samples.append(("_sum", total))
        samples.append(("_count", count))
        return (self.name, "histogram", self.help, samples)


def histogram_payload(
    values: Iterable[float],
    buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
) -> Dict[str, object]:
    """JSON-safe histogram export for benchmark reports.

    The shape ``bench_service.py`` writes into ``BENCH_service.json``:
    cumulative bucket counts keyed by upper bound (plus ``+Inf``),
    ``sum``/``count``, and bucket-estimated p50/p95/p99 via
    :func:`bucket_quantile` — the same numbers a Prometheus query over
    the live ``/metrics`` histogram would produce.
    """
    hist = Histogram("_", buckets=buckets)
    for value in values:
        hist.observe(value)
    counts, total, count = hist.snapshot()
    cumulative: Dict[str, int] = {}
    running = 0
    for bound, bucket_count in zip(hist.buckets, counts):
        running += bucket_count
        cumulative[_format_value(bound)] = running
    cumulative["+Inf"] = count
    return {
        "buckets_le": cumulative,
        "sum": total,
        "count": count,
        "p50_ms": bucket_quantile(hist.buckets, counts, count, 0.50) * 1000.0,
        "p95_ms": bucket_quantile(hist.buckets, counts, count, 0.95) * 1000.0,
        "p99_ms": bucket_quantile(hist.buckets, counts, count, 0.99) * 1000.0,
    }


def bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    q: float,
) -> float:
    """Quantile estimate from per-bucket counts (linear interpolation
    inside the containing bucket, Prometheus ``histogram_quantile``
    style).  ``counts`` are non-cumulative, aligned with ``bounds``;
    observations above the last bound clamp to it."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    if count <= 0:
        return 0.0
    rank = q * count
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        previous = cumulative
        cumulative += bucket_count
        if cumulative >= rank and bucket_count:
            lower = bounds[index - 1] if index else 0.0
            upper = bounds[index]
            fraction = (rank - previous) / bucket_count
            return lower + (upper - lower) * fraction
    return float(bounds[-1])


class MetricsRegistry:
    """Instruments plus scrape-time collectors, rendered as exposition.

    ``register`` adopts an instrument (its ``collect()`` feeds the
    render); ``add_collector`` adds a zero-state callable producing
    series from live objects (the ``stats()`` absorption path).
    """

    def __init__(self) -> None:
        self._instruments: List[object] = []
        self._collectors: List[Callable[[], List[CollectorSeries]]] = []
        self._lock = threading.Lock()

    def register(self, instrument):
        with self._lock:
            self._instruments.append(instrument)
        return instrument

    def counter(self, name: str, help: str = "") -> Counter:  # noqa: A002
        return self.register(Counter(name, help))

    def gauge(
        self,
        name: str,
        help: str = "",  # noqa: A002
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        return self.register(Gauge(name, help, fn=fn))

    def histogram(
        self,
        name: str,
        help: str = "",  # noqa: A002
        buckets: Sequence[float] = LATENCY_BUCKETS_SECONDS,
    ) -> Histogram:
        return self.register(Histogram(name, help, buckets))

    def add_collector(
        self, collector: Callable[[], List[CollectorSeries]]
    ) -> None:
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> List[CollectorSeries]:
        with self._lock:
            instruments = list(self._instruments)
            collectors = list(self._collectors)
        series = [instrument.collect() for instrument in instruments]
        for collector in collectors:
            series.extend(collector())
        return series

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: List[str] = []
        for name, metric_type, help_text, samples in self.collect():
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {metric_type}")
            for suffix, value in samples:
                lines.append(f"{name}{suffix} {_format_value(value)}")
        return "\n".join(lines) + "\n"


def stats_series(
    prefix: str,
    stats: Dict[str, object],
    counters: Sequence[str],
    gauges: Sequence[str] = (),
    help_prefix: str = "",
) -> List[CollectorSeries]:
    """Series from a ``stats()`` dict: listed keys become metrics.

    Missing keys are skipped (a thread-tier scheduler has no lane
    counters, a memory-only store no disk entries) rather than
    exported as zeros that lie.
    """
    series: List[CollectorSeries] = []
    for key in counters:
        value = stats.get(key)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            series.append((
                f"{prefix}_{key}_total",
                "counter",
                f"{help_prefix}{key.replace('_', ' ')} (total)",
                [("", float(value))],
            ))
    for key in gauges:
        value = stats.get(key)
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            series.append((
                f"{prefix}_{key}",
                "gauge",
                f"{help_prefix}{key.replace('_', ' ')}",
                [("", float(value))],
            ))
    return series
