"""The one service-stats assembly, shared by every surface.

``GET /stats``, the ``serve -v`` shutdown report, and the
``GET /metrics`` collectors previously each hand-rolled the same
store/scheduler/engine-cache merge; :func:`service_snapshot` is now
the single source of that payload, and :func:`snapshot_series` turns
one into Prometheus series (so the scrape can never drift from the
JSON endpoint — both render the same dict).

Imports of :mod:`repro.service` / :mod:`repro.engine` happen inside
the functions: the telemetry package stays importable from the hot
layers (router, scheduler) without dragging the service stack in.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.telemetry.metrics import (
    CollectorSeries,
    MetricsRegistry,
    format_labels,
    stats_series,
)

#: ``store.stats()`` keys exported as counters / gauges.
STORE_COUNTERS = (
    "memory_hits", "disk_hits", "hits", "misses", "evictions", "puts",
    "quarantined",
)
STORE_GAUGES = ("memory_entries", "disk_entries", "shards", "persistent")

#: ``scheduler.stats()`` keys exported as counters / gauges.
SCHEDULER_COUNTERS = (
    "submitted", "store_answered", "coalesced", "executions", "completed",
    "failed", "cancelled", "timeouts", "worker_crashes", "retries",
    "poisoned", "poisoned_failures", "degraded_executions", "breaker_trips",
    "rejected", "store_put_failures", "lane_restarts",
)
SCHEDULER_GAUGES = (
    "workers", "queue_depth", "max_queue_depth", "inflight",
    "consecutive_crashes", "avg_exec_seconds",
)

#: ``cache_stats()`` keys exported as counters / gauges.
ENGINE_CACHE_COUNTERS = ("hits", "misses")
ENGINE_CACHE_GAUGES = ("matrix_entries", "device_entries", "dag_entries")


def service_snapshot(
    store,
    scheduler,
    uptime_seconds: Optional[float] = None,
    requests_served: Optional[int] = None,
) -> Dict[str, object]:
    """The ``GET /stats`` payload (also the ``serve -v`` report body).

    ``store`` / ``scheduler`` may be ``None`` (the CLI report after a
    partial startup failure); their sections are then omitted.
    """
    from repro.engine.cache import cache_stats
    from repro.service import faults

    payload: Dict[str, object] = {}
    if uptime_seconds is not None:
        payload["uptime_seconds"] = round(uptime_seconds, 3)
    if requests_served is not None:
        payload["requests_served"] = requests_served
    if store is not None:
        payload["store"] = store.stats()
    if scheduler is not None:
        payload["scheduler"] = scheduler.stats()
    payload["engine_cache"] = cache_stats()
    plan = faults.active_plan()
    if plan is not None:
        payload["faults"] = plan.stats()
    return payload


def snapshot_series(snapshot: Dict[str, object]) -> List[CollectorSeries]:
    """Prometheus series from a :func:`service_snapshot` payload."""
    series: List[CollectorSeries] = []
    requests = snapshot.get("requests_served")
    if isinstance(requests, (int, float)):
        series.append((
            "repro_http_requests_total", "counter",
            "HTTP requests handled (all endpoints)",
            [("", float(requests))],
        ))
    uptime = snapshot.get("uptime_seconds")
    if isinstance(uptime, (int, float)):
        series.append((
            "repro_uptime_seconds", "gauge",
            "Seconds since the service started",
            [("", float(uptime))],
        ))
    store = snapshot.get("store")
    if isinstance(store, dict):
        series.extend(stats_series(
            "repro_store", store, STORE_COUNTERS, STORE_GAUGES,
            help_prefix="Result store ",
        ))
    sched = snapshot.get("scheduler")
    if isinstance(sched, dict):
        series.extend(stats_series(
            "repro_scheduler", sched, SCHEDULER_COUNTERS, SCHEDULER_GAUGES,
            help_prefix="Scheduler ",
        ))
        health = sched.get("health")
        if isinstance(health, str):
            series.append((
                "repro_scheduler_health", "gauge",
                "Scheduler health (1 for the current state's series)",
                [
                    (format_labels({"state": state}), float(state == health))
                    for state in ("ok", "degraded", "draining")
                ],
            ))
        series.extend(_pass_timing_series(sched.get("pass_timings")))
    cache = snapshot.get("engine_cache")
    if isinstance(cache, dict):
        series.extend(stats_series(
            "repro_engine_cache", cache,
            ENGINE_CACHE_COUNTERS, ENGINE_CACHE_GAUGES,
            help_prefix="Engine cache ",
        ))
    faults_stats = snapshot.get("faults")
    if isinstance(faults_stats, dict):
        fired = faults_stats.get("fired_total")
        if isinstance(fired, (int, float)):
            series.append((
                "repro_faults_fired_total", "counter",
                "Injected faults fired (all sites)",
                [("", float(fired))],
            ))
    return series


def _pass_timing_series(pass_timings: object) -> List[CollectorSeries]:
    """``{preset: {pass: {calls, seconds}}}`` -> two labeled series."""
    if not isinstance(pass_timings, dict) or not pass_timings:
        return []
    executions: List = []
    seconds: List = []
    for preset, per_pass in sorted(pass_timings.items()):
        if not isinstance(per_pass, dict):
            continue
        for name, timing in sorted(per_pass.items()):
            labels = format_labels({"preset": preset, "pass": name})
            executions.append((labels, float(timing.get("calls", 0))))
            seconds.append((labels, float(timing.get("seconds", 0.0))))
    if not executions:
        return []
    return [
        (
            "repro_pass_executions_total", "counter",
            "Pipeline pass executions by preset and pass", executions,
        ),
        (
            "repro_pass_seconds_total", "counter",
            "Cumulative wall seconds in each pipeline pass", seconds,
        ),
    ]


def register_service_collectors(
    registry: MetricsRegistry,
    snapshot_fn: Callable[[], Dict[str, object]],
) -> None:
    """Expose a live snapshot function on a registry: every scrape
    calls ``snapshot_fn()`` fresh and renders its series."""
    registry.add_collector(lambda: snapshot_series(snapshot_fn()))
