"""Trace spans: per-request timelines across threads and processes.

A **span** is one timed operation — an HTTP request, a queue wait, a
worker-lane execution, a pipeline pass, a router-profile aggregate —
with an id, a parent id, wall and CPU durations, and JSON-native
attributes.  A **tracer** collects the spans of one trace (one job).

Design constraints, in order:

1. **Disabled mode is free.**  ``span(name)`` at every instrumentation
   site costs one thread-local read and returns a shared no-op handle
   when no tracer is active — no allocation, no lock, no timestamps.
   The overhead gate in ``benchmarks/bench_telemetry.py`` holds this
   to within noise of an uninstrumented build.
2. **Cross-process propagation.**  Spans serialize as plain dicts.  A
   worker process receives ``(trace_id, parent_span_id)``, builds its
   own :class:`Tracer`, and returns ``tracer.export()`` alongside its
   result; the parent adopts the batch with :meth:`Tracer.add_spans`.
   Span ids embed the PID, so batches from different processes never
   collide.
3. **Thread safety without shared stacks.**  The *current-span stack*
   is thread-local (``tracing`` installs it); the tracer itself only
   ever appends finished spans under a lock.  The server handler
   thread and the scheduler dispatcher thread can therefore feed one
   tracer concurrently, each under its own activation.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

#: Spans retained per trace; a runaway instrumentation site truncates
#: (and flags) rather than holding unbounded memory per job.
MAX_SPANS_PER_TRACE = 4096

_local = threading.local()
_trace_ids = itertools.count(1)
#: Per-process tracer instance counter, folded into span ids so two
#: tracers in one process (e.g. two hybrid shards executed by the same
#: pool worker) can never mint colliding ids.
_tracer_seq = itertools.count(1)


def _new_trace_id() -> str:
    return f"t{os.getpid():x}-{next(_trace_ids):04d}"


class Span:
    """One finished-or-running span.  ``to_dict`` is the wire format."""

    __slots__ = (
        "span_id", "parent_id", "name", "start", "wall_seconds",
        "cpu_seconds", "attrs", "_perf0", "_cpu0",
    )

    def __init__(
        self, span_id: str, parent_id: Optional[str], name: str
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = 0.0
        self.wall_seconds = 0.0
        self.cpu_seconds = 0.0
        self.attrs: Optional[Dict[str, object]] = None

    def set(self, key: str, value: object) -> "Span":
        """Attach one JSON-safe attribute (lazy dict: most spans carry
        none)."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs[key] = value
        return self

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        return payload


class _SpanHandle:
    """Context manager around one live span (allocated only when a
    tracer is active)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set(self, key: str, value: object) -> "_SpanHandle":
        self._span.set(key, value)
        return self

    @property
    def span_id(self) -> str:
        return self._span.span_id

    def __enter__(self) -> "_SpanHandle":
        stack = getattr(_local, "span_stack", None)
        if stack is not None:
            stack.append(self._span.span_id)
        self._span.start = time.time()
        self._span._perf0 = time.perf_counter()
        self._span._cpu0 = time.thread_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        span_obj = self._span
        span_obj.wall_seconds = time.perf_counter() - span_obj._perf0
        span_obj.cpu_seconds = time.thread_time() - span_obj._cpu0
        if exc_type is not None:
            span_obj.set("error", f"{exc_type.__name__}: {exc}")
        stack = getattr(_local, "span_stack", None)
        if stack and stack[-1] == span_obj.span_id:
            stack.pop()
        self._tracer._record(span_obj)
        return False


class _NoopSpan:
    """The shared disabled-mode handle: every method is a no-op, and
    one instance serves every call site (zero allocation)."""

    __slots__ = ()

    span_id = None

    def set(self, key: str, value: object) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects the spans of one trace (keyed by ``trace_id``)."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.trace_id = trace_id if trace_id else _new_trace_id()
        self._spans: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._nonce = next(_tracer_seq)
        self._truncated = 0

    # -- span creation -------------------------------------------------

    def new_span_id(self) -> str:
        # PID + per-process tracer nonce + per-tracer counter: unique
        # across every process and tracer contributing to one trace.
        return f"s{os.getpid():x}.{self._nonce:x}.{next(self._ids):03d}"

    def start_span(
        self, name: str, parent_id: Optional[str] = None
    ) -> _SpanHandle:
        """A live span; parent defaults to the thread's current span."""
        if parent_id is None:
            parent_id = current_span_id()
        return _SpanHandle(self, Span(self.new_span_id(), parent_id, name))

    def add_raw(
        self,
        name: str,
        parent_id: Optional[str],
        start: float,
        wall_seconds: float,
        cpu_seconds: float = 0.0,
        attrs: Optional[Dict[str, object]] = None,
    ) -> str:
        """Record an already-measured span (synthesized timings, e.g.
        the scheduler's queue wait from the job's timestamps)."""
        span_obj = Span(self.new_span_id(), parent_id, name)
        span_obj.start = start
        span_obj.wall_seconds = wall_seconds
        span_obj.cpu_seconds = cpu_seconds
        if attrs:
            span_obj.attrs = dict(attrs)
        self._record(span_obj)
        return span_obj.span_id

    def _record(self, span_obj: Span) -> None:
        with self._lock:
            if len(self._spans) >= MAX_SPANS_PER_TRACE:
                self._truncated += 1
                return
            self._spans.append(span_obj.to_dict())

    # -- cross-process batches ----------------------------------------

    def add_spans(self, spans: Sequence[Dict[str, object]]) -> None:
        """Adopt a serialized batch (a worker's ``export()``)."""
        with self._lock:
            room = MAX_SPANS_PER_TRACE - len(self._spans)
            if room < len(spans):
                self._truncated += len(spans) - max(room, 0)
            self._spans.extend(list(spans)[: max(room, 0)])

    def export(self) -> List[Dict[str, object]]:
        """JSON-native span batch, in completion order."""
        with self._lock:
            return list(self._spans)

    @property
    def truncated(self) -> int:
        return self._truncated


# ----------------------------------------------------------------------
# Thread-local activation
# ----------------------------------------------------------------------


class tracing:
    """Activate ``tracer`` on this thread for the ``with`` body.

    ``parent_id`` seeds the thread's span stack so the first span
    opened inside parents correctly across thread/process handoffs.
    Nested activations restore the previous tracer on exit.  Pass
    ``tracer=None`` for a guaranteed-disabled scope.
    """

    __slots__ = ("_tracer", "_parent", "_prev")

    def __init__(
        self, tracer: Optional[Tracer], parent_id: Optional[str] = None
    ) -> None:
        self._tracer = tracer
        self._parent = parent_id
        self._prev = None

    def __enter__(self) -> Optional[Tracer]:
        self._prev = (
            getattr(_local, "tracer", None),
            getattr(_local, "span_stack", None),
        )
        _local.tracer = self._tracer
        _local.span_stack = (
            [self._parent] if self._parent is not None else []
        )
        return self._tracer

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.tracer, _local.span_stack = self._prev
        return False


def current_tracer() -> Optional[Tracer]:
    """This thread's active tracer (``None`` when tracing is off)."""
    return getattr(_local, "tracer", None)


def current_span_id() -> Optional[str]:
    """The innermost open span's id on this thread (or the activation
    parent, or ``None``)."""
    stack = getattr(_local, "span_stack", None)
    if stack:
        return stack[-1]
    return None


def span(name: str):
    """A span handle under the thread's active tracer — or the shared
    no-op when tracing is disabled.  The instrumentation-site
    primitive: always safe to call, free when off."""
    tracer = getattr(_local, "tracer", None)
    if tracer is None:
        return NOOP_SPAN
    return tracer.start_span(name)


# ----------------------------------------------------------------------
# Retention + rendering
# ----------------------------------------------------------------------


class TraceStore:
    """Bounded job-id -> tracer retention for ``GET /trace``.

    Holds the :class:`Tracer` itself (not a snapshot) so a trace
    registered at submission renders whatever spans have landed by the
    time it is read — an async (``"wait": false``) job's trace fills
    in as the job progresses.  Memory stays bounded by the trace count
    cap times :data:`MAX_SPANS_PER_TRACE`.
    """

    def __init__(self, max_traces: int = 128) -> None:
        if max_traces < 1:
            raise ValueError("TraceStore needs max_traces >= 1")
        self.max_traces = max_traces
        self._traces: Dict[str, Tuple[Tracer, float]] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()

    def put(self, job_id: str, tracer: Tracer) -> None:
        with self._lock:
            if job_id not in self._traces:
                self._order.append(job_id)
            self._traces[job_id] = (tracer, time.time())
            while len(self._order) > self.max_traces:
                self._traces.pop(self._order.pop(0), None)

    def get(self, job_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            entry = self._traces.get(job_id)
        if entry is None:
            return None
        tracer, stored_at = entry
        return {
            "job_id": job_id,
            "trace_id": tracer.trace_id,
            "spans": tracer.export(),
            "truncated_spans": tracer.truncated,
            "stored_at": stored_at,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


def render_span_tree(spans: Sequence[Dict[str, object]]) -> str:
    """ASCII tree of a span batch (``repro map --trace`` output).

    Children sort by start time under their parent; spans whose parent
    never arrived (e.g. a worker batch lost to a crash) root at the
    top level, so a partial trace still renders.
    """
    by_id = {s["span_id"]: s for s in spans}
    children: Dict[Optional[str], List[Dict[str, object]]] = {}
    for s in spans:
        parent = s.get("parent_id")
        if parent is not None and parent not in by_id:
            parent = None
        children.setdefault(parent, []).append(s)
    for siblings in children.values():
        siblings.sort(key=lambda s: (s.get("start") or 0.0))
    lines: List[str] = []

    def walk(span_obj: Dict[str, object], depth: int) -> None:
        wall = float(span_obj.get("wall_seconds") or 0.0)
        cpu = float(span_obj.get("cpu_seconds") or 0.0)
        line = (
            f"{'  ' * depth}{span_obj['name']:<{max(1, 32 - 2 * depth)}} "
            f"{wall * 1000:9.3f}ms  cpu {cpu * 1000:8.3f}ms"
        )
        attrs = span_obj.get("attrs")
        if attrs:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(attrs.items())
            )
            line += f"  [{rendered}]"
        lines.append(line)
        for child in children.get(span_obj["span_id"], ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)
