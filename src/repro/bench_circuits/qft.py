"""Quantum Fourier transform circuits (the paper's ``qft`` family).

The textbook QFT on ``n`` qubits: for each qubit a Hadamard followed by
controlled-phase rotations from every later qubit, lowered to the IBM
basis (each controlled-phase becomes 2 CNOTs + 3 U1 rotations, §II-A).
Totals are ``n + 5 * n(n-1)/2`` gates — matching Table II's qft_13
(403) and qft_20 (970) rows exactly; the paper's qft_10/qft_16 files
were approximate-QFT variants, available here via
:func:`approximate_qft`.

QFT is the stress case for routers: its interaction graph is the
complete graph K_n, so no perfect initial mapping exists on any sparse
device and SWAP quality dominates.
"""

from __future__ import annotations

import math

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError


def _controlled_phase(circ: QuantumCircuit, lam: float, control: int, target: int) -> None:
    """CU1(lam) lowered to 2 CNOTs + 3 U1 gates (qelib1 definition)."""
    circ.u1(lam / 2.0, control)
    circ.cx(control, target)
    circ.u1(-lam / 2.0, target)
    circ.cx(control, target)
    circ.u1(lam / 2.0, target)


def qft(num_qubits: int, name: str = "") -> QuantumCircuit:
    """Full QFT in the {1q, CNOT} basis (no final bit-reversal swaps,
    matching the benchmark files used by the paper and the BKA repo)."""
    if num_qubits < 1:
        raise CircuitError("qft needs at least 1 qubit")
    circ = QuantumCircuit(num_qubits, name or f"qft_{num_qubits}")
    for i in range(num_qubits):
        circ.h(i)
        for j in range(i + 1, num_qubits):
            _controlled_phase(circ, math.pi / float(2 ** (j - i)), j, i)
    return circ


def approximate_qft(
    num_qubits: int, degree: int, name: str = ""
) -> QuantumCircuit:
    """Approximate QFT: drop rotations smaller than ``pi / 2^degree``.

    Controlled-phase gates with ``j - i > degree`` contribute angles
    below the NISQ noise floor and are omitted — the standard AQFT
    construction (and the likely provenance of the paper's qft_10 /
    qft_16 gate counts).
    """
    if num_qubits < 1:
        raise CircuitError("approximate_qft needs at least 1 qubit")
    if degree < 1:
        raise CircuitError("approximate_qft degree must be >= 1")
    circ = QuantumCircuit(num_qubits, name or f"aqft{degree}_{num_qubits}")
    for i in range(num_qubits):
        circ.h(i)
        for j in range(i + 1, min(i + degree + 1, num_qubits)):
            _controlled_phase(circ, math.pi / float(2 ** (j - i)), j, i)
    return circ
