"""Registry of the paper's 26 Table II benchmarks with reported numbers.

Every row of Table II becomes a :class:`BenchmarkSpec` carrying the
paper's published measurements (BKA additional gates and runtime, SABRE
look-ahead-only ``g_la``, SABRE with reverse traversal ``g_op``, and
runtimes) next to a builder for our reproduction circuit.  Harnesses
print paper-vs-measured side by side from this one source of truth.

``None`` in the BKA columns marks the paper's "Out of Memory" rows
(ising_model_16 and qft_20 exhausted the 378 GB of memory on the
paper's evaluation server; our A* baseline models that failure mode
with the memory guard described in
:class:`repro.exceptions.SearchExhausted`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.bench_circuits.ising import ising_model
from repro.bench_circuits.qft import qft
from repro.bench_circuits.revlib_like import revlib_like
from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import ReproError


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table II row.

    Attributes:
        name: benchmark id as printed in the paper.
        category: ``small`` / ``sim`` / ``qft`` / ``large``.
        num_qubits: logical qubit count ``n``.
        paper_gates: ``g_ori``.
        paper_bka_added: BKA ``g_add`` (None = Out of Memory).
        paper_bka_time: BKA ``t_tot`` seconds (None = Out of Memory).
        paper_sabre_lookahead: SABRE ``g_la`` (first traversal only).
        paper_sabre_added: SABRE ``g_op`` (with reverse traversal).
        paper_sabre_time_first: SABRE ``t_1`` seconds.
        paper_sabre_time_total: SABRE ``t_op`` seconds (3 traversals).
        builder: zero-argument callable producing our circuit.
    """

    name: str
    category: str
    num_qubits: int
    paper_gates: int
    paper_bka_added: Optional[int]
    paper_bka_time: Optional[float]
    paper_sabre_lookahead: int
    paper_sabre_added: int
    paper_sabre_time_first: float
    paper_sabre_time_total: float
    builder: Callable[[], QuantumCircuit] = None  # type: ignore[assignment]

    def build(self) -> QuantumCircuit:
        """Construct the reproduction circuit for this row."""
        return self.builder()

    @property
    def paper_bka_oom(self) -> bool:
        """True for the paper's 'Out of Memory' rows."""
        return self.paper_bka_added is None


def _rev(name: str, n: int, g: int) -> Callable[[], QuantumCircuit]:
    return lambda: revlib_like(name, n, g)


def _ising(n: int) -> Callable[[], QuantumCircuit]:
    return lambda: ising_model(n)


def _qft(n: int) -> Callable[[], QuantumCircuit]:
    return lambda: qft(n, name=f"qft_{n}")


#: All 26 rows of Table II, in the paper's order.
TABLE_II: List[BenchmarkSpec] = [
    # --- small quantum arithmetic -------------------------------------
    BenchmarkSpec("4mod5-v1_22", "small", 5, 21, 15, 0.0, 6, 0, 0.0, 0.0,
                  _rev("4mod5-v1_22", 5, 21)),
    BenchmarkSpec("mod5mils_65", "small", 5, 35, 18, 0.0, 12, 0, 0.0, 0.0,
                  _rev("mod5mils_65", 5, 35)),
    BenchmarkSpec("alu-v0_27", "small", 5, 36, 33, 0.0, 30, 3, 0.0, 0.0,
                  _rev("alu-v0_27", 5, 36)),
    BenchmarkSpec("decod24-v2_43", "small", 4, 52, 27, 0.0, 9, 0, 0.0, 0.0,
                  _rev("decod24-v2_43", 4, 52)),
    BenchmarkSpec("4gt13_92", "small", 5, 66, 42, 0.0, 18, 0, 0.0, 0.0,
                  _rev("4gt13_92", 5, 66)),
    # --- quantum simulation (Ising) -----------------------------------
    BenchmarkSpec("ising_model_10", "sim", 10, 480, 18, 1.37, 39, 0,
                  0.003, 0.004, _ising(10)),
    BenchmarkSpec("ising_model_13", "sim", 13, 633, 60, 42.46, 66, 0,
                  0.005, 0.007, _ising(13)),
    BenchmarkSpec("ising_model_16", "sim", 16, 786, None, None, 84, 0,
                  0.008, 0.01, _ising(16)),
    # --- quantum Fourier transform ------------------------------------
    BenchmarkSpec("qft_10", "qft", 10, 200, 66, 0.22, 93, 54, 0.004, 0.103,
                  _qft(10)),
    BenchmarkSpec("qft_13", "qft", 13, 403, 177, 266.27, 204, 93,
                  0.015, 0.036, _qft(13)),
    BenchmarkSpec("qft_16", "qft", 16, 512, 267, 474.81, 276, 186,
                  0.028, 0.084, _qft(16)),
    BenchmarkSpec("qft_20", "qft", 20, 970, None, None, 429, 372,
                  0.034, 0.102, _qft(20)),
    # --- large quantum arithmetic -------------------------------------
    BenchmarkSpec("rd84_142", "large", 15, 343, 138, 1.97, 243, 105,
                  0.012, 0.035, _rev("rd84_142", 15, 343)),
    BenchmarkSpec("adr4_197", "large", 13, 3439, 1722, 4.53, 2112, 1614,
                  0.19, 0.49, _rev("adr4_197", 13, 3439)),
    BenchmarkSpec("radd_250", "large", 13, 3213, 1434, 2.23, 1488, 1275,
                  0.16, 0.48, _rev("radd_250", 13, 3213)),
    BenchmarkSpec("z4_268", "large", 11, 3073, 1383, 1.15, 1695, 1365,
                  0.15, 0.44, _rev("z4_268", 11, 3073)),
    BenchmarkSpec("sym6_145", "large", 14, 3888, 1806, 0.56, 1650, 1272,
                  0.19, 0.56, _rev("sym6_145", 14, 3888)),
    BenchmarkSpec("misex1_241", "large", 15, 4813, 2097, 0.3, 2904, 1521,
                  0.29, 0.89, _rev("misex1_241", 15, 4813)),
    BenchmarkSpec("rd73_252", "large", 10, 5321, 2160, 1.19, 2391, 2133,
                  0.31, 0.94, _rev("rd73_252", 10, 5321)),
    BenchmarkSpec("cycle10_2_110", "large", 12, 6050, 2802, 1.31, 2622, 2622,
                  0.44, 1.35, _rev("cycle10_2_110", 12, 6050)),
    BenchmarkSpec("square_root_7", "large", 15, 7630, 3132, 2.81, 5049, 2598,
                  0.63, 1.5, _rev("square_root_7", 15, 7630)),
    BenchmarkSpec("sqn_258", "large", 10, 10223, 4737, 16.92, 5934, 4344,
                  1.23, 3.52, _rev("sqn_258", 10, 10223)),
    BenchmarkSpec("rd84_253", "large", 12, 13658, 6483, 15.25, 7668, 6147,
                  1.82, 5.39, _rev("rd84_253", 12, 13658)),
    BenchmarkSpec("co14_215", "large", 15, 17936, 9183, 18.37, 10128, 8982,
                  3.18, 9.51, _rev("co14_215", 15, 17936)),
    BenchmarkSpec("sym9_193", "large", 10, 34881, 17496, 72.61, 26355, 16653,
                  11.11, 30.17, _rev("sym9_193", 10, 34881)),
    BenchmarkSpec("9symml_195", "large", 11, 34881, 17496, 81.73, 25368, 17268,
                  11.1, 31.42, _rev("9symml_195", 11, 34881)),
]

#: The nine benchmarks plotted in Figure 8 (decay trade-off).
FIGURE_8_NAMES: Tuple[str, ...] = (
    "qft_10",
    "qft_13",
    "qft_16",
    "qft_20",
    "rd84_142",
    "radd_250",
    "cycle10_2_110",
    "co14_215",
    "sym9_193",
)

_BY_NAME: Dict[str, BenchmarkSpec] = {spec.name: spec for spec in TABLE_II}


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a Table II row by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {sorted(_BY_NAME)}"
        ) from None


def build_benchmark(name: str) -> QuantumCircuit:
    """Construct the reproduction circuit for a Table II row."""
    return get_benchmark(name).build()


def suite(category: str) -> List[BenchmarkSpec]:
    """All rows of one category (``small``/``sim``/``qft``/``large``)."""
    rows = [spec for spec in TABLE_II if spec.category == category]
    if not rows:
        raise ReproError(
            f"unknown category {category!r}; available: {sorted(categories())}"
        )
    return rows


def categories() -> List[str]:
    """Category names in table order, deduplicated."""
    seen: List[str] = []
    for spec in TABLE_II:
        if spec.category not in seen:
            seen.append(spec.category)
    return seen
