"""Synthetic stand-ins for the RevLib benchmark files.

The paper's ``small`` and ``large`` rows are RevLib reversible-function
circuits that we cannot redistribute or download offline.  Each is
replaced by a deterministic synthetic circuit with the **same qubit
count and exact gate count**, generated from Toffoli/CNOT blocks with
locality-biased wiring (see :mod:`repro.bench_circuits.toffoli_blocks`
and the Substitutions table in DESIGN.md).

Fidelity of the substitution, by construction:

- identical ``n`` and ``g_ori`` per row;
- CNOT fraction in the 40-55% band of lowered reversible logic;
- heavy pair-reuse / sparse interaction graphs for the small family
  (window 3), so a perfect initial mapping exists on the Q20 Tokyo —
  preserving the paper's headline small-benchmark behaviour;
- wider working sets for the large family (window scaled with n), so
  perfect mappings generally do not exist — preserving the paper's
  observation that large benchmarks always need SWAPs.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.bench_circuits.toffoli_blocks import reversible_block_circuit
from repro.circuits.circuit import QuantumCircuit


def _stable_seed(name: str) -> int:
    """Deterministic per-name seed (stable across Python processes)."""
    digest = hashlib.sha256(name.encode()).digest()
    return int.from_bytes(digest[:4], "big")


def revlib_like(
    name: str,
    num_qubits: int,
    num_gates: int,
    window: Optional[int] = None,
    seed: Optional[int] = None,
) -> QuantumCircuit:
    """Build the synthetic stand-in for RevLib circuit ``name``.

    Args:
        name: benchmark id (e.g. ``"rd84_142"``); also seeds the RNG so
            every row is reproducible in isolation.
        num_qubits / num_gates: the paper's ``n`` and ``g_ori``.
        window: operand working-set width; defaults to 3 for n <= 5
            (sparse small-arithmetic interaction graphs) and
            ``max(4, n // 3)`` otherwise.
        seed: override the name-derived seed.
    """
    if window is None:
        window = 3 if num_qubits <= 5 else max(4, num_qubits // 3)
    return reversible_block_circuit(
        num_qubits,
        num_gates,
        seed=_stable_seed(name) if seed is None else seed,
        window=window,
        name=name,
    )
