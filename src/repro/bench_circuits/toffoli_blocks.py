"""Reversible-logic building blocks: Toffoli ladders and block circuits.

RevLib circuits (the paper's ``small`` and ``large`` families) are
reversible functions synthesised from NOT / CNOT / Toffoli gates and
then lowered to the {1q, CNOT} basis.  After lowering, a Toffoli is the
15-gate network of paper Fig. 1 (6 CNOTs), which fixes the structural
statistics of the whole family: ~40-50% CNOTs, heavy qubit-pair reuse,
and interactions concentrated on small working sets of wires.

These helpers generate such structure directly, providing the synthetic
stand-ins for the RevLib files (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompositions import toffoli_decomposition
from repro.exceptions import CircuitError


def mct_ladder(
    num_qubits: int, num_rounds: int = 1, name: str = ""
) -> QuantumCircuit:
    """Multi-controlled-Toffoli ladder lowered to the basis.

    Each round applies Toffolis along the wire ladder
    ``(0,1->2), (1,2->3), ...`` — the canonical carry-chain shape of
    ripple adders (adr4/radd-style arithmetic).
    """
    if num_qubits < 3:
        raise CircuitError("mct_ladder needs at least 3 qubits")
    circ = QuantumCircuit(num_qubits, name or f"mct_ladder_{num_qubits}")
    for _ in range(num_rounds):
        for q in range(num_qubits - 2):
            circ.extend(toffoli_decomposition(q, q + 1, q + 2))
    return circ


def reversible_block_circuit(
    num_qubits: int,
    target_gates: int,
    seed: int = 0,
    window: int = 4,
    toffoli_fraction: float = 0.5,
    cnot_fraction: float = 0.35,
    name: str = "",
) -> QuantumCircuit:
    """Random reversible-style circuit with locality-biased wiring.

    Emits a stream of blocks — Toffoli (lowered to 15 gates), CNOT, or
    a single-qubit gate — whose operands are drawn from a sliding
    window that random-walks across the register, mimicking how
    arithmetic circuits touch neighbouring register bits.  Stops within
    one block of ``target_gates`` and pads with single-qubit T gates to
    land exactly on it.

    Args:
        num_qubits: register width.
        target_gates: exact output gate count.
        seed: deterministic RNG seed.
        window: working-set width for operand selection (>= 2; use 3
            for the very sparse small-benchmark interaction graphs).
        toffoli_fraction / cnot_fraction: block mix; the remainder are
            single-qubit gates.
    """
    if num_qubits < 2:
        raise CircuitError("reversible_block_circuit needs >= 2 qubits")
    if target_gates < 1:
        raise CircuitError("target_gates must be positive")
    if window < 2:
        raise CircuitError("window must be >= 2")
    rng = random.Random(seed)
    circ = QuantumCircuit(
        num_qubits, name or f"revblock_{num_qubits}q_{target_gates}g_s{seed}"
    )
    window = min(window, num_qubits)
    center = rng.randrange(num_qubits)
    one_qubit_pool = ("x", "h", "t", "tdg")

    def window_qubits(count: int) -> List[int]:
        lo = max(0, min(center - window // 2, num_qubits - window))
        return rng.sample(range(lo, lo + window), count)

    while circ.num_gates < target_gates:
        # Drift the working set like a carry chain moving along a register.
        if rng.random() < 0.3:
            center = min(max(center + rng.choice((-1, 1)), 0), num_qubits - 1)
        remaining = target_gates - circ.num_gates
        draw = rng.random()
        if draw < toffoli_fraction and remaining >= 15 and window >= 3 and num_qubits >= 3:
            c1, c2, t = window_qubits(3)
            circ.extend(toffoli_decomposition(c1, c2, t))
        elif draw < toffoli_fraction + cnot_fraction and remaining >= 1:
            a, b = window_qubits(2)
            circ.cx(a, b)
        else:
            circ.add_gate(rng.choice(one_qubit_pool), window_qubits(1)[0])
    return circ


def cnot_fraction_of(circuit: QuantumCircuit) -> float:
    """Fraction of gates that are CNOTs (a family fingerprint)."""
    if circuit.num_gates == 0:
        return 0.0
    return circuit.gate_counts().get("cx", 0) / circuit.num_gates
