"""Trotterized 1D Ising-model circuits (the paper's ``sim`` family).

The transverse-field Ising Hamiltonian on a chain,
``H = -J sum Z_i Z_{i+1} - h sum X_i``, trotterises into layers of
nearest-neighbour ZZ interactions (each lowering to CX-RZ-CX) plus
per-qubit local rotations.  Because every two-qubit interaction is
chain-nearest-neighbour, a device containing a Hamiltonian path (the
Q20 Tokyo does) admits a *perfect* initial mapping — the paper's §V-A1:
"For ising model benchmarks, the optimal solution is trivial ...
SABRE can still find the optimal solution" with zero added gates.

Gate counting: with the default 10 Trotter steps and the initial
Hadamard layer, the totals are ``n + 10 * (3(n-1) + 2n)`` =
480 / 633 / 786 gates for n = 10 / 13 / 16 — exactly the ``g_ori``
column of Table II.
"""

from __future__ import annotations

from repro.circuits.circuit import QuantumCircuit
from repro.exceptions import CircuitError


def ising_model(
    num_qubits: int,
    steps: int = 10,
    coupling_angle: float = -0.15,
    field_angle: float = 0.07,
    name: str = "",
) -> QuantumCircuit:
    """Trotterized 1D transverse-field Ising evolution.

    Args:
        num_qubits: chain length.
        steps: Trotter steps (paper benchmarks correspond to 10).
        coupling_angle: ZZ rotation angle per step (J * dt).
        field_angle: local-field rotation angle per step (h * dt).
        name: circuit name; defaults to ``ising_model_<n>``.

    Structure per step: ``CX-RZ-CX`` on every chain edge, then ``RZ``
    and ``RX`` on every qubit.  An initial Hadamard layer prepares the
    transverse superposition.
    """
    if num_qubits < 2:
        raise CircuitError("ising_model needs at least 2 qubits")
    if steps < 1:
        raise CircuitError("ising_model needs at least 1 Trotter step")
    circ = QuantumCircuit(num_qubits, name or f"ising_model_{num_qubits}")
    for q in range(num_qubits):
        circ.h(q)
    for _ in range(steps):
        for q in range(num_qubits - 1):
            circ.cx(q, q + 1)
            circ.rz(2.0 * coupling_angle, q + 1)
            circ.cx(q, q + 1)
        for q in range(num_qubits):
            circ.rz(2.0 * field_angle, q)
        for q in range(num_qubits):
            circ.rx(2.0 * field_angle, q)
    return circ
