"""The paper's benchmark circuit families (Table II workloads).

Four families, matching §V "Benchmarks":

- ``small``: 5-qubit reversible arithmetic (RevLib) — synthesised here
  as locality-biased Toffoli-block circuits with the paper's exact
  qubit and gate counts.
- ``sim``: trotterized 1D Ising-model simulation (from ScaffCC).  Our
  generator reproduces the paper's gate counts *exactly* (10 Trotter
  steps + initial Hadamard layer gives 480/633/786 gates for 10/13/16
  qubits).
- ``qft``: quantum Fourier transform in the {1q, CNOT} basis.  The full
  textbook QFT matches the paper's qft_13 (403) and qft_20 (970) gate
  counts exactly.
- ``large``: big RevLib arithmetic — synthesised Toffoli-ladder
  circuits matched to each row's (n, g) profile.

:mod:`repro.bench_circuits.suites` carries the paper's reported numbers
for every Table II row so harnesses can print paper-vs-measured.
"""

from repro.bench_circuits.ising import ising_model
from repro.bench_circuits.qft import qft, approximate_qft
from repro.bench_circuits.toffoli_blocks import (
    reversible_block_circuit,
    mct_ladder,
)
from repro.bench_circuits.revlib_like import revlib_like
from repro.bench_circuits.suites import (
    BenchmarkSpec,
    TABLE_II,
    FIGURE_8_NAMES,
    get_benchmark,
    build_benchmark,
    suite,
    categories,
)

__all__ = [
    "ising_model",
    "qft",
    "approximate_qft",
    "reversible_block_circuit",
    "mct_ladder",
    "revlib_like",
    "BenchmarkSpec",
    "TABLE_II",
    "FIGURE_8_NAMES",
    "get_benchmark",
    "build_benchmark",
    "suite",
    "categories",
]
