"""Exception hierarchy for the :mod:`repro` library.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries.  Subclasses are
organised by subsystem: circuit construction, QASM parsing, hardware
modelling, routing, and baseline search.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class CircuitError(ReproError):
    """Invalid circuit construction or manipulation.

    Raised for out-of-range qubit indices, duplicate qubit operands,
    unknown gate names, and malformed gate parameter lists.
    """


class QasmError(ReproError):
    """Error while lexing or parsing an OpenQASM 2.0 program."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class HardwareError(ReproError):
    """Invalid hardware model (malformed coupling graph, bad qubit ids)."""


class MappingError(ReproError):
    """Error during qubit mapping (routing or layout search).

    Raised when a circuit cannot be mapped to a device, e.g. the circuit
    uses more logical qubits than the device has physical qubits, or the
    coupling graph is disconnected across qubits the circuit entangles.
    """


class SearchExhausted(MappingError):
    """An exhaustive baseline search exceeded its node or memory budget.

    The Zulehner-style A* baseline explores an exponentially large
    search space; on the paper's evaluation server this exhausted more
    than 378 GB of memory (the "Out of Memory" rows in Table II).  Our
    A* baseline models the same failure mode with a *memory guard*: a
    configurable node-expansion cap (plus an optional time budget) that
    raises this exception when tripped, carrying the number of expanded
    nodes for reporting.  Messages raised by
    :class:`repro.baselines.astar.AStarMapper` name the guard
    explicitly so logs read consistently with this docstring.
    """

    def __init__(self, message: str, nodes_expanded: int = 0) -> None:
        self.nodes_expanded = nodes_expanded
        super().__init__(message)


class VerificationError(ReproError):
    """A routed circuit failed compliance or equivalence verification."""
