"""Ship-once shared state for multi-process trial sweeps.

The plain process executor of :mod:`repro.engine.trials` pickles the
full ``(circuit, coupling, config, distance, pipeline)`` payload for
every one of the K trials even though only the seed differs, and the
single-core lockstep ensemble (:mod:`repro.engine.ensemble`) never
leaves its process.  This module composes the two wins:

- **Shard planning** (:func:`plan_shards`): partition the K seeds into
  P contiguous, balanced shards.  Trials are seed-independent, so any
  partition produces the exact per-seed results of the serial sweep —
  concatenating shard results in order restores the full seed order
  and :func:`repro.engine.trials.select_winner` stays the single
  reducer.
- **An executor chooser** (:func:`choose_executor`): the
  K × cores × ensemble-eligibility decision table behind
  ``executor="auto"`` — serial for one trial, the in-process lockstep
  ensemble on one core, sharded hybrid ensembles across cores, and the
  per-trial process pool for ensemble-ineligible configurations.
- **The ship-once layer** (:class:`SweepSpec` / :func:`run_hybrid_sweep`):
  one :class:`~concurrent.futures.ProcessPoolExecutor` whose
  *initializer* installs the sweep's immutable inputs — circuit,
  coupling, config, pipeline name — into a fingerprint-keyed
  worker-side cache exactly once per worker.  The distance matrix
  travels through :class:`multiprocessing.shared_memory.SharedMemory`,
  so even on large devices the workers map the parent's table
  zero-copy instead of unpickling their own.  After the initializer
  runs, each shard submission carries only ``(fingerprint, seeds)``.

Fingerprints reuse :mod:`repro.engine.cache`'s content addresses
(:func:`~repro.engine.cache.circuit_fingerprint` /
:func:`~repro.engine.cache.coupling_fingerprint`), and every worker
pre-seeds its process-local engine cache with the shipped distance so
no code path ever repeats the Floyd-Warshall step.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.heuristic import HeuristicConfig
from repro.core.result import MappingResult
from repro.core.scoring import FlatDistance
from repro.engine.cache import circuit_fingerprint, coupling_fingerprint
from repro.exceptions import ReproError
from repro.hardware.coupling import CouplingGraph

#: Environment knob selecting the multiprocessing start method for the
#: hybrid pool — the same variable the service worker tier honours
#: (:data:`repro.service.workers.MP_START_METHOD_ENV`), so one setting
#: governs every process boundary in a deployment.
MP_START_METHOD_ENV = "REPRO_MP_START_METHOD"


# ----------------------------------------------------------------------
# Shard planning and executor choice
# ----------------------------------------------------------------------


def plan_shards(seeds: Sequence[int], num_shards: int) -> List[List[int]]:
    """Partition ``seeds`` into at most ``num_shards`` contiguous shards.

    Balanced to within one seed (the first ``K % P`` shards take the
    extra), never more shards than seeds, order-preserving — so
    concatenating per-shard results restores the original seed order.
    """
    if not seeds:
        raise ReproError("plan_shards needs at least one seed")
    if num_shards < 1:
        raise ValueError(
            f"num_shards must be a positive integer, got {num_shards!r}"
        )
    seeds = list(seeds)
    count = min(num_shards, len(seeds))
    base, extra = divmod(len(seeds), count)
    shards: List[List[int]] = []
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        shards.append(seeds[start : start + size])
        start += size
    return shards


@dataclass(frozen=True)
class ExecutorDecision:
    """One resolved ``executor="auto"`` choice, with its rationale."""

    executor: str
    jobs: int
    num_seeds: int
    cores: int
    eligible: bool
    reason: str

    def as_properties(self) -> Dict[str, object]:
        """JSON-safe summary for reports and benchmark metadata."""
        return {
            "executor": self.executor,
            "jobs": self.jobs,
            "num_seeds": self.num_seeds,
            "cores": self.cores,
            "ensemble_eligible": self.eligible,
            "reason": self.reason,
        }


def choose_executor(
    num_seeds: int,
    cores: Optional[int] = None,
    eligible: bool = True,
    jobs: Optional[int] = None,
) -> ExecutorDecision:
    """The automatic K × cores × eligibility executor decision.

    ==========  =======  ==========  ===========================
    trials (K)  workers  eligible?   choice
    ==========  =======  ==========  ===========================
    1           any      any         serial
    >1          1        yes         ensemble (in-process)
    >1          >1       yes         hybrid (sharded ensembles)
    >1          >1       no          process (per-trial pool)
    >1          1        no          serial
    ==========  =======  ==========  ===========================

    ``cores`` defaults to the host's CPU count; ``jobs`` (explicit
    pool width) overrides the ``min(K, cores)`` sizing.  Deterministic
    in its inputs — callers that need host-independent choices pass
    ``cores`` explicitly.
    """
    if num_seeds < 1:
        raise ValueError(f"num_seeds must be >= 1, got {num_seeds!r}")
    if jobs is not None and (isinstance(jobs, bool) or jobs < 1):
        raise ValueError(f"jobs must be a positive integer, got {jobs!r}")
    cores = cores if cores is not None else os.cpu_count() or 1
    width = jobs if jobs is not None else max(1, min(num_seeds, cores))
    if num_seeds == 1:
        return ExecutorDecision(
            "serial", 1, num_seeds, cores, eligible,
            "a single trial has nothing to fan out",
        )
    if eligible:
        if width > 1:
            return ExecutorDecision(
                "hybrid", width, num_seeds, cores, eligible,
                f"{num_seeds} ensemble-eligible trials across {width} "
                "workers: sharded lockstep ensembles",
            )
        return ExecutorDecision(
            "ensemble", 1, num_seeds, cores, eligible,
            "one worker: the in-process lockstep ensemble is the "
            "fastest single-core sweep",
        )
    if width > 1:
        return ExecutorDecision(
            "process", width, num_seeds, cores, eligible,
            "ensemble-ineligible configuration: per-trial process pool",
        )
    return ExecutorDecision(
        "serial", 1, num_seeds, cores, eligible,
        "one worker and no lockstep kernel: plain serial sweep",
    )


# ----------------------------------------------------------------------
# Ship-once sweep state
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _DistanceHandle:
    """How one sweep's distance matrix reaches the workers.

    ``shm_name`` names a :class:`~multiprocessing.shared_memory.
    SharedMemory` block the workers attach zero-copy; ``raw`` is the
    pickled-bytes fallback for hosts where shared memory is
    unavailable.  Exactly one of the two is set.
    """

    n: int
    symmetric: bool
    shm_name: Optional[str] = None
    raw: Optional[bytes] = None


@dataclass(frozen=True)
class SweepSpec:
    """Everything immutable a hybrid sweep ships to each worker, once.

    Crosses the process boundary exactly once per worker (via the pool
    initializer); afterwards shard submissions reference it by
    ``fingerprint`` only.
    """

    fingerprint: str
    circuit: QuantumCircuit
    coupling: CouplingGraph
    config: Optional[HeuristicConfig]
    num_traversals: int
    pipeline: str
    eligible: bool
    distance: _DistanceHandle


def sweep_fingerprint(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    config: Optional[HeuristicConfig],
    num_traversals: int,
    pipeline: str,
    distance: FlatDistance,
) -> str:
    """Content address of one sweep's shared state (sha256 hex digest).

    Built from the engine cache's circuit/coupling fingerprints plus
    every knob that changes a trial's output, and a digest of the
    actual distance buffer (callers may pass custom matrices that the
    coupling fingerprint alone cannot distinguish).
    """
    distance_digest = hashlib.sha256(distance.buf.tobytes()).hexdigest()
    parts = (
        "repro-hybrid-sweep-v1",
        circuit_fingerprint(circuit),
        coupling_fingerprint(coupling),
        repr(config),
        num_traversals,
        pipeline,
        distance.n,
        distance.symmetric,
        distance_digest,
    )
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


@dataclass
class _WorkerSweep:
    """One installed sweep in a worker process."""

    spec: SweepSpec
    distance: FlatDistance
    shm: Optional[object] = None  # keeps the mapping alive


#: Worker-process sweep cache, keyed by sweep fingerprint.  Installed
#: by the pool initializer; shard submissions only ever look up.
_WORKER_SWEEPS: Dict[str, _WorkerSweep] = {}


def _attach_distance(handle: _DistanceHandle):
    """Materialise a worker-side FlatDistance from its transport handle.

    Shared-memory blocks attach zero-copy: the worker's ``FlatDistance``
    wraps a ``memoryview`` of the parent's table cast to doubles —
    ``len``, indexing, and ``numpy.frombuffer`` all work on it, so both
    the vector and fast scorers consume it unchanged.
    """
    if handle.shm_name is not None:
        from multiprocessing import shared_memory

        # Attaching re-registers the segment with the resource tracker
        # (Python < 3.13 has no ``track=False``), but pool workers share
        # the parent's tracker process and registration is
        # set-idempotent there, so the parent's single ``unlink`` still
        # unregisters exactly once.  Workers never close or unlink: they
        # exit via ``os._exit`` when the pool shuts down, and the
        # parent owns the segment's lifecycle.
        shm = shared_memory.SharedMemory(name=handle.shm_name)
        size = handle.n * handle.n * 8
        view = shm.buf[:size].cast("d")
        return FlatDistance(handle.n, view, handle.symmetric), shm
    if handle.raw is None:  # pragma: no cover — constructor invariant
        raise ReproError("distance handle carries neither shm nor bytes")
    from array import array

    buf = array("d")
    buf.frombytes(handle.raw)
    return FlatDistance(handle.n, buf, handle.symmetric), None


def _install_sweep(spec: SweepSpec) -> None:
    """Idempotently install one sweep's shared state in this worker."""
    if spec.fingerprint in _WORKER_SWEEPS:
        return
    distance, shm = _attach_distance(spec.distance)
    # Pre-seed the process-local engine cache: any path in this worker
    # that resolves the device's distance itself now hits instead of
    # re-running Floyd-Warshall.
    from repro.engine.cache import GLOBAL_CACHE

    GLOBAL_CACHE.seed_flat_distance(spec.coupling, distance)
    _WORKER_SWEEPS[spec.fingerprint] = _WorkerSweep(
        spec=spec, distance=distance, shm=shm
    )


def _init_sweep_worker(spec: SweepSpec) -> None:
    """Pool initializer: the one crossing of the heavy payload."""
    _install_sweep(spec)


def _run_sweep_shard(
    fingerprint: str, seeds: Tuple[int, ...], trace_ctx=None
):
    """Worker entry point: run one shard of seeds against installed state.

    The submission payload is exactly ``(fingerprint, seeds)`` — no
    circuit, coupling, config, or distance ever rides along.
    ``trace_ctx`` (``(trace_id, parent_span_id, profile?)``) is the
    traced-request extension: when set, the shard records a
    ``shard.sweep`` span (plus per-trial pipeline spans and, with
    ``profile``, router-step aggregates) and the return value becomes
    ``(results, serialized_span_batch)`` instead of the bare list.
    """
    sweep = _WORKER_SWEEPS.get(fingerprint)
    if sweep is None:
        raise ReproError(
            f"hybrid worker has no sweep {fingerprint[:12]}…; the pool "
            "initializer did not run (or ran for a different sweep)"
        )
    if trace_ctx is None:
        return _execute_shard(sweep, seeds)
    import time as _time

    from repro.telemetry.profile import profiled_routing
    from repro.telemetry.trace import Tracer, span, tracing

    trace_id, parent_id, profile = trace_ctx
    tracer = Tracer(trace_id)
    with tracing(tracer, parent_id=parent_id):
        with span("shard.sweep") as shard_span:
            shard_span.set("pid", os.getpid())
            shard_span.set("seeds", len(seeds))
            if profile:
                with profiled_routing() as profiler:
                    results = _execute_shard(sweep, seeds)
                if not profiler.empty:
                    tracer.add_raw(
                        "router.profile",
                        shard_span.span_id,
                        start=_time.time(),
                        wall_seconds=profiler.kernel_seconds,
                        attrs=profiler.to_dict(),
                    )
            else:
                results = _execute_shard(sweep, seeds)
    return results, tracer.export()


def _execute_shard(
    sweep: _WorkerSweep, seeds: Tuple[int, ...]
) -> List[MappingResult]:
    """The shard's actual trial sweep (shared by both trace modes)."""
    spec = sweep.spec
    if spec.eligible:
        from repro.engine.ensemble import run_ensemble_trials

        return run_ensemble_trials(
            spec.circuit,
            spec.coupling,
            seeds,
            config=spec.config,
            num_traversals=spec.num_traversals,
            distance=sweep.distance,
            pipeline=spec.pipeline,
        )
    # Ensemble-ineligible configurations still benefit from the
    # ship-once layer: per-seed serial trials against the installed
    # state, byte-identical to the serial executor.
    from repro.engine.trials import _run_one_trial

    return [
        _run_one_trial(
            spec.circuit,
            spec.coupling,
            spec.config,
            seed,
            spec.num_traversals,
            sweep.distance,
            spec.pipeline,
        )
        for seed in seeds
    ]


def _mp_context():
    """The hybrid pool's start-method context (honours the service's
    ``REPRO_MP_START_METHOD`` knob; platform default otherwise)."""
    method = os.environ.get(MP_START_METHOD_ENV, "").strip().lower()
    if method:
        try:
            return multiprocessing.get_context(method)
        except ValueError:
            pass
    return multiprocessing.get_context()


def build_sweep_spec(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    config: Optional[HeuristicConfig],
    num_traversals: int,
    pipeline: str,
    distance: FlatDistance,
    eligible: bool,
    use_shared_memory: bool = True,
) -> Tuple[SweepSpec, Optional[object]]:
    """Build one sweep's ship-once spec; returns ``(spec, shm_or_None)``.

    The caller owns the returned shared-memory block (close + unlink
    after the pool is done); ``None`` means the distance travels as
    bytes inside the spec instead.
    """
    raw = distance.buf.tobytes()
    handle = None
    shm = None
    if use_shared_memory:
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=len(raw))
            shm.buf[: len(raw)] = raw
            handle = _DistanceHandle(
                distance.n, distance.symmetric, shm_name=shm.name
            )
        except Exception:
            shm = None
    if handle is None:
        handle = _DistanceHandle(distance.n, distance.symmetric, raw=raw)
    spec = SweepSpec(
        fingerprint=sweep_fingerprint(
            circuit, coupling, config, num_traversals, pipeline, distance
        ),
        circuit=circuit,
        coupling=coupling,
        config=config,
        num_traversals=num_traversals,
        pipeline=pipeline,
        eligible=eligible,
        distance=handle,
    )
    return spec, shm


def run_hybrid_sweep(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    shards: Sequence[Sequence[int]],
    config: Optional[HeuristicConfig] = None,
    num_traversals: int = 3,
    distance: Optional[FlatDistance] = None,
    pipeline: str = "paper_default",
    eligible: bool = True,
) -> List[MappingResult]:
    """Run pre-planned seed shards across a ship-once worker pool.

    One worker per shard; each worker's initializer installs the sweep
    spec (heavy payload crosses once), then every shard submission is
    just ``(fingerprint, seeds)``.  Results come back concatenated in
    seed order — per-seed byte-identical to the serial executor, so
    the caller's winner selection is unchanged.

    Raises whatever the pool raises (``BrokenProcessPool``, ``OSError``)
    — callers downgrade to the in-process ensemble or serial sweep.
    """
    if not shards or not any(shards):
        raise ReproError("run_hybrid_sweep needs at least one shard of seeds")
    if distance is None:
        from repro.engine.cache import get_flat_distance_matrix

        distance = get_flat_distance_matrix(coupling)
    elif not isinstance(distance, FlatDistance):
        distance = FlatDistance.from_matrix(distance)
    spec, shm = build_sweep_spec(
        circuit, coupling, config, num_traversals, pipeline, distance,
        eligible,
    )
    # Traced request?  Ship the trace context into every shard so the
    # shard's spans (and router-profile aggregates) parent under this
    # sweep; untraced requests pass None and shards return bare lists.
    from repro.telemetry.profile import active_router_profiler
    from repro.telemetry.trace import current_span_id, current_tracer

    tracer = current_tracer()
    profiler = active_router_profiler()
    trace_ctx = None
    if tracer is not None:
        trace_ctx = (
            tracer.trace_id, current_span_id(), profiler is not None
        )
    try:
        with ProcessPoolExecutor(
            max_workers=len(shards),
            mp_context=_mp_context(),
            initializer=_init_sweep_worker,
            initargs=(spec,),
        ) as pool:
            futures = [
                pool.submit(
                    _run_sweep_shard, spec.fingerprint, tuple(shard),
                    trace_ctx,
                )
                for shard in shards
            ]
            outcomes = [future.result() for future in futures]
        if trace_ctx is None:
            shard_results = outcomes
        else:
            shard_results = []
            for results, spans in outcomes:
                shard_results.append(results)
                tracer.add_spans(spans)
                if profiler is not None:
                    # Fold the shards' router aggregates into the
                    # parent's profiler so the top-level router.profile
                    # span covers the whole sweep.
                    for span_dict in spans:
                        if span_dict.get("name") == "router.profile":
                            profiler.merge_dict(
                                span_dict.get("attrs") or {}
                            )
    finally:
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
    return [result for shard in shard_results for result in shard]
