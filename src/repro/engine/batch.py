"""Suite-level fan-out: compile many circuits, best-of-K each.

``compile_many`` is the heavy-traffic entry point: it flattens a whole
benchmark suite into (circuit, seed) trial jobs, fans them across a
process pool, and reduces each circuit's trials to a winner with the
same deterministic selection rule as :mod:`repro.engine.trials`.
Flattening at the *trial* level (rather than one worker per circuit)
keeps all workers busy even when the suite mixes second-long and
millisecond-long circuits.

The device's distance matrix is resolved once in the parent through the
engine cache and shipped to every job, so a batch run pays the
O(N^3) Floyd-Warshall preprocessing exactly once per device.  Each
circuit's compile-once flat IR is likewise resolved through the
per-process engine cache inside the trial (see
:func:`repro.engine.cache.get_flat_dag`), so no worker lowers the same
circuit twice regardless of how many of its trials it picks up.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.circuits.circuit import QuantumCircuit
from repro.core.heuristic import HeuristicConfig
from repro.core.result import MappingResult
from repro.engine.cache import get_flat_distance_matrix
from repro.engine.trials import (
    EXECUTORS,
    OBJECTIVES,
    TrialResult,
    _run_one_trial,
    run_trials,
    select_winner,
)
from repro.exceptions import ReproError
from repro.hardware.coupling import CouplingGraph


@dataclass
class TrialMetrics:
    """Slim per-trial summary shipped back from pool workers.

    A full :class:`~repro.core.result.MappingResult` drags its routed
    circuits through pickle (hundreds of KB per trial on Table II
    circuits); the winner-selection objectives only need these scalars.
    Field names mirror the ``MappingResult`` properties so the
    :data:`~repro.engine.trials.OBJECTIVES` functions score either.
    """

    num_swaps: int
    added_gates: int
    routed_depth: int
    original_gates: int
    runtime_seconds: float


def _to_metrics(result: MappingResult) -> TrialMetrics:
    """The one MappingResult -> TrialMetrics projection; serial and
    pooled paths must score trials from identical data."""
    return TrialMetrics(
        num_swaps=result.num_swaps,
        added_gates=result.added_gates,
        routed_depth=result.routed_depth,
        original_gates=result.original_gates,
        runtime_seconds=result.runtime_seconds,
    )


def _metrics_worker(payload) -> TrialMetrics:
    """Pool entry point: run one trial, return scalars only."""
    return _to_metrics(_run_one_trial(*payload))


def _result_worker(payload) -> MappingResult:
    """Pool entry point for winner rebuilds: full result shipped back."""
    return _run_one_trial(*payload)


@dataclass
class CircuitReport:
    """Structured per-circuit outcome of a batch compilation.

    ``trial_seconds`` sums the workers' compile times (CPU cost);
    the batch-level ``wall_seconds`` reflects actual elapsed time.
    """

    name: str
    num_qubits: int
    original_gates: int
    added_gates: int
    num_swaps: int
    routed_depth: int
    winning_seed: int
    objective_value: float
    trial_seconds: float
    trial_swaps: List[int] = field(default_factory=list)
    result: Optional[MappingResult] = None

    def as_row(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "n": self.num_qubits,
            "g_ori": self.original_gates,
            "g_add": self.added_gates,
            "swaps": self.num_swaps,
            "d_out": self.routed_depth,
            "seed*": self.winning_seed,
            "t_sec": round(self.trial_seconds, 4),
        }


@dataclass
class BatchReport:
    """Everything :func:`compile_many` produces."""

    device_name: str
    objective: str
    num_trials: int
    jobs: int
    reports: List[CircuitReport]
    wall_seconds: float
    executor: str = "auto"

    @property
    def total_added_gates(self) -> int:
        return sum(r.added_gates for r in self.reports)

    def summary_lines(self) -> List[str]:
        lines = [
            f"device={self.device_name} circuits={len(self.reports)} "
            f"trials={self.num_trials} jobs={self.jobs} "
            f"executor={self.executor} "
            f"objective={self.objective} wall={self.wall_seconds:.2f}s",
        ]
        for report in self.reports:
            lines.append(
                f"  {report.name:20s} g_add={report.added_gates:5d} "
                f"d_out={report.routed_depth:5d} seed*={report.winning_seed}"
            )
        return lines


def compile_many(
    circuits: Sequence[QuantumCircuit],
    coupling: CouplingGraph,
    num_trials: int = 8,
    seed: int = 0,
    jobs: int = 1,
    objective: str = "g_add",
    config: Optional[HeuristicConfig] = None,
    num_traversals: int = 3,
    keep_results: bool = True,
    pipeline: str = "paper_default",
    executor: str = "auto",
) -> BatchReport:
    """Compile every circuit best-of-``num_trials`` across ``jobs`` workers.

    Args:
        circuits: the suite; names are taken from each circuit.
        coupling: shared target device.
        num_trials: seeded trials per circuit (seeds ``seed..seed+K-1``).
        seed: base seed; all circuits share the same seed pool so runs
            are reproducible and circuits are comparable across runs.
        jobs: ``1`` compiles in-process; ``>1`` fans trial jobs across a
            :class:`~concurrent.futures.ProcessPoolExecutor` (or sizes
            the per-circuit sweep for ``executor="hybrid"``).
        objective: winner-selection metric (see
            :data:`repro.engine.trials.OBJECTIVES`).  Only the metric
            objectives are supported here: pooled batch workers ship
            slim :class:`TrialMetrics` back, not full results with
            property sets, so ``property:`` objectives are rejected.
        config: heuristic knobs shared by every trial.
        num_traversals: traversals per trial (odd).
        keep_results: attach each winner's full
            :class:`~repro.core.result.MappingResult` to its report
            (disable to shed memory on very large suites).
        pipeline: pass-pipeline preset each trial executes (shipped to
            workers by name, like every other payload field).
        executor: ``"auto"`` keeps the classic batch behaviour (the
            trial-flattened metrics pool when ``jobs > 1``, else the
            in-process loop).  ``"serial"``/``"process"`` force those
            paths, and ``"ensemble"``/``"hybrid"`` run each circuit's
            sweep through :func:`repro.engine.trials.run_trials` on the
            lockstep kernel (single-process or sharded across a
            ship-once worker pool) — per-seed results identical to
            serial, with the full per-trial swap lists on each report.

    Returns:
        :class:`BatchReport` with one :class:`CircuitReport` per input
        circuit, in input order.
    """
    if num_trials < 1:
        raise ReproError("compile_many needs num_trials >= 1")
    if jobs < 1:
        raise ValueError(
            f"compile_many needs jobs >= 1, got {jobs!r}"
        )
    if executor != "auto" and executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r}; available: "
            f"{['auto'] + [e for e in EXECUTORS if e != 'auto']}"
        )
    objective_fn = OBJECTIVES.get(objective)
    if objective_fn is None:
        raise ReproError(
            f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
        )
    start = time.perf_counter()
    distance = get_flat_distance_matrix(coupling)
    seeds = [seed + t for t in range(num_trials)]
    if executor in ("ensemble", "hybrid"):
        return _compile_many_engine(
            circuits, coupling, seeds, jobs, objective, objective_fn,
            config, num_traversals, keep_results, pipeline, executor,
            distance, start,
        )
    payloads = [
        (circuit, coupling, config, s, num_traversals, distance, pipeline)
        for circuit in circuits
        for s in seeds
    ]
    def pick_winners(flat_metrics: List[TrialMetrics]):
        """Group flat metrics per circuit and select each winner."""
        per_circuit: List[List[TrialResult]] = []
        winner_indices: List[int] = []
        for index in range(len(circuits)):
            metrics = flat_metrics[index * num_trials : (index + 1) * num_trials]
            trials = [
                TrialResult(seed=s, result=m, value=objective_fn(m))
                for s, m in zip(seeds, metrics)
            ]
            per_circuit.append(trials)
            winner_indices.append(select_winner(trials))
        return per_circuit, winner_indices

    winner_results: List[Optional[MappingResult]] = [None] * len(circuits)
    if executor != "serial" and jobs > 1 and len(payloads) > 1:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            flat = list(pool.map(_metrics_worker, payloads))
            per_circuit, winner_indices = pick_winners(flat)
            if keep_results:
                # Workers shipped scalars only; rebuild each winner's
                # full result on the still-open pool.  Trials are
                # deterministic in their seed, so this replays the exact
                # winning compilations at 1/num_trials of the batch cost
                # while keeping the heavy pickle traffic to one result
                # per circuit.
                winner_payloads = [
                    payloads[index * num_trials + wi]
                    for index, wi in enumerate(winner_indices)
                ]
                winner_results = list(pool.map(_result_worker, winner_payloads))
    else:
        full = [_run_one_trial(*p) for p in payloads]
        per_circuit, winner_indices = pick_winners([_to_metrics(r) for r in full])
        if keep_results:
            winner_results = [
                full[index * num_trials + wi]
                for index, wi in enumerate(winner_indices)
            ]

    reports: List[CircuitReport] = []
    for index, circuit in enumerate(circuits):
        trials = per_circuit[index]
        winner = trials[winner_indices[index]]
        reports.append(
            CircuitReport(
                name=circuit.name,
                num_qubits=circuit.num_qubits,
                original_gates=winner.result.original_gates,
                added_gates=winner.result.added_gates,
                num_swaps=winner.result.num_swaps,
                routed_depth=winner.result.routed_depth,
                winning_seed=winner.seed,
                objective_value=winner.value,
                trial_seconds=sum(t.result.runtime_seconds for t in trials),
                trial_swaps=[t.result.num_swaps for t in trials],
                result=winner_results[index],
            )
        )
    return BatchReport(
        device_name=coupling.name,
        objective=objective,
        num_trials=num_trials,
        jobs=jobs,
        reports=reports,
        wall_seconds=time.perf_counter() - start,
        executor=executor,
    )


def _compile_many_engine(
    circuits: Sequence[QuantumCircuit],
    coupling: CouplingGraph,
    seeds: Sequence[int],
    jobs: int,
    objective: str,
    objective_fn,
    config: Optional[HeuristicConfig],
    num_traversals: int,
    keep_results: bool,
    pipeline: str,
    executor: str,
    distance,
    start: float,
) -> BatchReport:
    """The ensemble/hybrid batch path: one lockstep sweep per circuit.

    Per-circuit rather than trial-flattened — the lockstep kernel *is*
    the batching within a circuit, and the hybrid executor's shards
    provide the cross-core fan-out.  Worth it for sweeps of heavy
    circuits; for many tiny circuits the classic trial-flattened pool
    amortises better (pass ``executor="auto"``).
    """
    reports: List[CircuitReport] = []
    effective = executor
    for circuit in circuits:
        outcome = run_trials(
            circuit,
            coupling,
            seeds,
            config=config,
            num_traversals=num_traversals,
            objective=objective,
            executor=executor,
            jobs=jobs if executor == "hybrid" else None,
            distance=distance,
            pipeline=pipeline,
        )
        effective = outcome.executor
        winner = outcome.winner
        reports.append(
            CircuitReport(
                name=circuit.name,
                num_qubits=circuit.num_qubits,
                original_gates=winner.result.original_gates,
                added_gates=winner.result.added_gates,
                num_swaps=winner.result.num_swaps,
                routed_depth=winner.result.routed_depth,
                winning_seed=winner.seed,
                objective_value=winner.value,
                trial_seconds=sum(
                    t.result.runtime_seconds for t in outcome.trials
                ),
                trial_swaps=[t.result.num_swaps for t in outcome.trials],
                result=winner.result if keep_results else None,
            )
        )
    return BatchReport(
        device_name=coupling.name,
        objective=objective,
        num_trials=len(seeds),
        jobs=jobs,
        reports=reports,
        wall_seconds=time.perf_counter() - start,
        executor=effective,
    )
