"""Best-of-K seeded compilation trials (serial, process, ensemble, hybrid).

SABRE's output quality is seed-dependent: the initial mapping is random
and equal-score SWAPs tie-break randomly (paper §IV-A, §IV-C2).
Production routers therefore run many independently seeded trials and
keep the best — this module is that engine.  Each trial is a full
bidirectional-traversal compilation from its own seed (initial mapping
*and* tie-break stream), so trials are statistically independent and
embarrassingly parallel.

Determinism contract: given the same circuit, device, seed list,
objective, and configuration, :func:`run_trials` returns the same
winner under every executor.  Ties on the objective resolve to the
earliest seed in the list.

Amortisation: every trial resolves the device's distance matrix *and*
the circuit's compile-once flat IR (forward + reverse
:class:`~repro.circuits.flatdag.FlatDag`) through the engine cache, so
a best-of-K run lowers the circuit once per process — serial trials
share one IR outright, and each pool worker lowers at most once no
matter how many trials it executes.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.core.heuristic import HeuristicConfig
from repro.core.result import MappingResult
from repro.engine.cache import get_flat_distance_matrix
from repro.exceptions import ReproError
from repro.hardware.coupling import CouplingGraph

#: Executor names accepted by :func:`run_trials` / ``compile_many``.
#: ``"ensemble"`` routes all trials in lockstep through one batched
#: vector-scorer kernel (:mod:`repro.engine.ensemble`); ``"hybrid"``
#: shards the seed list across worker processes, each running the
#: lockstep ensemble against ship-once shared state
#: (:mod:`repro.engine.shared`); ``"auto"`` resolves the best of the
#: four from K, core count, and ensemble eligibility
#: (:func:`repro.engine.shared.choose_executor`).  Every executor
#: produces the serial executor's exact per-seed results; when a
#: requested executor cannot serve a configuration it downgrades,
#: records the effective executor on :class:`TrialsOutcome`, and warns
#: once per downgrade kind.
EXECUTORS = ("serial", "process", "ensemble", "hybrid", "auto")

#: Depth weight of the ``weighted`` objective: ``g_add + W * d_out``.
DEFAULT_DEPTH_WEIGHT = 0.5


def _objective_g_add(result: MappingResult) -> float:
    return float(result.added_gates)


def _objective_depth(result: MappingResult) -> float:
    return float(result.routed_depth)


def _objective_weighted(result: MappingResult) -> float:
    return float(result.added_gates) + DEFAULT_DEPTH_WEIGHT * float(
        result.routed_depth
    )


#: Winner-selection objectives (lower is better).
OBJECTIVES: Dict[str, Callable[[MappingResult], float]] = {
    "g_add": _objective_g_add,
    "depth": _objective_depth,
    "weighted": _objective_weighted,
}

#: Objective-name prefix that scores trials straight from the pipeline
#: PropertySet: ``"property:fidelity.estimated_success"`` ranks by that
#: recorded value (lower is better) — how a custom pass teaches the
#: engine a new winner-selection criterion without touching this module.
PROPERTY_OBJECTIVE_PREFIX = "property:"


def objective_value(result: MappingResult, objective: str) -> float:
    """Score ``result`` under a named objective (lower is better).

    Two PropertySet hooks extend the built-in metrics:

    - ``"property:<key>"`` objectives read the named property directly
      (it must have been recorded by the trial's pipeline);
    - for built-in names, a recorded ``"objective.<name>"`` entry
      overrides the metric function.
    """
    properties = getattr(result, "properties", None)
    if objective.startswith(PROPERTY_OBJECTIVE_PREFIX):
        key = objective[len(PROPERTY_OBJECTIVE_PREFIX):]
        if properties is None or key not in properties:
            raise ReproError(
                f"objective {objective!r} needs the trial's pipeline to "
                f"record property {key!r} (e.g. via a custom analysis "
                "pass); it was not found on this result"
            )
        return float(properties[key])
    if properties:
        override = properties.get(f"objective.{objective}")
        if override is not None:
            return float(override)
    try:
        return OBJECTIVES[objective](result)
    except KeyError:
        raise ReproError(
            f"unknown objective {objective!r}; available: {sorted(OBJECTIVES)}"
        ) from None


@dataclass
class TrialResult:
    """One seeded compilation and its objective score."""

    seed: int
    result: MappingResult
    value: float


@dataclass
class TrialsOutcome:
    """Everything :func:`run_trials` produces.

    Attributes:
        trials: per-seed results, in seed-list order.
        winner_index: index into ``trials`` of the selected winner.
        objective: the objective name that ranked them.
        requested_executor: the executor the caller asked for.
        executor: the executor that actually ran — differs from
            ``requested_executor`` after an ``"auto"`` resolution or a
            downgrade (single seed, ineligible configuration, broken
            worker pool).
        shard_plan: the hybrid executor's seed shards (one list per
            worker), ``None`` for every other executor.
        downgrade_reason: why the requested executor could not run,
            ``None`` when it did (``"auto"`` resolution is a choice,
            not a downgrade).
    """

    trials: List[TrialResult]
    winner_index: int
    objective: str
    requested_executor: str = "serial"
    executor: str = "serial"
    shard_plan: Optional[List[List[int]]] = None
    downgrade_reason: Optional[str] = None

    @property
    def winner(self) -> TrialResult:
        return self.trials[self.winner_index]

    @property
    def best_result(self) -> MappingResult:
        return self.winner.result

    @property
    def trial_swaps(self) -> List[int]:
        return [t.result.num_swaps for t in self.trials]


def select_winner(trials: Sequence[TrialResult]) -> int:
    """Index of the best trial: lowest objective value, earliest seed
    on ties.  Pure and total — the single source of truth every
    executor funnels through, which is what makes serial and process
    runs agree."""
    if not trials:
        raise ReproError("select_winner needs at least one trial")
    best = 0
    for index in range(1, len(trials)):
        if trials[index].value < trials[best].value:
            best = index
    return best


def _run_one_trial(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    config: Optional[HeuristicConfig],
    seed: int,
    num_traversals: int,
    distance: Sequence[Sequence[float]],
    pipeline: str = "paper_default",
) -> MappingResult:
    """One fully seeded trial: a single-trial pipeline execution
    (module-level so pools can pickle its arguments — pipelines travel
    as preset names, not objects).

    ``num_trials=1`` with ``executor=None`` keeps this on the direct
    :class:`~repro.core.bidirectional.SabreLayout` path; the trial seed
    drives both the random initial mapping and the router's tie-break
    stream (see ``SabreLayout``'s per-trial seeding).
    """
    from repro.pipeline.runner import get_pipeline

    return get_pipeline(pipeline).run(
        circuit,
        coupling,
        config=config,
        seed=seed,
        num_trials=1,
        num_traversals=num_traversals,
        distance=distance,
        executor=None,
    )


def _worker(
    payload: Tuple[
        QuantumCircuit,
        CouplingGraph,
        Optional[HeuristicConfig],
        int,
        int,
        Sequence[Sequence[float]],
        str,
    ],
) -> MappingResult:
    """Process-pool entry point: unpack one trial job and run it."""
    return _run_one_trial(*payload)


#: Downgrade kinds already warned about this process (warn once each,
#: not once per sweep — a service replaying thousands of ineligible
#: requests should not drown its log).
_DOWNGRADES_WARNED: Set[Tuple[str, str]] = set()


def _note_downgrade(requested: str, effective: str, reason: str) -> str:
    """Record (and warn once per kind about) an executor downgrade."""
    key = (requested, effective)
    if key not in _DOWNGRADES_WARNED:
        _DOWNGRADES_WARNED.add(key)
        warnings.warn(
            f"run_trials: requested executor {requested!r} ran as "
            f"{effective!r} — {reason} (warned once per downgrade kind; "
            "the effective executor is recorded on every TrialsOutcome)",
            RuntimeWarning,
            stacklevel=3,
        )
    return reason


def run_trials(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    seeds: Sequence[int],
    config: Optional[HeuristicConfig] = None,
    num_traversals: int = 3,
    objective: str = "g_add",
    executor: str = "serial",
    jobs: Optional[int] = None,
    distance: Optional[Sequence[Sequence[float]]] = None,
    pipeline: str = "paper_default",
) -> TrialsOutcome:
    """Run one compilation per seed and rank them by ``objective``.

    Args:
        circuit: logical circuit (decomposition handled downstream).
        coupling: target device.
        seeds: one trial per entry; order defines the tie-break.
        config: heuristic knobs (paper defaults when omitted).
        num_traversals: traversals per trial (odd; paper uses 3).
        objective: ``"g_add"`` (paper metric), ``"depth"``,
            ``"weighted"`` (``g_add + 0.5 * d_out``), or
            ``"property:<key>"`` to rank by a value the trial pipeline
            recorded in its PropertySet.
        executor: one of :data:`EXECUTORS` — ``"serial"``,
            ``"process"`` (per-trial
            :class:`~concurrent.futures.ProcessPoolExecutor`),
            ``"ensemble"`` (single-process lockstep kernel),
            ``"hybrid"`` (seed shards × lockstep ensembles across a
            ship-once worker pool), or ``"auto"`` (chooser over K,
            cores, and eligibility).  All produce identical per-seed
            results; the one that actually ran is recorded on the
            outcome.
        jobs: worker count for the process/hybrid executors (default:
            as many as trials, capped at the machine's core count).
            Must be a positive integer when given.
        distance: precomputed distance matrix.  Computed once through
            the engine cache when omitted and shipped to every worker,
            so a pool run never repeats the Floyd-Warshall step.
        pipeline: pass-pipeline preset each trial executes (shipped to
            workers by *name*; see
            :func:`repro.pipeline.presets.preset_names`).

    Returns:
        :class:`TrialsOutcome`; ``outcome.best_result`` is the winning
        :class:`~repro.core.result.MappingResult`.
    """
    if not seeds:
        raise ReproError("run_trials needs at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ReproError(f"trial seeds must be distinct, got {list(seeds)}")
    if executor not in EXECUTORS:
        raise ReproError(
            f"unknown executor {executor!r}; available: {list(EXECUTORS)}"
        )
    if jobs is not None and (isinstance(jobs, bool) or jobs < 1):
        raise ValueError(
            f"jobs must be a positive integer, got {jobs!r}; omit it to "
            "size the worker pool automatically"
        )
    if (
        objective not in OBJECTIVES
        and not objective.startswith(PROPERTY_OBJECTIVE_PREFIX)
    ):
        raise ReproError(
            f"unknown objective {objective!r}; available: "
            f"{sorted(OBJECTIVES)} or '{PROPERTY_OBJECTIVE_PREFIX}<key>'"
        )
    if distance is None:
        # Flattened form: the router consumes it as-is, and its single
        # contiguous buffer pickles far smaller than a list-of-lists
        # when trials fan out across a process pool.
        distance = get_flat_distance_matrix(coupling)

    requested = executor
    downgrade_reason: Optional[str] = None
    shard_plan: Optional[List[List[int]]] = None

    # Traced requests get one "engine.trials" span covering the whole
    # sweep (recorded at _finish time, when the effective executor is
    # known); untraced runs skip even the clock reads.
    from repro.telemetry.trace import current_span_id, current_tracer

    tracer = current_tracer()
    if tracer is not None:
        import time as _time

        trace_parent = current_span_id()
        started_wall = _time.time()
        started_perf = _time.perf_counter()

    def _finish(
        results: Sequence[MappingResult], effective: str
    ) -> TrialsOutcome:
        trials = [
            TrialResult(
                seed=seed,
                result=result,
                value=objective_value(result, objective),
            )
            for seed, result in zip(seeds, results)
        ]
        if tracer is not None:
            tracer.add_raw(
                "engine.trials",
                trace_parent,
                start=started_wall,
                wall_seconds=_time.perf_counter() - started_perf,
                attrs={
                    "executor": effective,
                    "requested": requested,
                    "seeds": len(seeds),
                },
            )
        return TrialsOutcome(
            trials=trials,
            winner_index=select_winner(trials),
            objective=objective,
            requested_executor=requested,
            executor=effective,
            shard_plan=shard_plan,
            downgrade_reason=downgrade_reason,
        )

    def _eligible() -> bool:
        from repro.engine.ensemble import ensemble_eligible

        return ensemble_eligible(pipeline, config, distance)

    if executor == "auto":
        from repro.engine.shared import choose_executor

        # A choice, not a downgrade: "auto" promises nothing beyond
        # "the fastest executor for this sweep on this host".
        executor = choose_executor(
            len(seeds), eligible=_eligible(), jobs=jobs
        ).executor

    if executor == "hybrid":
        from repro.engine.shared import plan_shards, run_hybrid_sweep

        if len(seeds) == 1:
            executor = "serial"
            downgrade_reason = _note_downgrade(
                requested, "serial", "a single seed has nothing to shard"
            )
        else:
            width = (
                jobs
                if jobs is not None
                else max(1, min(len(seeds), os.cpu_count() or 1))
            )
            eligible = _eligible()
            shard_plan = plan_shards(list(seeds), width)
            try:
                results = run_hybrid_sweep(
                    circuit,
                    coupling,
                    shard_plan,
                    config=config,
                    num_traversals=num_traversals,
                    distance=distance,
                    pipeline=pipeline,
                    eligible=eligible,
                )
                return _finish(results, "hybrid")
            except (BrokenProcessPool, OSError) as exc:
                shard_plan = None
                executor = "ensemble" if eligible else "serial"
                downgrade_reason = _note_downgrade(
                    requested, executor,
                    f"hybrid worker pool unavailable ({exc})",
                )

    if executor == "ensemble":
        from repro.engine.ensemble import ensemble_eligible, run_ensemble_trials

        if ensemble_eligible(pipeline, config, distance):
            results = run_ensemble_trials(
                circuit,
                coupling,
                seeds,
                config=config,
                num_traversals=num_traversals,
                distance=distance,
                pipeline=pipeline,
            )
            return _finish(results, "ensemble")
        executor = "serial"
        if requested != "auto":
            downgrade_reason = _note_downgrade(
                requested, "serial",
                "ensemble-ineligible configuration (non-vector scorer, "
                "asymmetric distance matrix, or a pipeline whose routing "
                "stage is not the plain layout search)",
            )

    payloads = [
        (circuit, coupling, config, seed, num_traversals, distance, pipeline)
        for seed in seeds
    ]
    if executor == "process":
        if len(seeds) == 1:
            downgrade_reason = _note_downgrade(
                requested, "serial",
                "a single seed has nothing to parallelise",
            )
        else:
            max_workers = (
                jobs
                if jobs is not None
                else min(len(seeds), os.cpu_count() or 1)
            )
            try:
                with ProcessPoolExecutor(max_workers=max_workers) as pool:
                    results = list(pool.map(_worker, payloads))
                return _finish(results, "process")
            except (BrokenProcessPool, OSError) as exc:
                downgrade_reason = _note_downgrade(
                    requested, "serial",
                    f"worker pool unavailable ({exc})",
                )

    results = [_run_one_trial(*p) for p in payloads]
    return _finish(results, "serial")
