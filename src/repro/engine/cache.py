"""Memoised derived data: distance matrices, devices, and circuit IRs.

The paper's preprocessing step — the Floyd-Warshall all-pairs distance
matrix ``D`` — costs ``O(N^3)`` per device, and every routing pass
needs the circuit lowered into a dependency DAG (``O(g)`` with a Python
object per gate when done naively).  A production service compiling
millions of circuits against a handful of devices must not pay those
costs per call, so the engine keys every derived artefact on a
*structural fingerprint* — of the coupling graph (qubit count,
undirected edge set, direction set, edge weights, APSP method) for
device data, of the gate list for circuit IRs — and computes each at
most once per process.

Safety properties:

- **Thread-safe**: all cache state is guarded by a lock, so concurrent
  compilation threads share one computation per device.
- **Process-safe by construction**: worker processes each hold their
  own cache instance, and the batch/trial executors compute the matrix
  once in the parent and ship it to workers as an argument, so a pool
  run performs the Floyd-Warshall exactly once (see
  :mod:`repro.engine.batch`).  Circuit IRs are lowered at most once per
  worker (and shared outright under a fork start method).
- **Poison-proof**: matrices are stored once, flattened to immutable
  bytes, and returned as fresh mutable copies (nested lists or
  :class:`FlatDistance` buffers); mutating a returned matrix can never
  corrupt later reads.  Circuit IRs (:class:`FlatDag`) carry no
  mutating API at all, so — like device objects — every caller shares
  one instance per fingerprint.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.flatdag import FlatDag
from repro.circuits.reverse import reversed_circuit
from repro.core.scoring import FlatDistance
from repro.exceptions import ReproError
from repro.hardware.coupling import CouplingGraph
from repro.hardware.devices import DEVICE_BUILDERS, get_device
from repro.hardware.distance import (
    bfs_flat_distance,
    distance_matrix,
    weighted_floyd_warshall,
)

#: Cache key: (num_qubits, undirected edges, directed edges or None,
#: sorted edge-weight items or None, APSP method).
Fingerprint = Tuple[object, ...]

Matrix = List[List[float]]


def coupling_fingerprint(
    coupling: CouplingGraph,
    edge_weights: Optional[Dict[Tuple[int, int], float]] = None,
    method: str = "floyd-warshall",
) -> Fingerprint:
    """Structural identity of a device for cache keying.

    Two :class:`CouplingGraph` instances with the same qubit count,
    edge set, and direction set fingerprint identically regardless of
    object identity or ``name``, so a device rebuilt per request still
    hits the cache.  Weighted (noise-aware) matrices key on the weight
    table too, so unit and weighted matrices never collide.  Weight
    keys are fingerprinted verbatim — ``weighted_floyd_warshall`` only
    honours ``(low, high)`` keys, so a reversed key changes the
    computed matrix and must change the fingerprint with it.
    """
    directed = getattr(coupling, "_directed", None)
    weights_key = (
        None
        if edge_weights is None
        else tuple(sorted((tuple(e), w) for e, w in edge_weights.items()))
    )
    return (
        coupling.num_qubits,
        tuple(coupling.edges),
        None if directed is None else tuple(sorted(directed)),
        weights_key,
        method,
    )


def circuit_fingerprint(circuit: QuantumCircuit) -> Fingerprint:
    """Content identity of a circuit for IR cache keying.

    Keyed on the gate sequence itself (gates are immutable, hashable
    value objects), not object identity — a circuit rebuilt per request
    or mutated after a previous fetch fingerprints to the state it is
    in *now*, so stale IRs are unreachable by construction.  Hashing is
    ``O(g)``, roughly two orders of magnitude cheaper than re-lowering.

    The name is part of the key: the IR carries it into routed-output
    naming (``<name>_routed``), so two gate-identical circuits with
    different names must not share an IR or the second would inherit
    the first's name downstream.
    """
    return (
        circuit.name,
        circuit.num_qubits,
        circuit.num_clbits,
        circuit.gates,
    )


@dataclass(frozen=True)
class CacheInfo:
    """Counters snapshot (``lru_cache``-style)."""

    hits: int
    misses: int
    entries: int


class DeviceCache:
    """Process-local memo for distance matrices and named devices.

    One instance (the module-level :data:`GLOBAL_CACHE`) backs the
    whole engine; tests may construct private instances to assert
    hit/miss behaviour in isolation.
    """

    #: LRU bound for the circuit-IR store.  Device matrices are few
    #: (one per device) and stay unbounded; circuits are open-ended, so
    #: the IR store evicts least-recently-used entries beyond this.
    MAX_DAG_ENTRIES = 64

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: Single matrix store, flattened: (n, raw float64 bytes,
        #: symmetric flag).  The nested list-of-lists form is derived
        #: from it on demand, so both access paths share one compute
        #: and one copy per fingerprint.
        self._flat: Dict[Fingerprint, Tuple[int, bytes, bool]] = {}
        self._devices: Dict[str, CouplingGraph] = {}
        #: Circuit IRs keyed by (circuit fingerprint, direction), LRU.
        self._dags: "OrderedDict[Tuple[Fingerprint, str], FlatDag]" = (
            OrderedDict()
        )
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Distance matrices
    # ------------------------------------------------------------------

    def distance_matrix(
        self,
        coupling: CouplingGraph,
        edge_weights: Optional[Dict[Tuple[int, int], float]] = None,
        method: str = "floyd-warshall",
    ) -> Matrix:
        """The device's ``D[][]``, computed at most once per fingerprint.

        Returns a *fresh* list-of-lists copy on every call (hit or
        miss); callers may mutate their copy freely.  Backed by the
        same flattened store as :meth:`flat_distance_matrix`, so
        fetching both forms still computes the APSP only once.
        """
        return self.flat_distance_matrix(
            coupling, edge_weights, method
        ).to_matrix()

    def flat_distance_matrix(
        self,
        coupling: CouplingGraph,
        edge_weights: Optional[Dict[Tuple[int, int], float]] = None,
        method: str = "floyd-warshall",
    ) -> FlatDistance:
        """The device's ``D`` as a :class:`FlatDistance`, cached once.

        This is what the router core consumes directly: a 1-D
        ``array('d')`` buffer.  Stored as immutable bytes; every call
        (hit or miss) returns a fresh buffer, so mutating a returned
        instance can never corrupt later reads.
        """
        key = coupling_fingerprint(coupling, edge_weights, method)
        with self._lock:
            frozen = self._flat.get(key)
            if frozen is not None:
                self._hits += 1
                return self._thaw_flat(frozen)
        # Compute outside the lock: Floyd-Warshall on a big device is
        # exactly the work we must not serialise other devices behind.
        # (A rare concurrent first fetch may duplicate the compute; the
        # first store wins and the loser counts as a hit, matching the
        # pre-existing nested-store behaviour.)
        flat = FlatDistance.from_matrix(
            self._compute(coupling, edge_weights, method)
        )
        frozen = (flat.n, flat.buf.tobytes(), flat.symmetric)
        with self._lock:
            if key not in self._flat:
                self._flat[key] = frozen
                self._misses += 1
            else:
                self._hits += 1
            return self._thaw_flat(self._flat[key])

    def seed_flat_distance(
        self,
        coupling: CouplingGraph,
        flat: FlatDistance,
        edge_weights: Optional[Dict[Tuple[int, int], float]] = None,
        method: str = "floyd-warshall",
    ) -> bool:
        """Pre-seed the store with an externally computed matrix.

        The hybrid executor's worker initializer
        (:mod:`repro.engine.shared`) ships each sweep's distance table
        across the process boundary once; installing it here means any
        code path in the worker that resolves the device's distance
        itself hits the cache instead of re-running Floyd-Warshall.
        Returns ``True`` if installed, ``False`` if the fingerprint was
        already present (first store wins, matching
        :meth:`flat_distance_matrix`).  Hit/miss counters are untouched
        — a seed is neither.
        """
        key = coupling_fingerprint(coupling, edge_weights, method)
        frozen = (flat.n, flat.buf.tobytes(), flat.symmetric)
        with self._lock:
            if key in self._flat:
                return False
            self._flat[key] = frozen
            return True

    @staticmethod
    def _thaw_flat(frozen: Tuple[int, bytes, bool]) -> FlatDistance:
        n, raw, symmetric = frozen
        buf = array("d")
        buf.frombytes(raw)
        return FlatDistance(n, buf, symmetric)

    @staticmethod
    def _compute(
        coupling: CouplingGraph,
        edge_weights: Optional[Dict[Tuple[int, int], float]],
        method: str,
    ):
        if edge_weights is not None:
            return weighted_floyd_warshall(coupling, edge_weights)
        if method == "bfs":
            # Built directly as a FlatDistance (from_matrix is a no-op
            # on it), skipping the nested-rows detour entirely.
            return bfs_flat_distance(coupling)
        return distance_matrix(coupling, method=method)

    # ------------------------------------------------------------------
    # Circuit IRs
    # ------------------------------------------------------------------

    def flat_dag(
        self, circuit: QuantumCircuit, direction: str = "forward"
    ) -> FlatDag:
        """The circuit's compile-once IR, lowered at most once per content.

        ``direction="reverse"`` lowers the reversed circuit (gate order
        flipped, directives dropped — what the bidirectional search's
        backward traversals route), cached under the *forward* content
        fingerprint so forward and reverse IRs of one circuit share a
        single hashing pass per direction.

        Unlike matrices, the returned :class:`FlatDag` is the shared
        cached instance: it is immutable (flat arrays plus immutable
        gate handles, no mutating API), so all trials, traversals, and
        threads read one object — that sharing is the point.
        """
        if direction not in ("forward", "reverse"):
            raise ReproError(
                f"unknown IR direction {direction!r}; "
                "choose 'forward' or 'reverse'"
            )
        key = (circuit_fingerprint(circuit), direction)
        with self._lock:
            cached = self._dags.get(key)
            if cached is not None:
                self._hits += 1
                self._dags.move_to_end(key)
                return cached
        # Lower outside the lock — O(g) work other threads need not
        # queue behind.  A rare concurrent first fetch may duplicate
        # the lowering; the first store wins and the loser counts as a
        # hit, matching the matrix-store behaviour.
        source = circuit if direction == "forward" else reversed_circuit(circuit)
        built = FlatDag.from_circuit(source)
        with self._lock:
            cached = self._dags.get(key)
            if cached is not None:
                self._hits += 1
                self._dags.move_to_end(key)
                return cached
            self._dags[key] = built
            self._misses += 1
            while len(self._dags) > self.MAX_DAG_ENTRIES:
                self._dags.popitem(last=False)
            return built

    # ------------------------------------------------------------------
    # Device objects
    # ------------------------------------------------------------------

    def device(
        self, name: str, builder: Optional[Callable[[], CouplingGraph]] = None
    ) -> CouplingGraph:
        """A shared :class:`CouplingGraph` for a named device.

        ``CouplingGraph`` exposes no mutating API, so handing every
        caller the same instance is safe and keeps fingerprints (and
        therefore downstream identity-keyed structures) stable.
        """
        with self._lock:
            cached = self._devices.get(name)
            if cached is not None:
                self._hits += 1
                return cached
        built = builder() if builder is not None else get_device(name)
        with self._lock:
            if name not in self._devices:
                self._devices[name] = built
                self._misses += 1
            else:
                self._hits += 1
            return self._devices[name]

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------

    def cache_info(self) -> CacheInfo:
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._flat) + len(self._devices) + len(self._dags),
            )

    def stats(self) -> Dict[str, int]:
        """Counters plus per-store entry counts, as a JSON-safe dict.

        The serving layer surfaces this on ``GET /stats`` and in the
        ``repro serve --verbose`` banner; unlike :meth:`cache_info` it
        breaks the entry count down by store so operators can see what
        the process is actually holding (matrices are per-device and
        small in number, circuit IRs are the LRU-bounded open set).
        """
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "matrix_entries": len(self._flat),
                "device_entries": len(self._devices),
                "dag_entries": len(self._dags),
                "entries": len(self._flat) + len(self._devices) + len(self._dags),
            }

    def clear(self) -> None:
        with self._lock:
            self._flat.clear()
            self._devices.clear()
            self._dags.clear()
            self._hits = 0
            self._misses = 0


#: Shared per-process cache used by the compiler front door and the
#: trial/batch executors.
GLOBAL_CACHE = DeviceCache()


def get_distance_matrix(
    coupling: CouplingGraph,
    edge_weights: Optional[Dict[Tuple[int, int], float]] = None,
    method: str = "floyd-warshall",
) -> Matrix:
    """Module-level convenience wrapper over :data:`GLOBAL_CACHE`."""
    return GLOBAL_CACHE.distance_matrix(coupling, edge_weights, method)


def get_flat_distance_matrix(
    coupling: CouplingGraph,
    edge_weights: Optional[Dict[Tuple[int, int], float]] = None,
    method: str = "floyd-warshall",
) -> FlatDistance:
    """Flattened-matrix wrapper over :data:`GLOBAL_CACHE`.

    The compiler front door and the trial/batch executors fetch this
    form: the router consumes it without re-flattening, and its compact
    single-buffer pickle keeps worker-pool dispatch cheap.
    """
    return GLOBAL_CACHE.flat_distance_matrix(coupling, edge_weights, method)


def get_flat_dag(
    circuit: QuantumCircuit, direction: str = "forward"
) -> FlatDag:
    """Compile-once circuit IR through :data:`GLOBAL_CACHE`.

    The layout search and compiler front door fetch both directions
    here, so a trial sweep — and any repeat compilation of the same
    circuit in this process — lowers the circuit exactly once per
    direction.
    """
    return GLOBAL_CACHE.flat_dag(circuit, direction)


def get_flat_dag_pair(
    circuit: QuantumCircuit,
) -> Tuple[FlatDag, FlatDag]:
    """Both traversal directions of a circuit's IR in one call.

    The bidirectional sweeps — the serial layout search and the
    lockstep trial ensemble alike — consume the forward and reverse
    lowerings together; fetching them as a pair keeps the call site to
    one cache round-trip per direction and makes the intent (a
    forward/backward traversal pair) explicit.
    """
    return (
        GLOBAL_CACHE.flat_dag(circuit, "forward"),
        GLOBAL_CACHE.flat_dag(circuit, "reverse"),
    )


def get_cached_device(name: str) -> CouplingGraph:
    """Named device lookup through the shared cache."""
    if name not in DEVICE_BUILDERS:
        # Delegate the error path (and its message) to the zoo.
        return get_device(name)
    return GLOBAL_CACHE.device(name)


def cache_info() -> CacheInfo:
    """Hit/miss counters of the shared cache."""
    return GLOBAL_CACHE.cache_info()


def cache_stats() -> Dict[str, int]:
    """Per-store counter breakdown of the shared cache (JSON-safe)."""
    return GLOBAL_CACHE.stats()


def clear_cache() -> None:
    """Drop all shared cache entries and reset counters (test hook)."""
    GLOBAL_CACHE.clear()
