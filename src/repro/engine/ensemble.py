"""Trial-major ensemble routing: K seeded trials in lockstep.

The best-of-K engine (:mod:`repro.engine.trials`) is embarrassingly
parallel, but on a single core its serial executor pays the router's
per-step numpy dispatch cost once *per trial*.  The vector scorer's
kernel is nearly size-invariant in the trial dimension — scoring K
trials' candidate sets in one ``(K, E)`` batch costs little more than
scoring one — so this module routes all K trials of a best-of-K run
*together*: one :class:`~repro.core.scoring.VectorBlock` with K rows,
K routing generators (:meth:`~repro.core.router.SabreRouter.
_route_vector`) advanced in lockstep, and a single batched
``score_rows`` call per round covering every trial that is stuck on a
wide front.

Determinism contract: the ensemble reproduces the serial executor's
per-seed results *exactly*.  Each trial keeps its own tie-break RNG
(seeded by its trial seed), its own decay row, its own frontier pair,
and its own layout chain across traversals; only the kernel dispatch
is shared.  The differential suite enforces byte-identical routed
circuits against ``executor="serial"`` for the same seed list.

Eligibility: the lockstep path needs the vector scorer (symmetric
distance matrix) and a pipeline whose routing stage is the plain
``SabreLayoutPass`` search — embedding shortcuts, baseline routers,
and noise-distance rewrites route differently per trial, so
:func:`ensemble_eligible` reports False for them and
:func:`repro.engine.trials.run_trials` silently falls back to the
serial executor (same results, no lockstep speedup).
"""

from __future__ import annotations

import random
import time
from typing import List, Optional, Sequence, Union

from repro.circuits.circuit import QuantumCircuit
from repro.circuits.decompositions import (
    decompose_to_cx_basis,
    needs_cx_decomposition,
)
from repro.circuits.flatdag import FrontierState
from repro.core.bidirectional import BidirectionalResult, TrialRecord
from repro.core.heuristic import DecayArray, HeuristicConfig, resolve_scorer
from repro.core.router import SabreRouter
from repro.core.scoring import FlatDistance, VectorBlock
from repro.exceptions import MappingError, ReproError
from repro.hardware.coupling import CouplingGraph
from repro.telemetry.profile import active_router_profiler


def decompose_like_pipeline(circuit: QuantumCircuit) -> QuantumCircuit:
    """The circuit exactly as ``DecomposeToBasis`` would hand it to the
    layout search (identical object when already in basis, so the IR
    cache keys match the per-trial pipeline runs)."""
    if needs_cx_decomposition(circuit):
        return decompose_to_cx_basis(circuit)
    return circuit


def ensemble_eligible(
    pipeline: str,
    config: Optional[HeuristicConfig],
    distance: Optional[Union[FlatDistance, Sequence[Sequence[float]]]],
) -> bool:
    """Whether the lockstep ensemble reproduces this configuration.

    Three requirements, each checked against the serial executor's
    actual behaviour:

    - the scorer must resolve to ``"vector"`` (the lockstep driver is
      the vector generator protocol; ``fast``/``reference`` trials
      have no kernel to share);
    - the distance matrix must be symmetric (otherwise the router
      itself falls back to the reference scorer, see
      :class:`~repro.core.router.SabreRouter`);
    - the trial pipeline's routing stage must be the plain
      ``SabreLayoutPass`` search: presets that pin layouts
      (``PerfectEmbedding``), reroute per trial (``BaselineRoutePass``),
      or rewrite the distance/config (``NoiseAwareDistance``) would
      diverge from what the ensemble precomputes.
    """
    if resolve_scorer((config or HeuristicConfig()).scorer) != "vector":
        return False
    if distance is not None:
        flat = (
            distance
            if isinstance(distance, FlatDistance)
            else FlatDistance.from_matrix(distance)
        )
        if not flat.symmetric:
            return False
    from repro.pipeline.passes import (
        BaselineRoutePass,
        NoiseAwareDistance,
        PerfectEmbedding,
        SabreLayoutPass,
    )
    from repro.pipeline.runner import get_pipeline

    try:
        pipe = get_pipeline(pipeline)
    except ReproError:
        return False
    has_search = False
    for pass_ in pipe.passes:
        if isinstance(
            pass_, (PerfectEmbedding, BaselineRoutePass, NoiseAwareDistance)
        ):
            return False
        if isinstance(pass_, SabreLayoutPass):
            has_search = True
    return has_search


def run_ensemble_trials(
    circuit: QuantumCircuit,
    coupling: CouplingGraph,
    seeds: Sequence[int],
    config: Optional[HeuristicConfig] = None,
    num_traversals: int = 3,
    distance: Optional[
        Union[FlatDistance, Sequence[Sequence[float]]]
    ] = None,
    pipeline: str = "paper_default",
) -> List["object"]:
    """One full :class:`~repro.core.result.MappingResult` per seed, via
    the lockstep ensemble.

    Runs :func:`ensemble_layout_search` over the decomposed circuit,
    then re-enters the per-trial pipeline with each search result
    precomputed: decomposition, metrics, and any post-routing passes
    run exactly as on the serial path, so each trial's result matches
    the serial executor's byte for byte (the layout-search pass adopts
    the injected record).  Shared by ``executor="ensemble"`` (in
    process) and the hybrid executor's shard workers
    (:mod:`repro.engine.shared`) — callers gate on
    :func:`ensemble_eligible` first.
    """
    from repro.pipeline.runner import get_pipeline

    searches = ensemble_layout_search(
        coupling,
        decompose_like_pipeline(circuit),
        seeds,
        config=config,
        num_traversals=num_traversals,
        distance=distance,
    )
    pipe = get_pipeline(pipeline)
    return [
        pipe.run(
            circuit,
            coupling,
            config=config,
            seed=seed,
            num_trials=1,
            num_traversals=num_traversals,
            distance=distance,
            executor=None,
            layout_search=search,
        )
        for seed, search in zip(seeds, searches)
    ]


def ensemble_layout_search(
    coupling: CouplingGraph,
    circuit: QuantumCircuit,
    seeds: Sequence[int],
    config: Optional[HeuristicConfig] = None,
    num_traversals: int = 3,
    distance: Optional[
        Union[FlatDistance, Sequence[Sequence[float]]]
    ] = None,
) -> List[BidirectionalResult]:
    """Run one bidirectional layout search per seed, in lockstep.

    Semantically ``[SabreLayout(..., num_trials=1, seed=s).run(circuit)
    for s in seeds]`` — same random initial mappings, same per-trial
    tie-break streams, same best-forward-traversal selection — but all
    K trials advance together through each traversal phase, sharing
    one K-row :class:`~repro.core.scoring.VectorBlock` so every
    scoring step is a single batched kernel call over all trials that
    are currently stuck on a wide front.

    ``circuit`` must already be in the routable basis (callers go
    through :func:`decompose_like_pipeline`).  Raises
    :class:`~repro.exceptions.MappingError` for configurations the
    vector scorer cannot serve (asymmetric distance matrix) — callers
    gate on :func:`ensemble_eligible` first.

    Multi-traversal searches run every traversal in *search mode*
    (:class:`~repro.core.router.SearchTrace`): no circuits are built
    during the sweep at all, because only each trial's best forward
    traversal — by the serial path's ``(num_swaps, depth)`` key — is
    ever consumed.  That winner is then replayed mechanically from its
    SWAP record into the byte-identical circuit the traversal would
    have emitted.  Single-traversal runs emit directly (the one
    forward traversal *is* the result).
    """
    from repro.core.layout import Layout
    from repro.engine.cache import get_flat_dag, get_flat_dag_pair

    if num_traversals < 1 or num_traversals % 2 == 0:
        raise MappingError(
            "num_traversals must be odd (forward-backward-...-forward), "
            f"got {num_traversals}"
        )
    if not seeds:
        raise ReproError("ensemble_layout_search needs at least one seed")
    router = SabreRouter(coupling, config=config, distance=distance)
    if router.scorer != "vector":
        raise MappingError(
            "the trial ensemble needs the vector scorer; this "
            f"configuration resolved to {router.scorer!r} "
            "(asymmetric distance matrix or explicit scorer override)"
        )
    if num_traversals > 1:
        forward_ir, reverse_ir = get_flat_dag_pair(circuit)
    else:
        forward_ir, reverse_ir = get_flat_dag(circuit), None
    n = coupling.num_qubits
    if forward_ir.num_qubits > n:
        raise MappingError(
            f"circuit has {forward_ir.num_qubits} logical qubits but device "
            f"{coupling.name!r} has only {n} physical qubits"
        )
    if not forward_ir.routable:
        for gate in forward_ir.gates:
            if gate.num_qubits > 2 and not gate.is_directive:
                raise MappingError(
                    f"gate {gate} has {gate.num_qubits} qubits; decompose "
                    "to the {1q, CNOT} basis before routing"
                )
    K = len(seeds)
    block = VectorBlock(
        router._vdev, router.neighbors, router.config, router._buf_list,
        rows=K,
    )
    config = router.config
    # Per-trial state threaded across traversal phases.
    layouts = [Layout.random(n, seed=s) for s in seeds]
    first_pass_swaps = [0] * K
    final_swaps = [0] * K
    best: List[Optional[BidirectionalResult]] = [None] * K
    best_key = [None] * K
    traces = [None] * K
    # A single forward traversal is necessarily each trial's best, so
    # it emits its circuit directly; longer sweeps run every traversal
    # in no-emission search mode and replay only the winners below.
    emitting = num_traversals == 1
    frontiers = {
        "forward": [FrontierState(forward_ir) for _ in range(K)],
        "reverse": (
            [FrontierState(reverse_ir) for _ in range(K)]
            if reverse_ir is not None
            else []
        ),
    }
    for traversal in range(num_traversals):
        forward = traversal % 2 == 0
        ir = forward_ir if forward else reverse_ir
        phase_frontiers = frontiers["forward" if forward else "reverse"]
        # Fresh per-phase tie-break RNG per trial, exactly as the
        # serial path's router.run(seed=trial_seed) per traversal.
        rngs = [random.Random(s) for s in seeds]
        results: List[Optional[object]] = [None] * K
        gens = []
        for t in range(K):
            phase_frontiers[t].reset()
            decay = DecayArray(
                n,
                config.decay_delta,
                config.decay_reset_interval,
                values=block.dv[t],
            )
            gens.append(
                router._route_vector(
                    ir,
                    layouts[t].copy(),
                    rngs[t],
                    phase_frontiers[t],
                    block,
                    t,
                    decay,
                    emitting=emitting,
                )
            )
        # Lockstep rounds: advance every generator to its next kernel
        # request (or completion), then score all stuck rows at once.
        pending: List[int] = []
        for t in range(K):
            try:
                gens[t].send(None)
                pending.append(t)
            except StopIteration as stop:
                results[t] = stop.value
        profiler = active_router_profiler()
        while pending:
            if profiler is None:
                scored = block.score_rows(pending, rngs, emit_sets=False)
            else:
                t0 = time.perf_counter()
                scored = block.score_rows(pending, rngs, emit_sets=False)
                profiler.add_kernel(time.perf_counter() - t0)
                # One batched call advances every stuck trial one step;
                # the compacted candidate-lane count covers the whole
                # batch, and tie sizes are unavailable (emit_sets off).
                profiler.record_step(int(getattr(block, "_lane_c", -1)), 0)
            advanced: List[int] = []
            for t in pending:
                try:
                    gens[t].send(scored[t])
                    advanced.append(t)
                except StopIteration as stop:
                    results[t] = stop.value
            pending = advanced
        for t in range(K):
            result = results[t]
            layouts[t] = result.final_layout
            if traversal == 0:
                first_pass_swaps[t] = result.num_swaps
            final_swaps[t] = result.num_swaps
            if not forward:
                continue
            if emitting:
                best[t] = BidirectionalResult(
                    routing=result,
                    initial_layout=result.initial_layout,
                    best_trial_index=0,
                )
                continue
            # The serial path ranks forward traversals by
            # (num_swaps, circuit_depth); SearchTrace.depth mirrors the
            # depth of the unbuilt circuit exactly, so the same winner
            # falls out without any circuit existing yet.
            key = (result.num_swaps, result.depth)
            if best_key[t] is None or key < best_key[t]:
                best_key[t] = key
                traces[t] = result
    if not emitting:
        # Replay each trial's winning forward traversal into a real
        # circuit — mechanical re-emission of the recorded SWAPs,
        # byte-identical to what the traversal would have built.
        fwd = frontiers["forward"]
        for t in range(K):
            trace = traces[t]
            assert trace is not None
            fwd[t].reset()
            routing = router._replay(
                forward_ir, trace.initial_layout.copy(), fwd[t], trace
            )
            best[t] = BidirectionalResult(
                routing=routing,
                initial_layout=routing.initial_layout,
                best_trial_index=0,
            )
    searches: List[BidirectionalResult] = []
    for t in range(K):
        record = TrialRecord(
            seed=seeds[t],
            first_pass_swaps=first_pass_swaps[t],
            final_swaps=final_swaps[t],
        )
        result = best[t]
        assert result is not None
        result.trials = [record]
        searches.append(result)
    return searches
