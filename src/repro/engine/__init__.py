"""Multi-trial, batch-capable compilation engine.

The paper evaluates SABRE one circuit and one seed at a time; a
production mapping service runs *many* seeded trials per circuit (the
result quality is seed-dependent), compiles whole suites at once, and
must not recompute per-device preprocessing on every call.  This
package supplies those three layers:

- :mod:`repro.engine.cache` — process-local memoisation of distance
  matrices and device objects (keyed on a structural fingerprint of
  the coupling graph) and of compile-once circuit IRs
  (:class:`~repro.circuits.flatdag.FlatDag`, keyed on the circuit's
  gate-content fingerprint) so repeated trials never re-lower.
- :mod:`repro.engine.trials` — best-of-K seeded trials with a
  configurable objective, under serial, process, lockstep-ensemble,
  or hybrid (sharded ensembles × ship-once worker pool) executors.
- :mod:`repro.engine.shared` — the hybrid executor's machinery: shard
  planning, the automatic executor chooser, and the ship-once
  shared-state layer (fingerprint-keyed worker caches, shared-memory
  distance tables).
- :mod:`repro.engine.batch` — ``compile_many``: fan a whole suite's
  (circuit, seed) jobs across workers and reduce to per-circuit
  winners.

``repro.core.compiler.compile_circuit`` fronts the trial engine via its
``executor``/``objective``/``jobs`` options; the CLI exposes them as
``--trials``, ``--jobs``, and ``--objective``.
"""

from repro.engine.cache import (
    CacheInfo,
    DeviceCache,
    GLOBAL_CACHE,
    cache_info,
    cache_stats,
    circuit_fingerprint,
    clear_cache,
    coupling_fingerprint,
    get_cached_device,
    get_distance_matrix,
    get_flat_dag,
    get_flat_dag_pair,
    get_flat_distance_matrix,
)
from repro.engine.trials import (
    EXECUTORS,
    OBJECTIVES,
    PROPERTY_OBJECTIVE_PREFIX,
    TrialResult,
    TrialsOutcome,
    objective_value,
    run_trials,
    select_winner,
)
from repro.engine.batch import BatchReport, CircuitReport, compile_many
from repro.engine.shared import (
    ExecutorDecision,
    choose_executor,
    plan_shards,
)

__all__ = [
    "CacheInfo",
    "DeviceCache",
    "GLOBAL_CACHE",
    "cache_info",
    "cache_stats",
    "circuit_fingerprint",
    "clear_cache",
    "coupling_fingerprint",
    "get_cached_device",
    "get_distance_matrix",
    "get_flat_dag",
    "get_flat_dag_pair",
    "get_flat_distance_matrix",
    "EXECUTORS",
    "OBJECTIVES",
    "PROPERTY_OBJECTIVE_PREFIX",
    "TrialResult",
    "TrialsOutcome",
    "objective_value",
    "run_trials",
    "select_winner",
    "BatchReport",
    "CircuitReport",
    "compile_many",
    "ExecutorDecision",
    "choose_executor",
    "plan_shards",
]
